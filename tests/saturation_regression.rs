//! Regression tests locking in the incremental e-graph core end to end:
//!
//! * `emorphic_flow` on a cross-section of `benchgen` circuits stays
//!   equivalence-preserving (internal CEC verification *and* an independent
//!   `cec` check of the final network against the input), and its saturation
//!   reports behave sanely — non-decreasing e-node counts across iterations.
//! * Randomized saturation runs over the Boolean logic language keep the
//!   e-graph invariants intact after every single `rebuild()`.

// The deprecated string-typed `check_invariants` shim stays the reference
// oracle for these differential tests; `audit` carries the typed rules.
#![allow(deprecated)]

use cec::{check_equivalence, CecOptions};
use egraph::Language;
use emorphic::flow::{emorphic_flow, FlowConfig};
use emorphic::{aig_to_egraph, all_rules};
use proptest::prelude::*;

#[test]
fn emorphic_flow_verified_with_monotone_saturation_reports() {
    let config = FlowConfig::fast();
    let circuits = vec![
        benchgen::adder(6),
        benchgen::multiplier(4),
        benchgen::arbiter(8),
        benchgen::mem_ctrl(5),
    ];
    for circuit in circuits {
        let result = emorphic_flow(&circuit.aig, &config);
        assert!(
            result.verified,
            "{}: internal CEC verification failed",
            circuit.name
        );
        // Independent end-to-end check: the final technology-independent
        // network is equivalent to the input circuit.
        let check = check_equivalence(&circuit.aig, &result.final_aig, &CecOptions::default());
        assert!(check.is_equivalent(), "{}: {:?}", circuit.name, check);

        // The saturation phase ran and reported per-iteration statistics.
        assert!(
            !result.saturation.is_empty(),
            "{}: no saturation iterations recorded",
            circuit.name
        );
        // Equality saturation only adds equalities: the e-node count after
        // each rebuild must never shrink from one iteration to the next.
        for pair in result.saturation.windows(2) {
            assert!(
                pair[1].egraph_nodes >= pair[0].egraph_nodes,
                "{}: e-node count decreased between iterations {} ({}) and {} ({})",
                circuit.name,
                pair[0].iteration,
                pair[0].egraph_nodes,
                pair[1].iteration,
                pair[1].egraph_nodes,
            );
        }
        assert_eq!(
            result.saturation.last().unwrap().egraph_nodes,
            result.egraph_nodes,
            "{}: final report disagrees with the flow summary",
            circuit.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Convert a random circuit, then saturate it with the full Table-I rule
    /// set one rule at a time, checking the e-graph invariants after every
    /// rebuild along the way.
    #[test]
    fn invariants_hold_after_every_rebuild_over_bool_lang(
        inputs in 3usize..7,
        ands in 8usize..40,
        seed in 0u64..500,
    ) {
        let circuit = benchgen::random_aig(inputs, ands, 2, seed);
        let conversion = aig_to_egraph(&circuit);
        let mut egraph = conversion.egraph;
        egraph.check_invariants().map_err(TestCaseError)?;
        let rules = all_rules();
        for iteration in 0..2usize {
            for rule in &rules {
                rule.run(&mut egraph, 100);
                egraph.rebuild();
                egraph
                    .check_invariants()
                    .map_err(|e| TestCaseError(format!(
                        "iteration {iteration}, rule {}: {e}", rule.name
                    )))?;
            }
        }
        // The roots must still resolve to live classes holding the circuit.
        for root in &conversion.roots {
            let class = egraph.class(*root);
            prop_assert!(!class.is_empty());
        }
        // Parent lists cover every child edge (spot check via parent_index).
        let parents = egraph.parent_index();
        for class in egraph.classes() {
            for node in class.iter() {
                for &child in node.children() {
                    prop_assert!(
                        parents.get(&egraph.find(child)).is_some_and(|list| {
                            list.iter().any(|(pclass, _)| *pclass == class.id)
                        }),
                        "missing parent edge {child} -> {}", class.id
                    );
                }
            }
        }
    }
}
