//! Integration tests for the exchange formats: ASCII AIGER, the ABC-style
//! equation format, and the Fig. 7 intermediate DSL, applied to the
//! generated benchmark circuits.

use aig::io::{read_aiger, read_eqn, write_aiger, write_eqn};
use aig::Simulator;
use emorphic::aig_to_egraph;
use emorphic::dsl::DslDocument;

fn same_function(a: &aig::Aig, b: &aig::Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    let sa = Simulator::random(a, 8, 1234);
    let sb = Simulator::random(b, 8, 1234);
    sa.output_signatures(a) == sb.output_signatures(b)
}

#[test]
fn aiger_roundtrip_on_benchmark_suite() {
    for circuit in benchgen::epfl_like_suite(benchgen::SuiteScale::Tiny) {
        let text = write_aiger(&circuit.aig);
        let back = read_aiger(&text).unwrap_or_else(|e| panic!("{}: {e}", circuit.name));
        assert_eq!(
            back.num_inputs(),
            circuit.aig.num_inputs(),
            "{}",
            circuit.name
        );
        assert_eq!(
            back.num_outputs(),
            circuit.aig.num_outputs(),
            "{}",
            circuit.name
        );
        assert!(same_function(&circuit.aig, &back), "{}", circuit.name);
    }
}

#[test]
fn eqn_roundtrip_on_benchmark_suite() {
    for circuit in [
        benchgen::adder(8),
        benchgen::arbiter(8),
        benchgen::mem_ctrl(5),
    ] {
        let text = write_eqn(&circuit.aig);
        let back = read_eqn(&text).unwrap_or_else(|e| panic!("{}: {e}", circuit.name));
        assert!(same_function(&circuit.aig, &back), "{}", circuit.name);
        assert_eq!(back.output_names(), circuit.aig.output_names());
    }
}

#[test]
fn dsl_document_roundtrip_on_benchmark_circuit() {
    let circuit = benchgen::multiplier(4).aig;
    let conversion = aig_to_egraph(&circuit);
    let doc = DslDocument::from_conversion(&conversion);
    let json = doc.to_json();
    let parsed = DslDocument::from_json(&json).expect("valid JSON");
    assert_eq!(parsed, doc);
    let (egraph, roots) = parsed.to_egraph().expect("reconstructible");
    assert_eq!(egraph.num_classes(), conversion.egraph.num_classes());
    assert_eq!(roots.len(), circuit.num_outputs());
}

#[test]
fn formats_compose_aiger_to_eqn_and_back() {
    let circuit = benchgen::adder(6).aig;
    let aiger_text = write_aiger(&circuit);
    let from_aiger = read_aiger(&aiger_text).unwrap();
    let eqn_text = write_eqn(&from_aiger);
    let from_eqn = read_eqn(&eqn_text).unwrap();
    assert!(same_function(&circuit, &from_eqn));
}
