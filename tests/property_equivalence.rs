//! Property-based tests: every transformation in the stack must preserve the
//! Boolean function of randomly generated circuits.

use aig::Simulator;
use benchgen::random_aig;
use cec::{check_equivalence, CecOptions};
use egraph::{AstSize, Extractor, Runner, Scheduler};
use emorphic::{aig_to_egraph, all_rules, selection_to_aig};
use logic_opt::{balance, dch_like, refactor, rewrite, DchOptions};
use proptest::prelude::*;
use techmap::cell::map_to_cells;
use techmap::library::asap7_like;
use techmap::sop::sop_balance;
use techmap::MapOptions;

/// Fast equivalence check for property tests: a healthy amount of random
/// simulation (for wide circuits) or exhaustive evaluation (for narrow ones).
fn functionally_equal(a: &aig::Aig, b: &aig::Aig) -> bool {
    if a.num_inputs() <= 10 {
        let patterns = 1usize << a.num_inputs();
        (0..patterns).all(|p| {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            a.evaluate(&bits) == b.evaluate(&bits)
        })
    } else {
        let sa = Simulator::random(a, 8, 99);
        let sb = Simulator::random(b, 8, 99);
        sa.output_signatures(a) == sb.output_signatures(b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn logic_opt_passes_preserve_function(
        inputs in 3usize..8,
        ands in 10usize..80,
        outputs in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let circuit = random_aig(inputs, ands, outputs, seed);
        for (name, transformed) in [
            ("balance", balance(&circuit)),
            ("rewrite", rewrite(&circuit)),
            ("refactor", refactor(&circuit)),
            ("strash", circuit.strash_copy()),
        ] {
            prop_assert!(functionally_equal(&circuit, &transformed), "{name} broke the function");
        }
    }

    #[test]
    fn sop_balance_and_mapping_preserve_function(
        inputs in 3usize..8,
        ands in 10usize..60,
        seed in 0u64..1_000,
    ) {
        let circuit = random_aig(inputs, ands, 2, seed);
        let balanced = sop_balance(&circuit, &MapOptions::lut6());
        prop_assert!(functionally_equal(&circuit, &balanced));
        // Mapped netlist evaluation must also agree on every pattern.
        let library = asap7_like();
        let netlist = map_to_cells(&circuit, &library, &MapOptions::default());
        for p in 0..(1usize << inputs.min(8)) {
            let bits: Vec<bool> = (0..inputs).map(|i| p >> i & 1 == 1).collect();
            prop_assert_eq!(netlist.evaluate(&circuit, &bits), circuit.evaluate(&bits));
        }
    }

    #[test]
    fn egraph_roundtrip_preserves_function_after_rewriting(
        inputs in 3usize..7,
        ands in 8usize..40,
        seed in 0u64..1_000,
    ) {
        let circuit = random_aig(inputs, ands, 2, seed);
        let conversion = aig_to_egraph(&circuit);
        let runner = Runner::with_egraph(conversion.egraph.clone())
            .with_iter_limit(3)
            .with_node_limit(10_000)
            .with_scheduler(Scheduler::Backoff { match_limit: 300, ban_length: 2 })
            .run(&all_rules());
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let roots: Vec<_> = conversion.roots.iter().map(|&r| runner.egraph.find(r)).collect();
        let back = selection_to_aig(
            &runner.egraph,
            &extractor.selection(),
            &roots,
            &conversion.input_names,
            &conversion.output_names,
            "roundtrip",
        );
        prop_assert!(functionally_equal(&circuit, &back));
    }

    #[test]
    fn dch_and_cec_agree_with_simulation(
        inputs in 3usize..7,
        ands in 8usize..40,
        seed in 0u64..500,
    ) {
        let circuit = random_aig(inputs, ands, 2, seed);
        let choices = dch_like(&circuit, &DchOptions::default());
        prop_assert!(functionally_equal(&circuit, &choices));
        let verdict = check_equivalence(&circuit, &choices, &CecOptions::default());
        prop_assert!(verdict.is_equivalent());
    }
}
