//! Regression tests for the monotone timing knobs of the standard-cell
//! mapper, pinned on fixed benchgen circuits:
//!
//! * more area-recovery passes never increase area at a fixed delay target
//!   (the recovery loop measures each pass exactly and keeps only strict
//!   improvements), and
//! * tightening the delay target never makes the mapper *report* a delay
//!   below the true achievable critical path (impossible targets are
//!   floored, not faked).

use techmap::cell::{map_to_cells, Netlist};
use techmap::library::asap7_like;
use techmap::MapOptions;

fn fixed_circuits() -> Vec<aig::Aig> {
    vec![
        benchgen::adder(8).aig,
        benchgen::multiplier(4).aig,
        benchgen::arbiter(8).aig,
        benchgen::square_root(8).aig,
    ]
}

fn map(circuit: &aig::Aig, passes: usize, target: Option<f64>) -> Netlist {
    map_to_cells(
        circuit,
        &asap7_like(),
        &MapOptions {
            area_passes: passes,
            delay_target_ps: target,
            ..MapOptions::default()
        },
    )
}

#[test]
fn more_recovery_passes_never_increase_area_at_fixed_target() {
    for circuit in fixed_circuits() {
        let optimal = map(&circuit, 0, None);
        for &target in &[None, Some(optimal.delay_ps() * 1.3), Some(f64::MAX / 4.0)] {
            let mut last_area = f64::INFINITY;
            for passes in 0..4usize {
                let netlist = map(&circuit, passes, target);
                assert!(
                    netlist.area_um2() <= last_area + 1e-9,
                    "{}: target {target:?}, {passes} passes grew area {} past {last_area}",
                    circuit.name(),
                    netlist.area_um2()
                );
                last_area = netlist.area_um2();
                // The target (floored at the critical path) is always met.
                assert!(netlist.delay_ps() <= netlist.delay_target_ps() + 1e-9);
            }
        }
    }
}

#[test]
fn tightening_the_target_never_fakes_a_faster_netlist() {
    for circuit in fixed_circuits() {
        let optimal = map(&circuit, 0, None);
        let critical = optimal.delay_ps();
        // Targets from impossible to generous: the reported delay never
        // drops below the delay-optimal critical path, and the effective
        // target never drops below it either.
        for scale in [0.0, 0.25, 0.5, 0.9, 1.0, 1.5, 4.0] {
            let netlist = map(&circuit, 2, Some(critical * scale));
            assert!(
                netlist.delay_ps() >= critical - 1e-9,
                "{}: target scale {scale} reported delay {} below critical {critical}",
                circuit.name(),
                netlist.delay_ps()
            );
            assert!(
                netlist.delay_target_ps() >= critical - 1e-9,
                "{}: effective target {} below critical {critical}",
                circuit.name(),
                netlist.delay_target_ps()
            );
            assert!(netlist.worst_slack_ps() >= -1e-9);
        }
    }
}

#[test]
fn loose_targets_monotonically_admit_recovery() {
    // A looser target can only relax the recovery constraints; the kept
    // netlist never exceeds the delay-optimal area (keep-best) and always
    // meets its own effective target.
    for circuit in fixed_circuits() {
        let optimal = map(&circuit, 0, None);
        for scale in [1.0, 1.2, 2.0, 8.0] {
            let target = optimal.delay_ps() * scale;
            let netlist = map(&circuit, 3, Some(target));
            assert!(
                netlist.area_um2() <= optimal.area_um2() + 1e-9,
                "{}",
                circuit.name()
            );
            assert!(netlist.delay_ps() <= target + 1e-9, "{}", circuit.name());
        }
    }
}
