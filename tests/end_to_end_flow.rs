//! Workspace integration tests: the complete E-morphic flow on several
//! benchmark circuits, spanning every crate in the workspace.

use cec::{check_equivalence, CecOptions};
use emorphic::flow::{baseline_flow, emorphic_flow, FlowConfig};

fn tiny_suite() -> Vec<benchgen::BenchCircuit> {
    // A cross-section of the benchmark families at very small sizes.
    vec![
        benchgen::adder(6),
        benchgen::multiplier(4),
        benchgen::arbiter(8),
        benchgen::mem_ctrl(5),
    ]
}

#[test]
fn baseline_flow_runs_on_every_circuit_family() {
    let config = FlowConfig::fast();
    for circuit in tiny_suite() {
        let result = baseline_flow(&circuit.aig, &config);
        assert!(result.qor.area_um2 > 0.0, "{}", circuit.name);
        assert!(result.qor.delay_ps > 0.0, "{}", circuit.name);
        assert_eq!(result.qor.name, circuit.name);
        // The final technology-independent network is still equivalent.
        let check = check_equivalence(&circuit.aig, &result.final_aig, &CecOptions::default());
        assert!(check.is_equivalent(), "{}: {:?}", circuit.name, check);
    }
}

#[test]
fn emorphic_flow_is_equivalence_preserving_end_to_end() {
    let config = FlowConfig::fast();
    for circuit in tiny_suite() {
        let result = emorphic_flow(&circuit.aig, &config);
        assert!(
            result.verified,
            "{} failed internal verification",
            circuit.name
        );
        let check = check_equivalence(&circuit.aig, &result.final_aig, &CecOptions::default());
        assert!(check.is_equivalent(), "{}: {:?}", circuit.name, check);
        assert!(result.egraph_nodes >= result.egraph_classes);
        assert!(result.egraph_classes > 0);
    }
}

#[test]
fn emorphic_explores_more_structures_than_it_started_with() {
    let config = FlowConfig::fast();
    let circuit = benchgen::adder(8);
    let result = emorphic_flow(&circuit.aig, &config);
    // After rewriting there must be strictly more e-nodes than e-classes:
    // multiple structural choices per signal (the paper's core premise).
    assert!(
        result.egraph_nodes > result.egraph_classes,
        "{} e-nodes vs {} e-classes",
        result.egraph_nodes,
        result.egraph_classes
    );
}

#[test]
fn flow_runtime_breakdown_is_consistent() {
    let config = FlowConfig::fast();
    let result = emorphic_flow(&benchgen::adder(6).aig, &config);
    let total = result.breakdown.total();
    // The four parts cover disjoint intervals of the flow, so their sum can
    // never exceed the measured runtime (the old double-counted conversion
    // time violated exactly this).
    assert!(total <= result.runtime + std::time::Duration::from_millis(5));
    let (a, b, c, d) = result.breakdown.percentages();
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0);
    assert!((a + b + c + d - 100.0).abs() < 1.0);
}
