//! Smoke test: the `quickstart` example path end-to-end — generate a circuit
//! with `benchgen`, run the E-morphic flow (AIG → e-graph saturation → SA
//! extraction → technology mapping) against the conventional baseline, and
//! check the results are sane. CI runs this on every push so the full
//! pipeline is exercised, not just per-crate unit tests.

use emorphic::flow::{baseline_flow, emorphic_flow, FlowConfig};

#[test]
fn quickstart_pipeline_end_to_end() {
    let circuit = benchgen::adder(12).aig;
    assert_eq!(circuit.num_inputs(), 24, "12-bit adder: two 12-bit words");
    assert_eq!(circuit.num_outputs(), 13, "12-bit sum + carry-out");
    assert!(circuit.num_ands() > 0);
    assert!(circuit.depth() > 0);

    let config = FlowConfig::fast();

    // Conventional delay-oriented baseline.
    let baseline = baseline_flow(&circuit, &config);
    assert!(baseline.verified, "baseline flow must verify");
    assert!(baseline.qor.area_um2 > 0.0);
    assert!(baseline.qor.delay_ps > 0.0);

    // The E-morphic flow: saturation + SA extraction before the final round.
    let emorphic = emorphic_flow(&circuit, &config);
    assert!(
        emorphic.verified,
        "E-morphic flow on a small adder must prove equivalence"
    );
    assert!(
        emorphic.egraph_nodes > 0 && emorphic.egraph_classes > 0,
        "rewriting phase must have produced an e-graph"
    );
    assert!(emorphic.qor.area_um2 > 0.0);
    assert!(emorphic.qor.delay_ps > 0.0);

    // The final network must still implement a 12-bit adder: spot-check a
    // few input patterns directly on the pre-mapping AIG.
    let final_aig = &emorphic.final_aig;
    assert_eq!(final_aig.num_inputs(), circuit.num_inputs());
    assert_eq!(final_aig.num_outputs(), circuit.num_outputs());
    for pattern in [0usize, 1, 42, 1 << 20, (1 << 24) - 1] {
        let bits: Vec<bool> = (0..circuit.num_inputs())
            .map(|i| pattern >> i & 1 == 1)
            .collect();
        assert_eq!(
            final_aig.evaluate(&bits),
            circuit.evaluate(&bits),
            "mismatch on input pattern {pattern}"
        );
    }

    // QoR comparison machinery (what the quickstart prints).
    let improvement = emorphic.qor.improvement_over(&baseline.qor);
    assert!(improvement.area_pct.is_finite());
    assert!(improvement.delay_pct.is_finite());
    let (conventional, conversion, extraction, verification) = emorphic.breakdown.percentages();
    assert!(
        (conventional + conversion + extraction + verification - 100.0).abs() < 1.0,
        "runtime breakdown must sum to ~100%"
    );
}
