//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`](serde::value::Value) tree
//! as standard JSON. Supports everything the workspace serializes: objects,
//! arrays, strings (with escapes), signed/unsigned integers, floats, bools
//! and nulls.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_text(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a raw [`Value`].
pub fn parse_value_text(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            write_newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, level + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out);
            }
            write_newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn write_newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display; force a decimal point so the
        // value parses back as a float.
        let text = x.to_string();
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; match serde_json's lossy behaviour of null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos}",
            byte as char,
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our printer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .ok()
            .and_then(|_| text.parse::<i64>().ok())
            .map(Value::Int)
            .ok_or_else(|| Error::new(format!("integer `{text}` out of range")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error::new(format!("integer `{text}` out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x \"quoted\"\n".into())),
            ("count".into(), Value::UInt(42)),
            ("delta".into(), Value::Int(-7)),
            ("ratio".into(), Value::Float(0.1)),
            ("whole".into(), Value::Float(2.0)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&v, None, 0, &mut s);
            s
        };
        let pretty = {
            let mut s = String::new();
            write_value(&v, Some(2), 0, &mut s);
            s
        };
        // Floats printed without fraction keep a `.0` so they parse back as
        // floats; everything else round-trips exactly.
        let back = parse_value_text(&compact).unwrap();
        assert_eq!(back, v);
        let back = parse_value_text(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value_text("{").is_err());
        assert!(parse_value_text("[1,]").is_err());
        assert!(parse_value_text("12 34").is_err());
        assert!(parse_value_text("\"unterminated").is_err());
    }
}
