//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation of the API surface the E-morphic crates use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random`, `random_bool` and `random_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which the test-suite and benchmark reproducibility rely
//! on. It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(reject_sample(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased sampling of `[0, span)` by rejection (`span == 0` means the full
/// 64-bit range).
#[inline]
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % span;
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
