//! Vendored, offline stand-in for `criterion`.
//!
//! Compiles the same benchmark-definition API the workspace's Criterion
//! benches use (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_with_input`, `BenchmarkId`) and, when actually run, executes a
//! simple warmup + timed-sample loop and prints median/mean wall-clock
//! times. No statistical analysis, plots or HTML reports — the CI contract
//! is `cargo bench --no-run` (compile only); local runs give quick, honest
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility; the
    /// simple runner is driven by sample count only.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the simple runner).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    /// `(elapsed, iterations)` per recorded sample. Pairing them keeps
    /// multiple `iter` calls in one closure correct: each sample is scaled
    /// by its own calibration, not whichever ran last.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so one sample
    /// takes a measurable amount of time, then recording the configured
    /// number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~1ms (or a single iteration is already slow).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no measurement: closure never called iter)");
        return;
    }
    let last_iters = bencher.samples.last().map_or(1, |&(_, iters)| iters);
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_secs_f64() / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<60} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_time(median),
        format_time(mean),
        per_iter.len(),
        last_iters
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
