//! Vendored `#[derive(Serialize, Deserialize)]` for the offline serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Supports the shapes the workspace actually derives:
//! named structs (with `#[serde(skip)]` fields), newtype/tuple/unit structs,
//! and enums with unit, tuple and struct variants (externally tagged, as in
//! real serde). Generics are intentionally rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading `#[...]` attributes, returning whether any of them is
/// exactly `#[serde(skip)]`. Unknown `#[serde(...)]` attributes are rejected
/// so unsupported serde features fail loudly at compile time.
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(i + 1) else {
            panic!("serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let arg = match inner.get(1) {
                    Some(TokenTree::Group(ag)) => ag.stream().to_string(),
                    _ => String::new(),
                };
                match arg.trim() {
                    "skip" => skip = true,
                    other => panic!(
                        "serde_derive (vendored): unsupported attribute #[serde({other})]; \
                         only #[serde(skip)] is implemented"
                    ),
                }
            }
        }
        i += 2;
    }
    (i, skip)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level fields in a tuple-struct/tuple-variant body, treating
/// commas inside angle brackets as part of one type.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses the fields of a named-struct (or struct-variant) body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = eat_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit enum discriminants are not supported")
            }
            other => panic!("serde_derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, _) = eat_attrs(&tokens, 0);
    let mut i = eat_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported (type `{name}`)");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Unit => body.push_str(&format!("{VALUE}::Null")),
        Shape::Newtype => body.push_str("::serde::Serialize::to_value(&self.0)"),
        Shape::Tuple(n) => {
            body.push_str(&format!("{VALUE}::Array(vec!["));
            for idx in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
            }
            body.push_str("])");
        }
        Shape::Named(fields) => {
            body.push_str("{ let mut fields: Vec<(String, ");
            body.push_str(VALUE);
            body.push_str(")> = Vec::new();");
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                let _ = write!(
                    body,
                    "fields.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{fname})));"
                );
            }
            let _ = write!(body, "{VALUE}::Object(fields) }}");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vname} => {VALUE}::Str(\"{vname}\".to_string()),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("{VALUE}::Array(vec![{}])", items.join(","))
                        };
                        let _ = write!(
                            body,
                            "{name}::{vname}({binds}) => {VALUE}::Object(vec![(\
                             \"{vname}\".to_string(), {payload})]),",
                            binds = binds.join(",")
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut payload =
                            format!("{{ let mut fields: Vec<(String, {VALUE})> = Vec::new();");
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            let _ = write!(
                                payload,
                                "fields.push((\"{fname}\".to_string(), \
                                 ::serde::Serialize::to_value({fname})));"
                            );
                        }
                        let _ = write!(payload, "{VALUE}::Object(fields) }}");
                        let _ = write!(
                            body,
                            "{name}::{vname} {{ {binds} }} => {VALUE}::Object(vec![(\
                             \"{vname}\".to_string(), {payload})]),",
                            binds = binds.join(",")
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {VALUE} {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Generates the expression rebuilding one named field from an object value.
fn named_field_expr(type_name: &str, fname: &str, skip: bool) -> String {
    if skip {
        return format!("{fname}: ::std::default::Default::default(),");
    }
    format!(
        "{fname}: match __value.get(\"{fname}\") {{\n\
             Some(__v) => ::serde::Deserialize::from_value(__v).map_err(|e| \
                 ::serde::Error(format!(\"{type_name}.{fname}: {{e}}\")))?,\n\
             None => ::serde::Deserialize::from_value(&{VALUE}::Null).map_err(|_| \
                 ::serde::Error(\"missing field `{type_name}.{fname}`\".to_string()))?,\n\
         }},"
    )
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Unit => body.push_str(&format!("Ok({name})")),
        Shape::Newtype => body.push_str(&format!(
            "::serde::Deserialize::from_value(__value).map({name})"
        )),
        Shape::Tuple(n) => {
            let _ = write!(
                body,
                "match __value {{ {VALUE}::Array(__items) if __items.len() == {n} => Ok({name}("
            );
            for idx in 0..*n {
                let _ = write!(body, "::serde::Deserialize::from_value(&__items[{idx}])?,");
            }
            let _ = write!(
                body,
                ")), __other => Err(::serde::Error::expected(\"array of {n}\", __other)) }}"
            );
        }
        Shape::Named(fields) => {
            let _ = write!(body, "match __value {{ {VALUE}::Object(_) => Ok({name} {{");
            for f in fields {
                body.push_str(&named_field_expr(name, &f.name, f.skip));
            }
            let _ = write!(
                body,
                "}}), __other => Err(::serde::Error::expected(\"object\", __other)) }}"
            );
        }
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are plain strings, payload
            // variants are single-entry objects.
            body.push_str("match __value {");
            let _ = write!(body, "{VALUE}::Str(__s) => match __s.as_str() {{");
            for v in variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
            {
                let vname = &v.name;
                let _ = write!(body, "\"{vname}\" => Ok({name}::{vname}),");
            }
            let _ = write!(
                body,
                "__other => Err(::serde::Error(format!(\
                 \"unknown unit variant `{{__other}}` for {name}\"))) }},"
            );
            let _ = write!(
                body,
                "{VALUE}::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{"
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => match __payload {{ {VALUE}::Null => Ok({name}::{vname}), \
                             __other => Err(::serde::Error::expected(\"null\", __other)) }},"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => ::serde::Deserialize::from_value(__payload)\
                             .map({name}::{vname}).map_err(|e| \
                             ::serde::Error(format!(\"{name}::{vname}: {{e}}\"))),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let mut items = String::new();
                        for idx in 0..*n {
                            let _ = write!(
                                items,
                                "::serde::Deserialize::from_value(&__items[{idx}])?,"
                            );
                        }
                        let _ = write!(
                            body,
                            "\"{vname}\" => match __payload {{\n\
                             {VALUE}::Array(__items) if __items.len() == {n} => \
                                 Ok({name}::{vname}({items})),\n\
                             __other => Err(::serde::Error::expected(\"array of {n}\", __other)),\n\
                             }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let mut items = String::new();
                        for f in fields {
                            // Reuse the struct-field logic with __payload as
                            // the object being read.
                            items.push_str(
                                &named_field_expr(&format!("{name}::{vname}"), &f.name, f.skip)
                                    .replace("__value.get", "__payload.get"),
                            );
                        }
                        let _ = write!(
                            body,
                            "\"{vname}\" => match __payload {{\n\
                             {VALUE}::Object(_) => Ok({name}::{vname} {{ {items} }}),\n\
                             __other => Err(::serde::Error::expected(\"object\", __other)),\n\
                             }},"
                        );
                    }
                }
            }
            let _ = write!(
                body,
                "__other => Err(::serde::Error(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))) }} }},"
            );
            let _ = write!(
                body,
                "__other => Err(::serde::Error::expected(\"{name} variant\", __other)) }}"
            );
        }
    }
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &{VALUE}) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
