//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(skip)]` on fields) and the trait plumbing consumed by
//! the vendored `serde_json`.
//!
//! Instead of serde's zero-copy visitor architecture, everything goes through
//! an owned [`value::Value`] tree — dramatically simpler, and plenty for the
//! configuration/report/model payloads this workspace (de)serializes.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`, reporting a path-annotated error on
    /// shape mismatches.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Standard "expected X, found Y" shape-mismatch error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("fixed-length array", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must serialize to JSON object keys (strings).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!("invalid integer key {key:?}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord + std::hash::Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}
