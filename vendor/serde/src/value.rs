//! The owned JSON-like value tree all (de)serialization goes through.

/// An owned JSON-compatible value.
///
/// Integers keep their signedness ([`Value::Int`] vs [`Value::UInt`]) so
/// `u64::MAX` survives a round-trip; floats are [`Value::Float`]. Objects
/// preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}
