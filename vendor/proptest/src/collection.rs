//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};
use rand::RngExt;

/// Anything usable as the size argument of [`vec`]: a fixed `usize` or a
/// `usize` range.
pub trait SizeBounds {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeBounds for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeBounds for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S, B> {
    element: S,
    size: B,
}

impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a strategy for `Vec`s with `size` elements (fixed or ranged).
pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
    VecStrategy { element, size }
}
