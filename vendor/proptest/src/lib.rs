//! Vendored, offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, tuple and
//! integer-range strategies, [`collection::vec`], `any::<T>()`,
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (`Debug`-printed) and the deterministic case seed; minimization is done
//!   by hand and committed as a regression test.
//! * **Deterministic.** Case `i` of every test derives its RNG seed from a
//!   fixed constant and `i`, so failures reproduce across runs and machines.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

pub mod collection;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// The RNG handed to strategies. Wraps the vendored `StdRng`.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one test case, derived from the global seed and
    /// the case index so every case is independent and reproducible.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name keeps distinct tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Exposes the underlying generator for range sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, panicking after too many
    /// rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// A type-erased strategy (what [`prop_oneof!`] produces).
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn sample_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn sample_erased(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_erased(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.rng().random_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random::<f64>()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Error type produced by `prop_assert*` macros inside a test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Test-runner entry point used by the expansion of [`proptest!`].
///
/// Runs `cases` samples of `strategy`, calling `body` on each; on failure it
/// panics with the `Debug` rendering of the generated inputs and the case
/// index, which is enough to reproduce deterministically.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // PROPTEST_CASES overrides the per-test case count (matching upstream
    // proptest), so CI or a local hunt can crank coverage without edits.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for case in 0..u64::from(cases) {
        let mut rng = TestRng::for_case(test_name, case);
        let input = strategy.sample(&mut rng);
        let rendered = format!("{input:?}");
        if let Err(e) = body(input) {
            panic!(
                "proptest case {case} of `{test_name}` failed: {e}\n    input: {rendered}\n\
                 (vendored proptest: no shrinking; inputs above are the exact failing case)"
            );
        }
    }
}

/// `proptest!` — the test-defining macro.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_test(x in 0usize..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::Union(vec![ $($crate::Strategy::boxed($strategy)),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = (0usize..100, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 1000 });
        let a: Vec<usize> = (0..20)
            .map(|i| strat.sample(&mut crate::TestRng::for_case("t", i)))
            .collect();
        let b: Vec<usize> = (0..20)
            .map(|i| strat.sample(&mut crate::TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            for item in &v {
                prop_assert!(*item < 10);
            }
        }

        #[test]
        fn oneof_hits_all_arms(picks in crate::collection::vec(prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 64)) {
            for p in &picks {
                prop_assert!(*p <= 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "input:")]
    fn failures_report_inputs() {
        // `#[allow(unused)]` rather than `#[test]`: the harness cannot
        // collect tests nested inside a function, so call it directly.
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
