//! DIMACS round-trip property tests plus typed-error rejection cases for
//! `sat::dimacs`, matching the reader-hardening pattern from the AIGER work:
//! well-formed text must round-trip losslessly, malformed text must fail
//! with the *specific* [`DimacsError`] variant, never panic or silently
//! repair.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use proptest::prelude::*;
use sat::dimacs::{CnfFormula, DimacsError};
use sat::{ClauseSink, Lit, SatResult, Var};

fn formula_strategy() -> impl Strategy<Value = (u32, Vec<Vec<(u32, bool)>>)> {
    (1u32..25).prop_flat_map(|num_vars| {
        let lit = (0..num_vars, any::<bool>());
        let clause = proptest::collection::vec(lit, 0..=6);
        let clauses = proptest::collection::vec(clause, 0..=32);
        (Just(num_vars), clauses)
    })
}

fn build(num_vars: u32, raw: &[Vec<(u32, bool)>]) -> CnfFormula {
    let mut cnf = CnfFormula::default();
    for _ in 0..num_vars {
        cnf.new_var();
    }
    for cl in raw {
        let lits: Vec<Lit> = cl.iter().map(|&(v, n)| Lit::new(Var(v), n)).collect();
        cnf.add_clause(&lits);
    }
    cnf
}

proptest! {
    #[test]
    fn roundtrip_is_lossless(formula_input in formula_strategy()) {
        let (num_vars, raw) = formula_input;
        let cnf = build(num_vars, &raw);
        let text = cnf.to_dimacs();
        let parsed = CnfFormula::parse(&text).expect("own output must parse");
        prop_assert_eq!(&cnf, &parsed);
        // And a second trip is a fixpoint.
        prop_assert_eq!(parsed.to_dimacs(), text);
    }

    #[test]
    fn roundtrip_preserves_verdict(formula_input in formula_strategy()) {
        let (num_vars, raw) = formula_input;
        let cnf = build(num_vars, &raw);
        let parsed = CnfFormula::parse(&cnf.to_dimacs()).expect("parse");
        let mut direct = cnf.to_solver();
        let mut reparsed = parsed.to_solver();
        prop_assert_eq!(direct.solve(), reparsed.solve());
    }

    /// Appending a clause with an out-of-header-range literal must be
    /// rejected with the typed variant, not absorbed by growing `num_vars`.
    #[test]
    fn out_of_range_literal_is_rejected(
        formula_input in formula_strategy(),
        excess in 1u32..6,
    ) {
        let (num_vars, raw) = formula_input;
        let cnf = build(num_vars, &raw);
        let bad = num_vars + excess;
        let text = format!("{}{} 0\n", cnf.to_dimacs(), bad);
        prop_assert_eq!(
            CnfFormula::parse(&text),
            Err(DimacsError::LiteralOutOfRange {
                literal: i64::from(bad),
                num_vars: num_vars as usize,
            })
        );
    }

    /// Dropping the final terminating 0 must be detected.
    #[test]
    fn unterminated_final_clause_is_rejected(formula_input in formula_strategy()) {
        let (num_vars, raw) = formula_input;
        let cnf = build(num_vars, &raw);
        let text = format!("{}1\n", cnf.to_dimacs());
        prop_assert_eq!(
            CnfFormula::parse(&text),
            Err(DimacsError::UnterminatedClause)
        );
    }
}

#[test]
fn rejection_cases_are_typed() {
    // Malformed or missing headers.
    assert_eq!(CnfFormula::parse(""), Err(DimacsError::MissingHeader));
    assert_eq!(
        CnfFormula::parse("c only comments\n"),
        Err(DimacsError::MissingHeader)
    );
    assert_eq!(
        CnfFormula::parse("1 -2 0\np cnf 2 1\n"),
        Err(DimacsError::MissingHeader),
        "clause data before the header"
    );
    for bad_header in [
        "p cnf\n",
        "p cnf 2\n",
        "p cnf 2 1 7\n",
        "p sat 2 1\n",
        "p cnf two 1\n",
        "p cnf 2 one\n",
        "p cnf -2 1\n",
    ] {
        assert!(
            matches!(
                CnfFormula::parse(bad_header),
                Err(DimacsError::BadHeader(_))
            ),
            "{bad_header:?} should be a BadHeader"
        );
    }
    assert_eq!(
        CnfFormula::parse("p cnf 1 1\np cnf 1 1\n1 0\n"),
        Err(DimacsError::DuplicateHeader)
    );
    // Literal errors.
    assert!(matches!(
        CnfFormula::parse("p cnf 2 1\n1 x 0\n"),
        Err(DimacsError::BadLiteral(_))
    ));
    assert_eq!(
        CnfFormula::parse("p cnf 2 1\n-3 0\n"),
        Err(DimacsError::LiteralOutOfRange {
            literal: -3,
            num_vars: 2
        })
    );
    // Missing terminating zero.
    assert_eq!(
        CnfFormula::parse("p cnf 2 1\n1 -2"),
        Err(DimacsError::UnterminatedClause)
    );
}

#[test]
fn parsed_formula_loads_into_both_engines() {
    let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-3 0\n";
    let cnf = CnfFormula::parse(text).unwrap();
    assert_eq!(cnf.to_solver().solve(), SatResult::Sat);
    assert_eq!(cnf.to_reference_solver().solve(), SatResult::Sat);
}
