//! Differential property tests: the modern CDCL engine ([`sat::Solver`])
//! against the retained first-generation oracle ([`sat::ReferenceSolver`]).
//!
//! On random CNFs, with and without assumptions, across incremental
//! clause-addition/solve interleavings:
//! * verdicts must be identical (budgets are unlimited, so `Unknown` never
//!   appears);
//! * every `Sat` model must satisfy every clause of the formula, checked by
//!   direct clause evaluation on each engine's own model;
//! * every failed-assumption core returned by the new engine must itself be
//!   unsatisfiable together with the formula (validated on both engines).
//!
//! Run with `PROPTEST_CASES=2000` (or higher) for the PR gate.

use proptest::prelude::*;
use sat::{Lit, ReferenceSolver, SatResult, Solver, Var};

type RawClause = Vec<(u32, bool)>;

/// Random CNF: `num_vars` in 1..=16, clauses of length 1..=4. Densities span
/// under- and over-constrained, so both verdicts are well represented.
fn cnf_strategy() -> impl Strategy<Value = (u32, Vec<RawClause>)> {
    (1u32..17).prop_flat_map(|num_vars| {
        let lit = (0..num_vars, any::<bool>());
        let clause = proptest::collection::vec(lit, 1..=4);
        let clauses = proptest::collection::vec(clause, 1..=64);
        (Just(num_vars), clauses)
    })
}

fn assumption_strategy(num_vars: u32) -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec((0..num_vars, any::<bool>()), 0..=4)
}

fn build_both(num_vars: u32, clauses: &[RawClause]) -> (Solver, ReferenceSolver, Vec<Vec<Lit>>) {
    let mut solver = Solver::new();
    let mut oracle = ReferenceSolver::new();
    for _ in 0..num_vars {
        solver.new_var();
        oracle.new_var();
    }
    let lit_clauses: Vec<Vec<Lit>> = clauses
        .iter()
        .map(|cl| cl.iter().map(|&(v, neg)| Lit::new(Var(v), neg)).collect())
        .collect();
    for cl in &lit_clauses {
        solver.add_clause(cl);
        oracle.add_clause(cl);
    }
    (solver, oracle, lit_clauses)
}

/// Every clause must contain a literal that is true in the model. A literal
/// left unassigned counts as satisfiable (its variable is free), though both
/// engines in fact produce total assignments.
fn model_satisfies(clauses: &[Vec<Lit>], value: impl Fn(Lit) -> Option<bool>) -> bool {
    clauses
        .iter()
        .all(|cl| cl.iter().any(|&l| value(l).unwrap_or(true)))
}

proptest! {
    #[test]
    fn verdicts_agree_on_random_cnfs(cnf_input in cnf_strategy()) {
        let (num_vars, clauses) = cnf_input;
        let (mut solver, mut oracle, lit_clauses) = build_both(num_vars, &clauses);
        let new_verdict = solver.solve();
        let old_verdict = oracle.solve();
        prop_assert_eq!(new_verdict, old_verdict, "verdict disagreement");
        if new_verdict == SatResult::Sat {
            prop_assert!(
                model_satisfies(&lit_clauses, |l| solver.value(l)),
                "new engine returned a non-model"
            );
            prop_assert!(
                model_satisfies(&lit_clauses, |l| oracle.value(l)),
                "reference returned a non-model"
            );
        }
    }

    #[test]
    fn verdicts_agree_under_assumptions(
        cnf_input in cnf_strategy(),
        raw_assumptions in assumption_strategy(16),
    ) {
        let (num_vars, clauses) = cnf_input;
        let assumptions: Vec<Lit> = raw_assumptions
            .iter()
            .filter(|&&(v, _)| v < num_vars)
            .map(|&(v, neg)| Lit::new(Var(v), neg))
            .collect();
        let (mut solver, mut oracle, lit_clauses) = build_both(num_vars, &clauses);
        let new_verdict = solver.solve_with_assumptions(&assumptions);
        let old_verdict = oracle.solve_with_assumptions(&assumptions);
        prop_assert_eq!(new_verdict, old_verdict, "verdict disagreement under assumptions");
        match new_verdict {
            SatResult::Sat => {
                prop_assert!(model_satisfies(&lit_clauses, |l| solver.value(l)));
                for &a in &assumptions {
                    prop_assert_eq!(solver.value(a), Some(true), "assumption not honored");
                }
            }
            SatResult::Unsat => {
                let core: Vec<Lit> = solver.failed_assumptions().to_vec();
                for l in &core {
                    prop_assert!(
                        assumptions.contains(l),
                        "core literal {} is not among the assumptions", l
                    );
                }
                // The core alone must reproduce Unsat — on both engines.
                prop_assert_eq!(
                    solver.solve_with_assumptions(&core),
                    SatResult::Unsat,
                    "core is not unsatisfiable on the new engine"
                );
                prop_assert_eq!(
                    oracle.solve_with_assumptions(&core),
                    SatResult::Unsat,
                    "core is not unsatisfiable on the reference"
                );
            }
            SatResult::Unknown => prop_assert!(false, "unlimited budget returned Unknown"),
        }
    }

    /// Incremental use: interleave clause additions with assumption solves on
    /// ONE solver instance per engine, as the CEC sweep does.
    #[test]
    fn incremental_interleavings_agree(
        cnf_input in cnf_strategy(),
        assumption_rounds in proptest::collection::vec(assumption_strategy(16), 1..=4),
    ) {
        let (num_vars, clauses) = cnf_input;
        let mut solver = Solver::new();
        let mut oracle = ReferenceSolver::new();
        for _ in 0..num_vars {
            solver.new_var();
            oracle.new_var();
        }
        let chunk = clauses.len().div_ceil(assumption_rounds.len());
        let mut added: Vec<Vec<Lit>> = Vec::new();
        for (round, raw_assumptions) in assumption_rounds.iter().enumerate() {
            for cl in clauses.iter().skip(round * chunk).take(chunk) {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, neg)| Lit::new(Var(v), neg))
                    .collect();
                solver.add_clause(&lits);
                oracle.add_clause(&lits);
                added.push(lits);
            }
            let assumptions: Vec<Lit> = raw_assumptions
                .iter()
                .filter(|&&(v, _)| v < num_vars)
                .map(|&(v, neg)| Lit::new(Var(v), neg))
                .collect();
            let new_verdict = solver.solve_with_assumptions(&assumptions);
            let old_verdict = oracle.solve_with_assumptions(&assumptions);
            prop_assert_eq!(new_verdict, old_verdict, "round {} disagreement", round);
            if new_verdict == SatResult::Sat {
                prop_assert!(model_satisfies(&added, |l| solver.value(l)));
            }
        }
    }
}
