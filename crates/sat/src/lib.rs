//! A CDCL SAT solver.
//!
//! This crate provides the Boolean-satisfiability substrate used by the
//! equivalence checker (`cec`) and by the structural-choice computation in
//! `logic-opt`. The solver implements the standard conflict-driven
//! clause-learning loop: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style activity decision ordering, phase saving, Luby
//! restarts and periodic deletion of inactive learnt clauses. Solving under
//! assumptions is supported for incremental use, and
//! [`Solver::failed_assumptions`] exposes an unsatisfiable assumption core
//! after an `Unsat`-under-assumptions answer.
//!
//! The previous-generation solver is kept as [`ReferenceSolver`]: an
//! independent implementation used as a differential-testing oracle by the
//! property tests and by the `sat_qor` benchmark gate.
//!
//! # Example
//!
//! ```
//! use sat::{Solver, Lit, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);   // a | b
//! solver.add_clause(&[Lit::neg(a)]);                // !a
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert_eq!(solver.value(Lit::pos(b)), Some(true));
//! solver.add_clause(&[Lit::neg(b)]);                // !b -> UNSAT
//! assert_eq!(solver.solve(), SatResult::Unsat);
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
mod literal;
mod reference;
mod solver;

pub use cnf::ClauseSink;
pub use literal::{Lit, Var};
pub use reference::ReferenceSolver;
pub use solver::{SatResult, Solver, SolverAudit, SolverStats};
