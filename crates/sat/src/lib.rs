//! A CDCL SAT solver.
//!
//! This crate provides the Boolean-satisfiability substrate used by the
//! equivalence checker (`cec`) and by the structural-choice computation in
//! `logic-opt`. The solver implements the standard conflict-driven
//! clause-learning loop: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style activity decision ordering, phase saving, Luby
//! restarts and periodic deletion of inactive learnt clauses. Solving under
//! assumptions is supported for incremental use.
//!
//! # Example
//!
//! ```
//! use sat::{Solver, Lit, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);   // a | b
//! solver.add_clause(&[Lit::neg(a)]);                // !a
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert_eq!(solver.value(Lit::pos(b)), Some(true));
//! solver.add_clause(&[Lit::neg(b)]);                // !b -> UNSAT
//! assert_eq!(solver.solve(), SatResult::Unsat);
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
mod literal;
mod solver;

pub use literal::{Lit, Var};
pub use solver::{SatResult, Solver, SolverStats};
