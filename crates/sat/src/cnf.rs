//! CNF construction helpers: Tseitin encodings of common gates.
//!
//! These helpers add the clauses that define a fresh output literal as a
//! Boolean function of input literals, which is how AIGs are translated to
//! CNF by the `cec` crate. They are generic over [`ClauseSink`], so the same
//! encoding can target the main [`Solver`], the [`crate::ReferenceSolver`]
//! differential oracle, or a plain [`crate::dimacs::CnfFormula`].

use crate::{Lit, Solver, Var};

/// Anything clauses can be encoded into: a solver or a CNF container.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;
    /// Adds a clause. Returns `false` if the sink has become trivially
    /// unsatisfiable (containers always return `true`).
    fn add_clause(&mut self, lits: &[Lit]) -> bool;
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits)
    }
}

impl ClauseSink for crate::ReferenceSolver {
    fn new_var(&mut self) -> Var {
        crate::ReferenceSolver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        crate::ReferenceSolver::add_clause(self, lits)
    }
}

/// Adds clauses asserting `out = a AND b`.
pub fn encode_and<S: ClauseSink>(sink: &mut S, out: Lit, a: Lit, b: Lit) {
    // out -> a, out -> b, (a & b) -> out
    sink.add_clause(&[!out, a]);
    sink.add_clause(&[!out, b]);
    sink.add_clause(&[out, !a, !b]);
}

/// Adds clauses asserting `out = a OR b`.
pub fn encode_or<S: ClauseSink>(sink: &mut S, out: Lit, a: Lit, b: Lit) {
    encode_and(sink, !out, !a, !b);
}

/// Adds clauses asserting `out = a XOR b`.
pub fn encode_xor<S: ClauseSink>(sink: &mut S, out: Lit, a: Lit, b: Lit) {
    sink.add_clause(&[!out, a, b]);
    sink.add_clause(&[!out, !a, !b]);
    sink.add_clause(&[out, !a, b]);
    sink.add_clause(&[out, a, !b]);
}

/// Adds clauses asserting `out = (a == b)`.
pub fn encode_equiv<S: ClauseSink>(sink: &mut S, out: Lit, a: Lit, b: Lit) {
    encode_xor(sink, !out, a, b);
}

/// Adds clauses asserting `out = sel ? t : e` (a 2:1 multiplexer).
pub fn encode_mux<S: ClauseSink>(sink: &mut S, out: Lit, sel: Lit, t: Lit, e: Lit) {
    sink.add_clause(&[!sel, !t, out]);
    sink.add_clause(&[!sel, t, !out]);
    sink.add_clause(&[sel, !e, out]);
    sink.add_clause(&[sel, e, !out]);
}

/// Adds clauses asserting that at least one of `lits` is true.
pub fn encode_at_least_one<S: ClauseSink>(sink: &mut S, lits: &[Lit]) {
    sink.add_clause(lits);
}

/// Adds pairwise clauses asserting that at most one of `lits` is true.
pub fn encode_at_most_one<S: ClauseSink>(sink: &mut S, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            sink.add_clause(&[!lits[i], !lits[j]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver, Var};

    fn fresh(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    /// Checks that `encode` defines exactly the truth table `expect`, where
    /// `expect[i]` is the output for the input pattern `i` over `n` inputs.
    fn check_gate(n: usize, expect: &[bool], encode: impl Fn(&mut Solver, Lit, &[Lit])) {
        assert_eq!(expect.len(), 1 << n);
        for (pattern, &expect_out) in expect.iter().enumerate() {
            for force_out in [false, true] {
                let mut s = Solver::new();
                let inputs = fresh(&mut s, n);
                let out = Lit::pos(s.new_var());
                encode(&mut s, out, &inputs);
                let mut assumptions: Vec<Lit> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| if pattern >> i & 1 == 1 { l } else { !l })
                    .collect();
                assumptions.push(if force_out { out } else { !out });
                let result = s.solve_with_assumptions(&assumptions);
                let expected_sat = expect_out == force_out;
                assert_eq!(
                    result,
                    if expected_sat {
                        SatResult::Sat
                    } else {
                        SatResult::Unsat
                    },
                    "pattern {pattern:b}, out={force_out}"
                );
            }
        }
    }

    #[test]
    fn and_gate_truth_table() {
        check_gate(2, &[false, false, false, true], |s, out, ins| {
            encode_and(s, out, ins[0], ins[1])
        });
    }

    #[test]
    fn or_gate_truth_table() {
        check_gate(2, &[false, true, true, true], |s, out, ins| {
            encode_or(s, out, ins[0], ins[1])
        });
    }

    #[test]
    fn xor_gate_truth_table() {
        check_gate(2, &[false, true, true, false], |s, out, ins| {
            encode_xor(s, out, ins[0], ins[1])
        });
    }

    #[test]
    fn equiv_gate_truth_table() {
        check_gate(2, &[true, false, false, true], |s, out, ins| {
            encode_equiv(s, out, ins[0], ins[1])
        });
    }

    #[test]
    fn mux_gate_truth_table() {
        // Inputs ordered (sel, t, e): out = sel ? t : e.
        let mut expect = vec![false; 8];
        for (p, slot) in expect.iter_mut().enumerate() {
            let sel = p & 1 == 1;
            let t = p & 2 == 2;
            let e = p & 4 == 4;
            *slot = if sel { t } else { e };
        }
        check_gate(3, &expect, |s, out, ins| {
            encode_mux(s, out, ins[0], ins[1], ins[2])
        });
    }

    #[test]
    fn cardinality_helpers() {
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..4).map(|_| Lit::pos(s.new_var())).collect();
        encode_at_least_one(&mut s, &lits);
        encode_at_most_one(&mut s, &lits);
        assert_eq!(s.solve(), SatResult::Sat);
        let ones = lits.iter().filter(|&&l| s.value(l) == Some(true)).count();
        assert_eq!(ones, 1);
        // Forcing two of them true is UNSAT.
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], lits[1]]),
            SatResult::Unsat
        );
        let _ = Var(0);
    }
}
