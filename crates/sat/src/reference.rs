//! The original minimal CDCL solver, kept as a differential oracle.
//!
//! This is the solver the crate shipped before the modern engine in
//! `solver.rs` replaced it: bare clause-index watch lists, a lazy
//! duplicate-pushing `BinaryHeap` for VSIDS, no clause deletion and no
//! learnt-clause minimization. It is deliberately left untouched so property
//! tests can check the new engine against an independent implementation
//! (identical verdicts, models validated by clause evaluation).
//!
//! Do not use it on anything performance-critical: the learnt-clause
//! database grows without bound, so long incremental solving sessions slow
//! down over time, and `SolverStats::learnt_clauses` is a monotone counter
//! here (the reference never deletes, so `deleted_clauses` stays 0).

use crate::{Lit, SatResult, SolverStats, Var};
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Activities are never NaN; tie-break on the variable index for
        // determinism.
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.var.0.cmp(&other.var.0))
    }
}

/// A conflict-driven clause-learning SAT solver.
#[derive(Debug, Clone)]
pub struct ReferenceSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assigns: Vec<i8>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: BinaryHeap<HeapEntry>,
    seen: Vec<bool>,
    ok: bool,
    /// Maximum number of conflicts before giving up (`None` = unlimited).
    conflict_budget: Option<u64>,
    stats: SolverStats,
}

impl Default for ReferenceSolver {
    fn default() -> Self {
        Self::new()
    }
}

const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;

impl ReferenceSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        ReferenceSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: BinaryHeap::new(),
            seen: Vec::new(),
            ok: true,
            conflict_budget: None,
            stats: SolverStats::default(),
        }
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.assigns.len() as u32);
        self.assigns.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(HeapEntry { activity: 0.0, var });
        var
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the number of conflicts spent in a single [`ReferenceSolver::solve`] call;
    /// when exceeded the call returns [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.assigns[lit.var().index()];
        if lit.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Returns the model value of a literal after a [`SatResult::Sat`] answer.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        match self.lit_value(lit) {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver becomes trivially
    /// unsatisfiable (conflict at decision level zero).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // The level-0 simplification below is only sound at level 0; after a
        // Sat answer the trail is still populated, so backtrack first. (The
        // one behavioral fix applied to this otherwise-frozen oracle — the
        // original debug_assert made incremental add/solve interleavings
        // unusable.)
        self.cancel_until(0);
        // Simplify: drop duplicate/false literals; detect tautologies and
        // already-satisfied clauses.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal uses unknown variable"
            );
            match self.lit_value(lit) {
                1 => return true, // already satisfied at level 0
                -1 => continue,   // falsified literal drops out
                _ => {}
            }
            if clause.contains(&!lit) {
                return true; // tautology
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(Clause {
                    lits: clause,
                    learnt: false,
                });
                true
            }
        }
    }

    fn attach_clause(&mut self, clause: Clause) -> usize {
        let idx = self.clauses.len();
        self.watches[clause.lits[0].code()].push(idx);
        self.watches[clause.lits[1].code()].push(idx);
        if clause.learnt {
            self.stats.learnt_clauses += 1;
        }
        self.clauses.push(clause);
        idx
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.lit_value(lit), 0);
        let var = lit.var().index();
        self.assigns[var] = if lit.is_neg() { -1 } else { 1 };
        self.phase[var] = !lit.is_neg();
        self.level[var] = self.decision_level();
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Make sure the falsified literal is at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let candidate = self.clauses[ci].lits[k];
                    if self.lit_value(candidate) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[candidate.code()].push(ci);
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == -1 {
                    // Conflict: restore the remaining watches and report.
                    self.watches[false_lit.code()].extend_from_slice(&watch_list);
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
            self.watches[false_lit.code()].extend_from_slice(&watch_list);
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > RESCALE_LIMIT {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.push(HeapEntry {
            activity: self.activity[var.index()],
            var,
        });
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut index = self.trail.len();

        loop {
            {
                let lits: Vec<Lit> = {
                    let clause = &self.clauses[clause_idx];
                    let start = usize::from(p.is_some());
                    clause.lits[start..].to_vec()
                };
                for q in lits {
                    let v = q.var();
                    if !self.seen[v.index()] && self.level[v.index()] > 0 {
                        self.seen[v.index()] = true;
                        self.bump_var(v);
                        if self.level[v.index()] == self.decision_level() {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let p_lit = p.unwrap_or_else(|| unreachable!("found literal"));
            self.seen[p_lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p_lit;
                break;
            }
            clause_idx = self.reason[p_lit.var().index()]
                .unwrap_or_else(|| unreachable!("non-decision literal has a reason"));
        }

        // Clear the seen flags of the literals kept in the learnt clause.
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }

        // Backtrack level: the highest level among the non-asserting literals.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        while self.trail.len() > bound {
            let lit = self
                .trail
                .pop()
                .unwrap_or_else(|| unreachable!("trail non-empty"));
            let var = lit.var();
            self.assigns[var.index()] = 0;
            self.reason[var.index()] = None;
            self.order.push(HeapEntry {
                activity: self.activity[var.index()],
                var,
            });
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.order.pop() {
            if self.assigns[entry.var.index()] == 0 {
                return Some(entry.var);
            }
        }
        // Fall back to a linear scan (heap entries are lazy; some unassigned
        // variables may have been popped earlier as duplicates).
        (0..self.num_vars())
            .map(|i| Var(i as u32))
            .find(|v| self.assigns[v.index()] == 0)
    }

    /// The 1-indexed Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
    fn luby(mut i: u64) -> u64 {
        debug_assert!(i >= 1);
        loop {
            let next_pow = (i + 1).next_power_of_two();
            if i + 1 == next_pow {
                return next_pow / 2;
            }
            i -= next_pow / 2 - 1;
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        let budget_start = self.stats.conflicts;
        let mut restart_idx = 1u64;
        let mut conflicts_until_restart = 100 * Self::luby(restart_idx);

        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    let (learnt, backtrack) = self.analyze(conflict);
                    self.decay_activities();
                    self.learn(learnt, backtrack);

                    if let Some(budget) = self.conflict_budget {
                        if self.stats.conflicts - budget_start > budget {
                            self.cancel_until(0);
                            return SatResult::Unknown;
                        }
                    }
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 {
                        self.stats.restarts += 1;
                        restart_idx += 1;
                        conflicts_until_restart = 100 * Self::luby(restart_idx);
                        self.cancel_until(0);
                        continue;
                    }
                    // Enqueue pending assumptions as pseudo-decisions.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let p = assumptions[self.decision_level() as usize];
                        match self.lit_value(p) {
                            1 => {
                                // Already satisfied: open a dummy level.
                                self.trail_lim.push(self.trail.len());
                            }
                            -1 => {
                                self.cancel_until(0);
                                return SatResult::Unsat;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(p, None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => return SatResult::Sat,
                        Some(var) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::new(var, !self.phase[var.index()]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>, backtrack: u32) {
        self.cancel_until(backtrack);
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
        } else {
            let asserting = learnt[0];
            let idx = self.attach_clause(Clause {
                lits: learnt,
                learnt: true,
            });
            self.enqueue(asserting, Some(idx));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut ReferenceSolver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0]]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = ReferenceSolver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a -> b), (b -> c), a  =>  c must be true.
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1h1, p2h1, at most one pigeon per hole -> UNSAT.
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0]]);
        s.add_clause(&[v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Classic PHP(3,2): each pigeon in some hole, no two pigeons share.
        let mut s = ReferenceSolver::new();
        let mut var = |_p: usize, _h: usize| Lit::pos(s.new_var());
        let x: Vec<Vec<Lit>> = (0..3)
            .map(|p| (0..2).map(|h| var(p, h)).collect())
            .collect();
        for pigeon in &x {
            s.add_clause(pigeon);
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[(p1 + 1)..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_is_satisfiable_with_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x1 = 0 -> satisfiable.
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 3);
        // x1 ^ x2 = 1
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        // x2 ^ x3 = 1
        s.add_clause(&[v[1], v[2]]);
        s.add_clause(&[!v[1], !v[2]]);
        // x3 ^ x1 = 0 (equal)
        s.add_clause(&[!v[2], v[0]]);
        s.add_clause(&[v[2], !v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        let m: Vec<bool> = v.iter().map(|&l| s.value(l).unwrap()).collect();
        assert!(m[0] ^ m[1]);
        assert!(m[1] ^ m[2]);
        assert!(!(m[2] ^ m[0]));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0], !v[1]]), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // The solver is reusable after assumption-based UNSAT.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn assumptions_conflicting_with_units() {
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[v[0]]), SatResult::Sat);
    }

    #[test]
    fn random_3sat_small_instances_agree_with_brute_force() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..30 {
            let n_vars = 6;
            let n_clauses = 18 + (round % 5);
            let mut clause_set = Vec::new();
            for _ in 0..n_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = next() % n_vars;
                    let neg = next() % 2 == 1;
                    clause.push((v, neg));
                }
                clause_set.push(clause);
            }
            // Brute force.
            let mut brute_sat = false;
            for assign in 0u32..(1 << n_vars) {
                let ok = clause_set
                    .iter()
                    .all(|cl| cl.iter().any(|&(v, neg)| ((assign >> v) & 1 == 1) != neg));
                if ok {
                    brute_sat = true;
                    break;
                }
            }
            // CDCL.
            let mut s = ReferenceSolver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            for cl in &clause_set {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, neg)| Lit::new(vars[v as usize], neg))
                    .collect();
                s.add_clause(&lits);
            }
            let res = s.solve();
            assert_eq!(
                res,
                if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "round {round} mismatch"
            );
            if res == SatResult::Sat {
                // The reported model must satisfy every clause.
                for cl in &clause_set {
                    assert!(cl
                        .iter()
                        .any(|&(v, neg)| { s.value(Lit::new(vars[v as usize], neg)).unwrap() }));
                }
            }
        }
    }

    fn pigeonhole_solver(holes: usize) -> ReferenceSolver {
        let mut s = ReferenceSolver::new();
        let x: Vec<Vec<Lit>> = (0..=holes)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for pigeon in &x {
            s.add_clause(pigeon);
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[(p1 + 1)..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard pigeonhole instance with a tiny budget should give Unknown.
        let mut s = pigeonhole_solver(9);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SatResult::Unknown);
    }

    #[test]
    fn pigeonhole_moderate_is_unsat_with_unlimited_budget() {
        // PHP(6, 5) is still exponential for resolution but small enough to
        // finish quickly even in debug builds.
        let mut s = pigeonhole_solver(5);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn stats_are_collected() {
        let mut s = ReferenceSolver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.stats().propagations > 0);
        assert_eq!(s.num_vars(), 4);
        assert!(s.num_clauses() >= 3);
    }
}
