//! Minimal DIMACS CNF import/export, mainly for debugging and for dumping
//! the equivalence-checking instances produced by the `cec` crate.
//!
//! The parser is strict: the `p cnf` header is mandatory and authoritative
//! (literals above the declared variable count are rejected rather than
//! silently growing the formula), a clause not closed by a terminating `0`
//! is an error, and every failure mode is a distinct [`DimacsError`] variant
//! so callers can react programmatically.

use crate::cnf::ClauseSink;
use crate::{Lit, ReferenceSolver, Solver, Var};

/// Errors produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p cnf <vars> <clauses>` line was found.
    MissingHeader,
    /// A `p` line that is not a well-formed `p cnf <vars> <clauses>` header.
    BadHeader(String),
    /// More than one `p cnf` header line.
    DuplicateHeader,
    /// A clause token that is not an integer literal.
    BadLiteral(String),
    /// A literal whose variable exceeds the header's variable count.
    LiteralOutOfRange {
        /// The offending DIMACS literal.
        literal: i64,
        /// The variable count declared by the header.
        num_vars: usize,
    },
    /// Clause data before the header, or a final clause missing its
    /// terminating `0`.
    UnterminatedClause,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "dimacs error: missing 'p cnf' header"),
            DimacsError::BadHeader(line) => {
                write!(f, "dimacs error: bad problem line: {line}")
            }
            DimacsError::DuplicateHeader => {
                write!(f, "dimacs error: duplicate 'p cnf' header")
            }
            DimacsError::BadLiteral(tok) => write!(f, "dimacs error: bad literal: {tok}"),
            DimacsError::LiteralOutOfRange { literal, num_vars } => write!(
                f,
                "dimacs error: literal {literal} out of range for {num_vars} variable(s)"
            ),
            DimacsError::UnterminatedClause => {
                write!(f, "dimacs error: clause not terminated by 0")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// A plain clause database that can be loaded into a [`Solver`] or written
/// out as DIMACS. Also usable as a [`ClauseSink`] encoding target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl ClauseSink for CnfFormula {
    fn new_var(&mut self) -> Var {
        let var = Var(self.num_vars as u32);
        self.num_vars += 1;
        var
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.clauses.push(lits.to_vec());
        true
    }
}

impl CnfFormula {
    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    /// Returns a [`DimacsError`] on malformed or missing headers, malformed
    /// or out-of-range literals, and clauses missing their terminating `0`.
    pub fn parse(text: &str) -> Result<Self, DimacsError> {
        let mut num_vars = 0usize;
        let mut clauses = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        let mut saw_header = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                if saw_header {
                    return Err(DimacsError::DuplicateHeader);
                }
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(DimacsError::BadHeader(line.to_string()));
                }
                num_vars = parts[1]
                    .parse()
                    .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
                parts[2]
                    .parse::<usize>()
                    .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
                saw_header = true;
                continue;
            }
            if !saw_header {
                return Err(DimacsError::MissingHeader);
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    if v.unsigned_abs() as usize > num_vars {
                        return Err(DimacsError::LiteralOutOfRange {
                            literal: v,
                            num_vars,
                        });
                    }
                    let var = Var((v.unsigned_abs() - 1) as u32);
                    current.push(Lit::new(var, v < 0));
                }
            }
        }
        if !saw_header {
            return Err(DimacsError::MissingHeader);
        }
        if !current.is_empty() {
            return Err(DimacsError::UnterminatedClause);
        }
        Ok(CnfFormula { num_vars, clauses })
    }

    /// Writes the formula as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let v = lit.var().index() as i64 + 1;
                out.push_str(&format!("{} ", if lit.is_neg() { -v } else { v }));
            }
            out.push_str("0\n");
        }
        out
    }

    /// Loads the formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut solver = Solver::new();
        self.load_into(&mut solver);
        solver
    }

    /// Loads the formula into a fresh reference (oracle) solver.
    pub fn to_reference_solver(&self) -> ReferenceSolver {
        let mut solver = ReferenceSolver::new();
        self.load_into(&mut solver);
        solver
    }

    /// Loads the formula into any [`ClauseSink`], allocating `num_vars`
    /// fresh variables first.
    pub fn load_into<S: ClauseSink>(&self, sink: &mut S) {
        for _ in 0..self.num_vars {
            sink.new_var();
        }
        for clause in &self.clauses {
            sink.add_clause(clause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    #[test]
    fn parse_and_solve() {
        let text = "c a comment\np cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = CnfFormula::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut solver = cnf.to_solver();
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_eq!(solver.value(Lit::pos(Var(1))), Some(true));
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-3 0\n";
        let cnf = CnfFormula::parse(text).unwrap();
        let cnf2 = CnfFormula::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf.clauses, cnf2.clauses);
        assert_eq!(cnf.num_vars, cnf2.num_vars);
    }

    #[test]
    fn typed_parse_errors() {
        assert_eq!(CnfFormula::parse("1 2 0"), Err(DimacsError::MissingHeader));
        assert_eq!(CnfFormula::parse(""), Err(DimacsError::MissingHeader));
        assert!(matches!(
            CnfFormula::parse("p cnf x y\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            CnfFormula::parse("p dnf 2 1\n1 2 0\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            CnfFormula::parse("p cnf 2 1\n1 z 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert_eq!(
            CnfFormula::parse("p cnf 2 1\np cnf 2 1\n1 0\n"),
            Err(DimacsError::DuplicateHeader)
        );
        assert_eq!(
            CnfFormula::parse("p cnf 2 1\n1 3 0\n"),
            Err(DimacsError::LiteralOutOfRange {
                literal: 3,
                num_vars: 2
            })
        );
        assert_eq!(
            CnfFormula::parse("p cnf 2 1\n1 -2\n"),
            Err(DimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn formula_as_clause_sink_roundtrips_through_solver() {
        let mut cnf = CnfFormula::default();
        let a = Lit::pos(ClauseSink::new_var(&mut cnf));
        let b = Lit::pos(ClauseSink::new_var(&mut cnf));
        ClauseSink::add_clause(&mut cnf, &[a, b]);
        ClauseSink::add_clause(&mut cnf, &[!a]);
        assert_eq!(cnf.to_solver().solve(), SatResult::Sat);
        assert_eq!(cnf.to_reference_solver().solve(), SatResult::Sat);
    }
}
