//! Minimal DIMACS CNF import/export, mainly for debugging and for dumping
//! the equivalence-checking instances produced by the `cec` crate.

use crate::{Lit, Solver, Var};

/// Errors produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError(pub String);

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dimacs error: {}", self.0)
    }
}

impl std::error::Error for DimacsError {}

/// A plain clause database that can be loaded into a [`Solver`] or written
/// out as DIMACS.
#[derive(Debug, Clone, Default)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    /// Returns a [`DimacsError`] on malformed headers or literals.
    pub fn parse(text: &str) -> Result<Self, DimacsError> {
        let mut num_vars = 0usize;
        let mut clauses = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        let mut saw_header = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(DimacsError(format!("bad problem line: {line}")));
                }
                num_vars = parts[1]
                    .parse()
                    .map_err(|_| DimacsError(format!("bad variable count: {}", parts[1])))?;
                saw_header = true;
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError(format!("bad literal: {tok}")))?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let var = Var((v.unsigned_abs() - 1) as u32);
                    num_vars = num_vars.max(var.index() + 1);
                    current.push(Lit::new(var, v < 0));
                }
            }
        }
        if !saw_header {
            return Err(DimacsError("missing 'p cnf' header".into()));
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        Ok(CnfFormula { num_vars, clauses })
    }

    /// Writes the formula as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let v = lit.var().index() as i64 + 1;
                out.push_str(&format!("{} ", if lit.is_neg() { -v } else { v }));
            }
            out.push_str("0\n");
        }
        out
    }

    /// Loads the formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    #[test]
    fn parse_and_solve() {
        let text = "c a comment\np cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = CnfFormula::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut solver = cnf.to_solver();
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_eq!(solver.value(Lit::pos(Var(1))), Some(true));
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-3 0\n";
        let cnf = CnfFormula::parse(text).unwrap();
        let cnf2 = CnfFormula::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf.clauses, cnf2.clauses);
        assert_eq!(cnf.num_vars, cnf2.num_vars);
    }

    #[test]
    fn parse_errors() {
        assert!(CnfFormula::parse("1 2 0").is_err());
        assert!(CnfFormula::parse("p cnf x y\n").is_err());
        assert!(CnfFormula::parse("p cnf 2 1\n1 z 0\n").is_err());
    }
}
