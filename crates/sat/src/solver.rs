//! The CDCL solver core: a MiniSat/Glucose-class engine.
//!
//! The hot loops follow the modern playbook:
//!
//! * **Watched literals with blockers.** Each watcher caches a "blocker"
//!   literal from the clause; if the blocker is already true the clause is
//!   skipped without touching clause memory. Binary clauses never enter the
//!   clause database at all — they live in dedicated watch lists that map a
//!   falsified literal directly to the implied one.
//! * **Learn-time LBD and periodic database reduction.** Every learnt clause
//!   records its literal-block distance (number of distinct decision levels);
//!   [`Solver::solve`] periodically deletes the worse half of the removable
//!   learnt clauses (high LBD first), always keeping binary clauses, glue
//!   clauses (LBD ≤ 2) and clauses that are the reason of a current
//!   assignment. `SolverStats::learnt_clauses` tracks the *live* count;
//!   deletions show up in `SolverStats::deleted_clauses`.
//! * **Conflict-clause minimization.** MiniSat-style self-subsumption drops
//!   learnt literals whose reason is fully covered by the rest of the clause
//!   (or by root-level assignments) before the clause is attached.
//! * **Indexed VSIDS heap.** The decision order is a mutable binary heap with
//!   a position index per variable, so activity bumps re-heapify in place and
//!   the heap never holds more than one entry per variable.
//! * **Assumption cores.** When [`Solver::solve_with_assumptions`] returns
//!   [`SatResult::Unsat`], [`Solver::failed_assumptions`] exposes a subset of
//!   the assumptions that is already unsatisfiable with the formula
//!   (final-conflict analysis), so incremental callers can learn *why* a
//!   query failed.
//!
//! The solver this module replaced is preserved unmodified as
//! [`crate::ReferenceSolver`] and serves as a differential testing oracle.

use crate::{Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (readable via [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

/// Aggregate statistics of a solver instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently live in the database (binary
    /// learnt clauses included). Decreases when `reduce_db` deletes clauses.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of learnt-database reduction rounds.
    pub reductions: u64,
    /// Literals removed from learnt clauses by self-subsumption minimization.
    pub minimized_lits: u64,
}

/// A long clause (three or more literals). Binary clauses are stored
/// implicitly in the binary watch lists and never allocate a `Clause`.
#[derive(Debug, Clone)]
struct Clause {
    /// The literals; `lits[0]` and `lits[1]` are the watched pair. An empty
    /// vector marks a deleted clause whose slot is on the free list.
    lits: Vec<Lit>,
    learnt: bool,
    /// Literal-block distance at learn time, refreshed (kept at the minimum)
    /// whenever the clause participates in conflict analysis.
    lbd: u32,
}

/// One entry of a long-clause watch list.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    /// Some other literal of the clause; if it is already true the clause is
    /// satisfied and the watcher can be skipped without a memory fetch.
    blocker: Lit,
}

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Decision or assumption.
    None,
    /// Propagated by the long clause with this index (`lits[0]` is the
    /// implied literal).
    Clause(u32),
    /// Propagated by a binary clause; the payload is the clause's *other*
    /// (false) literal.
    Binary(Lit),
}

/// The cause of a propagation conflict.
#[derive(Debug, Clone, Copy)]
enum ConflictCause {
    Clause(u32),
    /// A falsified binary clause, both literals false.
    Binary(Lit, Lit),
}

const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;
/// Conflicts before the first learnt-database reduction.
const REDUCE_BASE: u64 = 2_000;
/// Additional conflicts granted after each reduction round.
const REDUCE_INC: u64 = 300;
/// Learnt clauses with an LBD at or below this are never deleted.
const GLUE_LBD: u32 = 2;

/// A conflict-driven clause-learning SAT solver.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Slots of deleted clauses, reused by the next attach.
    free: Vec<u32>,
    /// Live learnt (long) clause indices, scanned by `reduce_db`.
    learnts: Vec<u32>,
    /// Long-clause watchers, indexed by `Lit::code()` of the watched literal.
    watches: Vec<Vec<Watcher>>,
    /// Binary-clause implication lists: `bin_watches[l.code()]` holds the
    /// other literal of every binary clause containing `l`.
    bin_watches: Vec<Vec<Lit>>,
    /// Number of live binary clauses.
    num_bin: usize,
    assigns: Vec<i8>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Indexed max-heap over variable activity.
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or -1 when absent.
    heap_pos: Vec<i32>,
    seen: Vec<bool>,
    /// Per-decision-level stamps used by the O(clause) LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// Failed-assumption core of the last Unsat-under-assumptions answer.
    conflict_core: Vec<Lit>,
    ok: bool,
    /// Maximum number of conflicts before giving up (`None` = unlimited).
    conflict_budget: Option<u64>,
    conflicts_since_reduce: u64,
    reduce_limit: u64,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            free: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            num_bin: 0,
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            conflict_core: Vec::new(),
            ok: true,
            conflict_budget: None,
            conflicts_since_reduce: 0,
            reduce_limit: REDUCE_BASE,
            stats: SolverStats::default(),
        }
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.assigns.len() as u32);
        self.assigns.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.heap_pos.push(-1);
        self.heap_insert(var);
        var
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (original plus learnt, binary included).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.free.len() + self.num_bin
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the number of conflicts spent in a single [`Solver::solve`] call;
    /// when exceeded the call returns [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// After [`Solver::solve_with_assumptions`] returned [`SatResult::Unsat`],
    /// returns a subset of the assumption literals that is already
    /// unsatisfiable together with the formula (a "failed core").
    ///
    /// The slice is empty when the formula is unsatisfiable regardless of the
    /// assumptions, or when the last query did not end in `Unsat`.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.assigns[lit.var().index()];
        if lit.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Returns the model value of a literal after a [`SatResult::Sat`] answer.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        match self.lit_value(lit) {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // ------------------------------------------------------------------
    // Clause database
    // ------------------------------------------------------------------

    /// Adds a clause. Returns `false` if the solver becomes trivially
    /// unsatisfiable (conflict at decision level zero).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Level-0 simplification below is only sound at level 0.
        self.cancel_until(0);
        // Simplify: drop duplicate/false literals; detect tautologies and
        // already-satisfied clauses.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal uses unknown variable"
            );
            match self.lit_value(lit) {
                1 => return true, // already satisfied at level 0
                -1 => continue,   // falsified literal drops out
                _ => {}
            }
            if clause.contains(&!lit) {
                return true; // tautology
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], Reason::None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            2 => {
                self.attach_binary(clause[0], clause[1], false);
                true
            }
            _ => {
                self.attach_clause(clause, false, 0);
                true
            }
        }
    }

    fn attach_binary(&mut self, a: Lit, b: Lit, learnt: bool) {
        self.bin_watches[a.code()].push(b);
        self.bin_watches[b.code()].push(a);
        self.num_bin += 1;
        if learnt {
            self.stats.learnt_clauses += 1;
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 3);
        let (w0, w1) = (lits[0], lits[1]);
        let cref = match self.free.pop() {
            Some(slot) => {
                self.clauses[slot as usize] = Clause { lits, learnt, lbd };
                slot
            }
            None => {
                self.clauses.push(Clause { lits, learnt, lbd });
                (self.clauses.len() - 1) as u32
            }
        };
        self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
        self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.learnts.push(cref);
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    /// Removes a learnt clause from the watch lists and frees its slot.
    fn detach_clause(&mut self, cref: u32) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            debug_assert!(c.learnt, "only learnt clauses are deleted");
            (c.lits[0], c.lits[1])
        };
        self.watches[w0.code()].retain(|w| w.cref != cref);
        self.watches[w1.code()].retain(|w| w.cref != cref);
        let c = &mut self.clauses[cref as usize];
        c.lits = Vec::new();
        self.free.push(cref);
        self.stats.learnt_clauses -= 1;
        self.stats.deleted_clauses += 1;
    }

    /// Is this clause the reason of a current assignment? Locked clauses must
    /// survive `reduce_db` because conflict analysis may walk them.
    fn locked(&self, cref: u32) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.lit_value(first) == 1 && self.reason[first.var().index()] == Reason::Clause(cref)
    }

    /// Deletes the worse half of the removable learnt clauses: highest LBD
    /// first, ties broken towards longer clauses. Binary clauses never enter
    /// the database, glue clauses (LBD ≤ 2) and locked clauses are kept.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut removable: Vec<u32> = Vec::with_capacity(self.learnts.len());
        for &cref in &self.learnts {
            let c = &self.clauses[cref as usize];
            if c.lits.is_empty() || c.lbd <= GLUE_LBD || self.locked(cref) {
                continue;
            }
            removable.push(cref);
        }
        removable.sort_by_key(|&cref| {
            let c = &self.clauses[cref as usize];
            // Sorted ascending; the back half (worst) is deleted.
            (c.lbd, c.lits.len(), cref)
        });
        let keep = removable.len() - removable.len() / 2;
        for &cref in &removable[keep..] {
            self.detach_clause(cref);
        }
        self.learnts
            .retain(|&cref| !self.clauses[cref as usize].lits.is_empty());
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(lit), 0);
        let var = lit.var().index();
        self.assigns[var] = if lit.is_neg() { -1 } else { 1 };
        self.phase[var] = !lit.is_neg();
        self.level[var] = self.decision_level();
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ConflictCause> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;

            // Binary clauses first: implication without touching the clause
            // database.
            for i in 0..self.bin_watches[false_lit.code()].len() {
                let other = self.bin_watches[false_lit.code()][i];
                match self.lit_value(other) {
                    1 => {}
                    -1 => {
                        self.qhead = self.trail.len();
                        return Some(ConflictCause::Binary(false_lit, other));
                    }
                    _ => self.enqueue(other, Reason::Binary(false_lit)),
                }
            }

            // Long clauses, with the blocker fast path.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                let old_blocker = w.blocker;
                let w = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != old_blocker && self.lit_value(first) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let candidate = self.clauses[cref].lits[k];
                    if self.lit_value(candidate) != -1 {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[candidate.code()].push(w);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[j] = w;
                j += 1;
                if self.lit_value(first) == -1 {
                    // Conflict: keep the unvisited watchers and report.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ConflictCause::Clause(w.cref));
                }
                self.enqueue(first, Reason::Clause(w.cref));
            }
            ws.truncate(j);
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    // ------------------------------------------------------------------
    // VSIDS order heap
    // ------------------------------------------------------------------

    /// Does `a` outrank `b` in the decision order? Ties break towards the
    /// smaller variable index for determinism.
    #[inline]
    fn heap_better(&self, a: Var, b: Var) -> bool {
        let (aa, ba) = (self.activity[a.index()], self.activity[b.index()]);
        aa > ba || (aa == ba && a.0 < b.0)
    }

    fn heap_insert(&mut self, var: Var) {
        if self.heap_pos[var.index()] >= 0 {
            return;
        }
        self.heap.push(var);
        let i = self.heap.len() - 1;
        self.heap_pos[var.index()] = i as i32;
        self.heap_sift_up(i);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.heap_better(self.heap[i], self.heap[parent]) {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len() && self.heap_better(self.heap[right], self.heap[left]) {
                best = right;
            }
            if !self.heap_better(self.heap[best], self.heap[i]) {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    #[inline]
    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = i as i32;
        self.heap_pos[self.heap[j].index()] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self
            .heap
            .pop()
            .unwrap_or_else(|| unreachable!("heap non-empty"));
        self.heap_pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > RESCALE_LIMIT {
            // Uniform scaling preserves the heap order, so no re-heapify.
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[var.index()];
        if pos >= 0 {
            self.heap_sift_up(pos as usize);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Assigned variables stay in the heap lazily and are skipped here;
        // every unassigned variable is in the heap (re-inserted on
        // backtracking), so an empty heap means a full assignment.
        while let Some(var) = self.heap_pop() {
            if self.assigns[var.index()] == 0 {
                return Some(var);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// Number of distinct decision levels among `lits`.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0u32;
        for &lit in lits {
            let lev = self.level[lit.var().index()] as usize;
            if lev >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lev + 1, 0);
            }
            if self.lbd_stamp[lev] != stamp {
                self.lbd_stamp[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis with self-subsumption minimization.
    /// Returns the learnt clause (asserting literal first), the backtrack
    /// level and the clause's LBD.
    fn analyze(&mut self, cause: ConflictCause) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut to_clear: Vec<Var> = Vec::new();
        let mut reason_lits: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            reason_lits.clear();
            match p {
                None => match cause {
                    ConflictCause::Clause(cref) => {
                        self.refresh_lbd(cref);
                        reason_lits.extend_from_slice(&self.clauses[cref as usize].lits);
                    }
                    ConflictCause::Binary(a, b) => {
                        reason_lits.push(a);
                        reason_lits.push(b);
                    }
                },
                Some(p_lit) => match self.reason[p_lit.var().index()] {
                    Reason::Clause(cref) => {
                        self.refresh_lbd(cref);
                        debug_assert_eq!(self.clauses[cref as usize].lits[0], p_lit);
                        reason_lits.extend_from_slice(&self.clauses[cref as usize].lits[1..]);
                    }
                    Reason::Binary(other) => reason_lits.push(other),
                    Reason::None => unreachable!("non-decision literal has a reason"),
                },
            }
            for &q in &reason_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p_lit = self.trail[index];
            self.seen[p_lit.var().index()] = false;
            p = Some(p_lit);
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p_lit;
                break;
            }
        }

        // Recursive self-subsumption: drop literals whose reason chain is
        // covered by the remaining clause (or level 0). `seen` is still set
        // for exactly the kept literals, which is what `lit_redundant` tests
        // against; the level abstraction cuts off chains that reach a
        // decision level absent from the clause.
        let abstract_levels = learnt[1..].iter().fold(0u64, |acc, l| {
            acc | Self::abstract_level(self.level[l.var().index()])
        });
        let mut write = 1;
        for read in 1..learnt.len() {
            let q = learnt[read];
            if self.lit_redundant(q, abstract_levels, &mut to_clear) {
                self.stats.minimized_lits += 1;
            } else {
                learnt[write] = q;
                write += 1;
            }
        }
        learnt.truncate(write);

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backtrack level: the highest level among the non-asserting literals.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        let lbd = self.compute_lbd(&learnt);
        (learnt, backtrack, lbd)
    }

    /// Glucose-style LBD refresh: a learnt clause that keeps showing up in
    /// conflicts gets its LBD re-evaluated (kept at the minimum), promoting
    /// it towards the never-deleted glue tier.
    fn refresh_lbd(&mut self, cref: u32) {
        if !self.clauses[cref as usize].learnt || self.clauses[cref as usize].lbd <= GLUE_LBD {
            return;
        }
        let lits = std::mem::take(&mut self.clauses[cref as usize].lits);
        let lbd = self.compute_lbd(&lits);
        let c = &mut self.clauses[cref as usize];
        c.lits = lits;
        c.lbd = c.lbd.min(lbd);
    }

    /// One bit per decision level (mod 64): a cheap over-approximation used
    /// to cut off redundancy DFS chains that reach a level with no literal in
    /// the learnt clause (such chains can never terminate in covered lits).
    fn abstract_level(level: u32) -> u64 {
        1u64 << (level & 63)
    }

    /// Is the learnt literal `q` redundant? True when its (propagation)
    /// reason chain bottoms out entirely in literals already in the learnt
    /// clause or assigned at level 0 — resolving the chain away
    /// self-subsumes. This is MiniSat's full recursive minimization
    /// (`ccmin-mode=2`), run as an explicit-stack DFS.
    ///
    /// Literals proved redundant along the way keep their `seen` mark as a
    /// memo for later calls; on failure only this call's marks (tracked via
    /// `to_clear`) are rolled back.
    fn lit_redundant(&mut self, q: Lit, abstract_levels: u64, to_clear: &mut Vec<Var>) -> bool {
        if matches!(self.reason[q.var().index()], Reason::None) {
            return false;
        }
        let mut stack: Vec<Lit> = vec![q];
        let top = to_clear.len();
        while let Some(p) = stack.pop() {
            let ok = match self.reason[p.var().index()] {
                Reason::None => false,
                Reason::Binary(other) => {
                    self.redundancy_step(other, abstract_levels, &mut stack, to_clear)
                }
                Reason::Clause(cref) => {
                    let lits = std::mem::take(&mut self.clauses[cref as usize].lits);
                    let r = lits[1..]
                        .iter()
                        .all(|&l| self.redundancy_step(l, abstract_levels, &mut stack, to_clear));
                    self.clauses[cref as usize].lits = lits;
                    r
                }
            };
            if !ok {
                for &v in &to_clear[top..] {
                    self.seen[v.index()] = false;
                }
                to_clear.truncate(top);
                return false;
            }
        }
        true
    }

    /// One antecedent literal inside the redundancy DFS: covered literals
    /// pass outright, decisions and out-of-abstraction levels fail, the rest
    /// are marked and scheduled for their own reason expansion.
    fn redundancy_step(
        &mut self,
        l: Lit,
        abstract_levels: u64,
        stack: &mut Vec<Lit>,
        to_clear: &mut Vec<Var>,
    ) -> bool {
        let v = l.var();
        if self.seen[v.index()] || self.level[v.index()] == 0 {
            return true;
        }
        if matches!(self.reason[v.index()], Reason::None)
            || Self::abstract_level(self.level[v.index()]) & abstract_levels == 0
        {
            return false;
        }
        self.seen[v.index()] = true;
        to_clear.push(v);
        stack.push(l);
        true
    }

    /// Final-conflict analysis: the assumption `p` is false under the current
    /// (assumption-only) trail. Returns the subset of assumption literals
    /// (including `p`) whose conjunction is already unsatisfiable.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let x = lit.var().index();
            if !self.seen[x] {
                continue;
            }
            match self.reason[x] {
                Reason::None => {
                    // Below the first real decision every reason-free trail
                    // literal is an assumption.
                    debug_assert!(self.level[x] > 0);
                    core.push(lit);
                }
                Reason::Clause(cref) => {
                    for &q in &self.clauses[cref as usize].lits[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
                Reason::Binary(other) => {
                    if self.level[other.var().index()] > 0 {
                        self.seen[other.var().index()] = true;
                    }
                }
            }
            self.seen[x] = false;
        }
        self.seen[p.var().index()] = false;
        core
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        while self.trail.len() > bound {
            let lit = self
                .trail
                .pop()
                .unwrap_or_else(|| unreachable!("trail non-empty"));
            let var = lit.var();
            self.assigns[var.index()] = 0;
            self.reason[var.index()] = Reason::None;
            self.heap_insert(var);
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    /// The 1-indexed Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
    fn luby(mut i: u64) -> u64 {
        debug_assert!(i >= 1);
        loop {
            let next_pow = (i + 1).next_power_of_two();
            if i + 1 == next_pow {
                return next_pow / 2;
            }
            i -= next_pow / 2 - 1;
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals. On
    /// [`SatResult::Unsat`], [`Solver::failed_assumptions`] holds an
    /// unsatisfiable subset of `assumptions`.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.conflict_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        let budget_start = self.stats.conflicts;
        let mut restart_idx = 1u64;
        let mut conflicts_until_restart = 100 * Self::luby(restart_idx);

        loop {
            match self.propagate() {
                Some(cause) => {
                    self.stats.conflicts += 1;
                    self.conflicts_since_reduce += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    let (learnt, backtrack, lbd) = self.analyze(cause);
                    self.decay_activities();
                    self.learn(learnt, backtrack, lbd);

                    if let Some(budget) = self.conflict_budget {
                        if self.stats.conflicts - budget_start > budget {
                            self.cancel_until(0);
                            return SatResult::Unknown;
                        }
                    }
                    if self.conflicts_since_reduce >= self.reduce_limit {
                        self.conflicts_since_reduce = 0;
                        self.reduce_limit += REDUCE_INC;
                        self.reduce_db();
                    }
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 {
                        self.stats.restarts += 1;
                        restart_idx += 1;
                        conflicts_until_restart = 100 * Self::luby(restart_idx);
                        self.cancel_until(0);
                        continue;
                    }
                    // Enqueue pending assumptions as pseudo-decisions.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let p = assumptions[self.decision_level() as usize];
                        match self.lit_value(p) {
                            1 => {
                                // Already satisfied: open a dummy level.
                                self.trail_lim.push(self.trail.len());
                            }
                            -1 => {
                                self.conflict_core = self.analyze_final(p);
                                self.cancel_until(0);
                                return SatResult::Unsat;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(p, Reason::None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => return SatResult::Sat,
                        Some(var) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::new(var, !self.phase[var.index()]);
                            self.enqueue(lit, Reason::None);
                        }
                    }
                }
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>, backtrack: u32, lbd: u32) {
        self.cancel_until(backtrack);
        match learnt.len() {
            1 => self.enqueue(learnt[0], Reason::None),
            2 => {
                // Binary learnt clauses are permanent: they cost no clause
                // memory and reduce_db never sees them.
                self.attach_binary(learnt[0], learnt[1], true);
                self.enqueue(learnt[0], Reason::Binary(learnt[1]));
            }
            _ => {
                let asserting = learnt[0];
                let cref = self.attach_clause(learnt, true, lbd);
                self.enqueue(asserting, Reason::Clause(cref));
            }
        }
    }

    // ------------------------------------------------------------------
    // Audit surface
    // ------------------------------------------------------------------

    /// Returns a read-only view of the solver's internal state for the
    /// `audit` crate's invariant checkers (watch lists, trail, activity
    /// heap, learnt metadata). The view borrows the solver; it cannot
    /// mutate anything.
    pub fn audit(&self) -> SolverAudit<'_> {
        SolverAudit { solver: self }
    }

    /// Corruption hook for the `audit` crate's mutation tests: removes the
    /// first watcher of `lit`'s long-clause watch list, leaving the clause
    /// watched only once. Never call from production code.
    #[doc(hidden)]
    pub fn tamper_drop_first_watcher(&mut self, lit: Lit) {
        if !self.watches[lit.code()].is_empty() {
            self.watches[lit.code()].remove(0);
        }
    }

    /// Corruption hook for the `audit` crate's mutation tests: overwrites
    /// the stored decision level of `var`. Never call from production code.
    #[doc(hidden)]
    pub fn tamper_set_level(&mut self, var: Var, level: u32) {
        self.level[var.index()] = level;
    }

    /// Corruption hook for the `audit` crate's mutation tests: swaps the
    /// first two heap entries *without* updating `heap_pos`, desynchronizing
    /// the index. Never call from production code.
    #[doc(hidden)]
    pub fn tamper_heap_swap_raw(&mut self) {
        if self.heap.len() >= 2 {
            self.heap.swap(0, 1);
        }
    }

    /// Corruption hook for the `audit` crate's mutation tests: attaches a
    /// long clause marked learnt with an arbitrary stored LBD, bypassing
    /// `compute_lbd`. Returns the clause index. Never call from production
    /// code.
    #[doc(hidden)]
    pub fn tamper_attach_learnt(&mut self, lits: &[Lit], lbd: u32) -> u32 {
        let cref = self.attach_clause(lits.to_vec(), true, lbd);
        self.learnts.push(cref);
        cref
    }
}

/// Read-only view of a [`Solver`]'s internals, produced by
/// [`Solver::audit`] and consumed by the `audit` crate's SAT checkers.
#[derive(Debug, Clone, Copy)]
pub struct SolverAudit<'a> {
    solver: &'a Solver,
}

impl<'a> SolverAudit<'a> {
    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// `false` once the formula is known unsatisfiable at level 0; most
    /// structural invariants are only meaningful while the solver is `ok`.
    pub fn is_ok(&self) -> bool {
        self.solver.ok
    }

    /// Live long clauses as `(cref, literals, learnt, lbd)`. Deleted slots
    /// (empty literal vectors on the free list) are skipped.
    pub fn live_clauses(&self) -> impl Iterator<Item = (u32, &'a [Lit], bool, u32)> + 'a {
        self.solver
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.lits.is_empty())
            .map(|(i, c)| (i as u32, c.lits.as_slice(), c.learnt, c.lbd))
    }

    /// The literal slice of one clause slot (empty when deleted), or `None`
    /// when the index is out of range.
    pub fn clause_lits(&self, cref: u32) -> Option<&'a [Lit]> {
        self.solver
            .clauses
            .get(cref as usize)
            .map(|c| c.lits.as_slice())
    }

    /// Long-clause watchers of `lit` as `(cref, blocker)` pairs.
    pub fn watchers(&self, lit: Lit) -> impl Iterator<Item = (u32, Lit)> + 'a {
        self.solver.watches[lit.code()]
            .iter()
            .map(|w| (w.cref, w.blocker))
    }

    /// Binary-clause partners of `lit`.
    pub fn bin_watchers(&self, lit: Lit) -> &'a [Lit] {
        &self.solver.bin_watches[lit.code()]
    }

    /// Number of live binary clauses.
    pub fn num_binary(&self) -> usize {
        self.solver.num_bin
    }

    /// The assignment trail in propagation order.
    pub fn trail(&self) -> &'a [Lit] {
        &self.solver.trail
    }

    /// Trail indices where each decision level starts.
    pub fn trail_lim(&self) -> &'a [usize] {
        &self.solver.trail_lim
    }

    /// Propagation-queue head (index into the trail).
    pub fn qhead(&self) -> usize {
        self.solver.qhead
    }

    /// Current assignment of a variable, `None` when unassigned.
    pub fn assign(&self, var: Var) -> Option<bool> {
        match self.solver.assigns[var.index()] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    /// Stored decision level of a variable (meaningful while assigned).
    pub fn level(&self, var: Var) -> u32 {
        self.solver.level[var.index()]
    }

    /// The activity max-heap's backing array.
    pub fn heap(&self) -> &'a [Var] {
        &self.solver.heap
    }

    /// Position of `var` in the heap array, or -1 when absent.
    pub fn heap_pos(&self, var: Var) -> i32 {
        self.solver.heap_pos[var.index()]
    }

    /// VSIDS activity score of a variable.
    pub fn activity(&self, var: Var) -> f64 {
        self.solver.activity[var.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0]]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a -> b), (b -> c), a  =>  c must be true.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1h1, p2h1, at most one pigeon per hole -> UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0]]);
        s.add_clause(&[v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Classic PHP(3,2): each pigeon in some hole, no two pigeons share.
        let mut s = Solver::new();
        let mut var = |_p: usize, _h: usize| Lit::pos(s.new_var());
        let x: Vec<Vec<Lit>> = (0..3)
            .map(|p| (0..2).map(|h| var(p, h)).collect())
            .collect();
        for pigeon in &x {
            s.add_clause(pigeon);
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[(p1 + 1)..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_is_satisfiable_with_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x1 = 0 -> satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        // x1 ^ x2 = 1
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        // x2 ^ x3 = 1
        s.add_clause(&[v[1], v[2]]);
        s.add_clause(&[!v[1], !v[2]]);
        // x3 ^ x1 = 0 (equal)
        s.add_clause(&[!v[2], v[0]]);
        s.add_clause(&[v[2], !v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        let m: Vec<bool> = v.iter().map(|&l| s.value(l).unwrap()).collect();
        assert!(m[0] ^ m[1]);
        assert!(m[1] ^ m[2]);
        assert!(!(m[2] ^ m[0]));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0], !v[1]]), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // The solver is reusable after assumption-based UNSAT.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn assumptions_conflicting_with_units() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Unsat);
        // The assumption alone is the core: the formula forces v[0].
        assert_eq!(s.failed_assumptions(), &[!v[0]]);
        assert_eq!(s.solve_with_assumptions(&[v[0]]), SatResult::Sat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_form_an_unsat_core() {
        // a -> b, b -> c; assuming a and !c is contradictory, x is a red
        // herring that must not appear in the core.
        let mut s = Solver::new();
        let v = lits(&mut s, 4); // a, b, c, x
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        let assumptions = [v[3], v[0], !v[2]];
        assert_eq!(s.solve_with_assumptions(&assumptions), SatResult::Unsat);
        let core: Vec<Lit> = s.failed_assumptions().to_vec();
        assert!(!core.is_empty());
        for lit in &core {
            assert!(assumptions.contains(lit), "core lit {lit} not assumed");
        }
        assert!(!core.contains(&v[3]), "red herring ended up in the core");
        // The core alone must still be UNSAT.
        assert_eq!(s.solve_with_assumptions(&core), SatResult::Unsat);
        // Dropping the core's constraint makes it satisfiable again.
        assert_eq!(s.solve_with_assumptions(&[v[3]]), SatResult::Sat);
    }

    #[test]
    fn contradictory_assumption_pair_is_its_own_core() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[v[0], !v[0]]), SatResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&v[0]) && core.contains(&!v[0]), "{core:?}");
    }

    #[test]
    fn unsat_formula_has_empty_core() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve_with_assumptions(&[v[0]]), SatResult::Unsat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn random_3sat_small_instances_agree_with_brute_force() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..30 {
            let n_vars = 6;
            let n_clauses = 18 + (round % 5);
            let mut clause_set = Vec::new();
            for _ in 0..n_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = next() % n_vars;
                    let neg = next() % 2 == 1;
                    clause.push((v, neg));
                }
                clause_set.push(clause);
            }
            // Brute force.
            let mut brute_sat = false;
            for assign in 0u32..(1 << n_vars) {
                let ok = clause_set
                    .iter()
                    .all(|cl| cl.iter().any(|&(v, neg)| ((assign >> v) & 1 == 1) != neg));
                if ok {
                    brute_sat = true;
                    break;
                }
            }
            // CDCL.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            for cl in &clause_set {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, neg)| Lit::new(vars[v as usize], neg))
                    .collect();
                s.add_clause(&lits);
            }
            let res = s.solve();
            assert_eq!(
                res,
                if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "round {round} mismatch"
            );
            if res == SatResult::Sat {
                // The reported model must satisfy every clause.
                for cl in &clause_set {
                    assert!(cl
                        .iter()
                        .any(|&(v, neg)| { s.value(Lit::new(vars[v as usize], neg)).unwrap() }));
                }
            }
        }
    }

    fn pigeonhole_solver(holes: usize) -> Solver {
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..=holes)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for pigeon in &x {
            s.add_clause(pigeon);
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[(p1 + 1)..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard pigeonhole instance with a tiny budget should give Unknown.
        let mut s = pigeonhole_solver(9);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SatResult::Unknown);
    }

    #[test]
    fn pigeonhole_moderate_is_unsat_with_unlimited_budget() {
        // PHP(6, 5) is still exponential for resolution but small enough to
        // finish quickly even in debug builds.
        let mut s = pigeonhole_solver(5);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn stats_are_collected() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.stats().propagations > 0);
        assert_eq!(s.num_vars(), 4);
        assert!(s.num_clauses() >= 3);
    }

    /// Regression for the unbounded lazy `BinaryHeap`: the indexed order
    /// heap must never hold more than one entry per variable, no matter how
    /// many bumps and backtracks a solve performs.
    #[test]
    fn order_heap_stays_bounded_by_num_vars() {
        let mut s = pigeonhole_solver(6);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 100, "wanted a non-trivial search");
        assert!(
            s.heap.len() <= s.num_vars(),
            "heap grew to {} entries for {} vars",
            s.heap.len(),
            s.num_vars()
        );
        // Position index and heap must agree exactly (no duplicates).
        let mut present = 0;
        for (i, &var) in s.heap.iter().enumerate() {
            assert_eq!(s.heap_pos[var.index()], i as i32);
            present += 1;
        }
        assert_eq!(present, s.heap.len());
    }

    /// `learnt_clauses` tracks the live database through reductions and
    /// `deleted_clauses` records the churn.
    #[test]
    fn learnt_clause_stats_track_reductions() {
        let mut s = pigeonhole_solver(8);
        s.set_conflict_budget(Some(6_000));
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.reductions > 0, "expected at least one reduce_db");
        assert!(stats.deleted_clauses > 0);
        // Live count matches the database exactly: long learnts on the
        // learnts list plus binary learnt clauses.
        let live_long = s
            .learnts
            .iter()
            .filter(|&&c| !s.clauses[c as usize].lits.is_empty())
            .count() as u64;
        assert!(stats.learnt_clauses >= live_long);
        let live_bin = stats.learnt_clauses - live_long;
        assert!(live_bin <= s.num_bin as u64);
        // The monotone-counter bug would make this fail: live learnt clauses
        // must be fewer than all clauses ever learnt.
        assert!(stats.learnt_clauses < stats.conflicts);
    }

    /// After reduce_db deletes clauses the solver must still answer
    /// correctly (watch lists and reasons stay consistent).
    #[test]
    fn solving_remains_sound_across_reductions() {
        let mut s = pigeonhole_solver(7);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().deleted_clauses > 0 || s.stats().reductions == 0);
    }

    #[test]
    fn incremental_reuse_after_sat_and_unsat_answers() {
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.add_clause(&[!v[0], v[3]]);
        s.add_clause(&[!v[3], !v[1], v[4]]);
        for _ in 0..3 {
            assert_eq!(s.solve_with_assumptions(&[v[0], v[1]]), SatResult::Sat);
            assert_eq!(s.value(v[3]), Some(true));
            assert_eq!(s.value(v[4]), Some(true));
            assert_eq!(s.solve_with_assumptions(&[v[0], !v[3]]), SatResult::Unsat);
            assert!(!s.failed_assumptions().is_empty());
        }
        // Adding a clause mid-session keeps working.
        s.add_clause(&[!v[4], v[5]]);
        assert_eq!(s.solve_with_assumptions(&[v[0], v[1]]), SatResult::Sat);
        assert_eq!(s.value(v[5]), Some(true));
    }
}
