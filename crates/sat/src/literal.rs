//! Variables and literals for the SAT solver.

/// A Boolean variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Returns the raw index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a polarity. Encoded as `2 * var + negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Creates a positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit(var.0 * 2)
    }

    /// Creates a negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit(var.0 * 2 + 1)
    }

    /// Creates a literal with explicit polarity (`true` = negated).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 * 2 + u32::from(negated))
    }

    /// The variable of this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the literal's index usable for watch lists (`2v` or `2v+1`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::new(v, true), Lit::neg(v));
    }

    #[test]
    fn display_uses_dimacs_convention() {
        assert_eq!(Lit::pos(Var(0)).to_string(), "1");
        assert_eq!(Lit::neg(Var(0)).to_string(), "-1");
        assert_eq!(Lit::neg(Var(9)).to_string(), "-10");
    }
}
