//! Stitch per-window choice spaces into one global choice network.
//!
//! The stitcher rebuilds the host AIG node by node. When the walk reaches a
//! window root, the window's exported choice network is replayed into the
//! host-under-construction first — its inputs translated through the
//! boundary table to the literals the window leaves rebuilt to — and then
//! the root itself is built, so the host node (the only literal the rest of
//! the network references) gets the largest id and can serve as the choice
//! class representative under the ordering invariant. The window's root
//! class is folded into that *link class* rather than registered separately,
//! so no node is a member of two classes; interior window classes are
//! registered as-is and cleaned by [`choices::filter_ordering`] where
//! structural hashing collapsed their representative onto older host logic.

use crate::{Partition, WindowError};
use aig::{Aig, Lit, NodeId};
use choices::{filter_ordering, ChoiceAig, ChoiceClass};
use fxhash::{FxHashMap, FxHashSet};

/// One window's exported choice space, ready to stitch.
#[derive(Debug, Clone)]
pub struct WindowChoiceSpace {
    /// Index into [`Partition::windows`].
    pub window: usize,
    /// The window cone's choice network: inputs correspond positionally to
    /// the window's `cone.leaf_map`, single output is the root function.
    pub choices: ChoiceAig,
}

/// Summary statistics of a stitch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Boundary literals translated through the table (window leaves plus
    /// window roots).
    pub boundary_literals: usize,
    /// Choice classes in the stitched network.
    pub classes: usize,
    /// Non-representative members in the stitched network.
    pub alternatives: usize,
    /// Nodes replayed from window choice spaces into the host.
    pub replayed_nodes: usize,
    /// Members dropped because structural hashing broke the ordering
    /// invariant (representative collapsed onto older logic).
    pub dropped_ordering: usize,
    /// Members dropped because their node already belongs to another class
    /// (overlapping windows exploring the same structure).
    pub dropped_duplicate: usize,
}

/// The product of [`stitch`]: a global choice network plus the boundary
/// translation table that produced it.
#[derive(Debug, Clone)]
pub struct Stitched {
    /// The global choice network; its representative network is the rebuilt
    /// host.
    pub network: ChoiceAig,
    /// For every host node id, the literal it rebuilt to (all host nodes are
    /// mapped after a successful stitch).
    pub table: Vec<Option<Lit>>,
    /// Summary statistics.
    pub stats: StitchStats,
}

impl Stitched {
    /// Mutable access to the translation table, for audit mutation tests.
    #[doc(hidden)]
    pub fn tamper_table_mut(&mut self) -> &mut Vec<Option<Lit>> {
        &mut self.table
    }
}

/// Rebuilds `host` with every window's choice space linked in at its root.
///
/// `spaces` may cover any subset of the partition's windows (windows whose
/// saturation failed or exported nothing are simply skipped); at most one
/// space per window is honored.
///
/// # Errors
/// * [`WindowError::Translation`] — a space references a window index outside
///   the partition, or a boundary literal misses the table (internal
///   inconsistency, surfaced typed).
/// * [`WindowError::Stitch`] — the assembled class list failed
///   [`ChoiceAig::new`] validation.
pub fn stitch(
    host: &Aig,
    partition: &Partition,
    spaces: &[WindowChoiceSpace],
) -> Result<Stitched, WindowError> {
    let mut root_space: FxHashMap<NodeId, &WindowChoiceSpace> = FxHashMap::default();
    for space in spaces {
        let window = partition.windows.get(space.window).ok_or_else(|| {
            WindowError::Translation(format!(
                "choice space references window {} but the partition has {}",
                space.window,
                partition.windows.len()
            ))
        })?;
        root_space.entry(window.root).or_insert(space);
    }

    let mut g = Aig::new(format!("{}_stitched", host.name()));
    let mut table: Vec<Option<Lit>> = vec![None; host.num_nodes()];
    table[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (i, &input) in host.inputs().iter().enumerate() {
        table[input.index()] = Some(g.add_input(host.input_name(i)));
    }

    let mut stats = StitchStats::default();
    let mut classes: Vec<ChoiceClass> = Vec::new();
    let mut used_nodes: FxHashSet<NodeId> = FxHashSet::default();

    let translate = |lit: Lit, table: &[Option<Lit>]| -> Result<Lit, WindowError> {
        table[lit.node().index()]
            .map(|l| l.xor(lit.is_complemented()))
            .ok_or_else(|| {
                WindowError::Translation(format!(
                    "host node {} has no stitched literal yet",
                    lit.node()
                ))
            })
    };

    for id in host.and_ids() {
        let space = root_space.get(&id).copied();
        let mut root_members: Vec<Lit> = Vec::new();
        if let Some(space) = space {
            let window = &partition.windows[space.window];
            root_members = replay_space(
                &mut g,
                &table,
                window,
                space,
                &mut classes,
                &mut used_nodes,
                &mut stats,
            )?;
        }
        let (f0, f1) = host.fanins(id);
        let a = translate(f0, &table)?;
        let b = translate(f1, &table)?;
        let here = g.and(a, b);
        table[id.index()] = Some(here);
        if !root_members.is_empty() {
            stats.boundary_literals += 1; // the root crossing
            link_class(
                &g,
                here,
                root_members,
                &mut classes,
                &mut used_nodes,
                &mut stats,
            );
        }
    }

    for (i, out) in host.outputs().iter().enumerate() {
        let lit = translate(*out, &table)?;
        g.add_output(lit, host.output_name(i));
    }

    let (kept, dropped) = filter_ordering(classes);
    stats.dropped_ordering += dropped;
    stats.classes = kept.len();
    stats.alternatives = kept.iter().map(|c| c.alternatives().len()).sum();
    let network = ChoiceAig::new(g, kept)?;
    Ok(Stitched {
        network,
        table,
        stats,
    })
}

/// Replays one window's choice network into `g`, registering its interior
/// classes and returning the translated members of its root class (with the
/// output phase applied), which the caller folds into the link class.
fn replay_space(
    g: &mut Aig,
    table: &[Option<Lit>],
    window: &crate::Window,
    space: &WindowChoiceSpace,
    classes: &mut Vec<ChoiceClass>,
    used_nodes: &mut FxHashSet<NodeId>,
    stats: &mut StitchStats,
) -> Result<Vec<Lit>, WindowError> {
    let waig = space.choices.aig();
    let mut local: Vec<Option<Lit>> = vec![None; waig.num_nodes()];
    local[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (pos, &win) in waig.inputs().iter().enumerate() {
        let host_leaf = window.cone.leaf_map.get(pos).ok_or_else(|| {
            WindowError::Translation(format!(
                "window {} choice network has {} inputs but the cone has {} leaves",
                window.id,
                waig.num_inputs(),
                window.cone.leaf_map.len()
            ))
        })?;
        let lit = table[host_leaf.index()].ok_or_else(|| {
            WindowError::Translation(format!(
                "window {} leaf {host_leaf} has no stitched literal",
                window.id
            ))
        })?;
        local[win.index()] = Some(lit);
        stats.boundary_literals += 1;
    }
    for wid in waig.and_ids() {
        let (f0, f1) = waig.fanins(wid);
        let fetch = |f: Lit, local: &[Option<Lit>]| -> Result<Lit, WindowError> {
            local[f.node().index()]
                .map(|l| l.xor(f.is_complemented()))
                .ok_or_else(|| {
                    WindowError::Translation(format!(
                        "window {} node {} reads unreplayed fanin {}",
                        window.id,
                        wid,
                        f.node()
                    ))
                })
        };
        let a = fetch(f0, &local)?;
        let b = fetch(f1, &local)?;
        local[wid.index()] = Some(g.and(a, b));
        stats.replayed_nodes += 1;
    }

    let out = waig.outputs().first().copied().ok_or_else(|| {
        WindowError::Translation(format!("window {} choice network has no output", window.id))
    })?;
    let root_class = space.choices.class_of(out.node());
    // Every translated root-class member evaluates to the class function F =
    // value(out.node()) ^ member_phase, where member_phase is the phase the
    // class stores the output node under; the host references the root
    // function value(out.node()) ^ out_phase. Folding therefore corrects by
    // both phases, not just the output literal's.
    let member_phase = root_class
        .and_then(|rc| rc.members.iter().find(|m| m.node() == out.node()))
        .map(|m| m.is_complemented())
        .unwrap_or(false);
    let fold_phase = member_phase ^ out.is_complemented();

    let mut root_members = Vec::new();
    for class in space.choices.classes() {
        let mut translated: Vec<Lit> = Vec::new();
        for member in &class.members {
            let Some(lit) = local[member.node().index()] else {
                continue; // member outside the replayed region (cyclic drop)
            };
            translated.push(lit.xor(member.is_complemented()));
        }
        if root_class.is_some_and(|rc| std::ptr::eq(rc, class)) {
            // The root class is folded into the caller's link class; the
            // phase correction makes every member evaluate to the root
            // function the host references.
            root_members = translated.into_iter().map(|l| l.xor(fold_phase)).collect();
            continue;
        }
        register_class(g, translated, classes, used_nodes, stats);
    }
    Ok(root_members)
}

/// Registers an interior window class, dropping members that are not fresh
/// AND nodes or already belong to another class.
fn register_class(
    g: &Aig,
    translated: Vec<Lit>,
    classes: &mut Vec<ChoiceClass>,
    used_nodes: &mut FxHashSet<NodeId>,
    stats: &mut StitchStats,
) {
    let mut members: Vec<Lit> = Vec::new();
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    // The exporter orders class members representative-first; preserve that.
    for lit in translated {
        let node = lit.node();
        if !g.node(node).is_and() {
            continue;
        }
        if used_nodes.contains(&node) || !seen.insert(node) {
            stats.dropped_duplicate += 1;
            continue;
        }
        members.push(lit);
    }
    if members.len() < 2 {
        return;
    }
    for m in &members {
        used_nodes.insert(m.node());
    }
    classes.push(ChoiceClass { members });
}

/// Builds the link class tying the host root literal to the window's root
/// alternatives. The host literal is the representative; alternatives that
/// collide with it, with other classes, or that are not AND nodes are
/// dropped.
fn link_class(
    g: &Aig,
    here: Lit,
    root_members: Vec<Lit>,
    classes: &mut Vec<ChoiceClass>,
    used_nodes: &mut FxHashSet<NodeId>,
    stats: &mut StitchStats,
) {
    if here.is_complemented() || !g.node(here.node()).is_and() || used_nodes.contains(&here.node())
    {
        // Constant-propagated or input-collapsed root, or a root shared with
        // another class: no link class is possible here.
        return;
    }
    let mut members = vec![here];
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    seen.insert(here.node());
    for lit in root_members {
        let node = lit.node();
        if !g.node(node).is_and() {
            continue;
        }
        if used_nodes.contains(&node) || !seen.insert(node) {
            stats.dropped_duplicate += 1;
            continue;
        }
        members.push(lit);
    }
    if members.len() < 2 {
        return;
    }
    for m in &members {
        used_nodes.insert(m.node());
    }
    classes.push(ChoiceClass { members });
}
