//! MFFC-seeded, reconvergence-bounded window extraction.
//!
//! Seeds are chosen where committed resynthesis has the most room to help:
//! output drivers and multi-fanout nodes, in descending id (top-down) order
//! so a window claims its whole cone before smaller seeds inside it are
//! considered. Each window grows downward from its root by repeatedly
//! expanding the cut node that keeps the frontier narrowest, bounded by
//! [`WindowOptions::max_leaves`] and [`WindowOptions::max_volume`]. A final
//! sweep seeds every AND the primary pass left uncovered, so the partition
//! always covers the host network.

use crate::{WindowError, WindowOptions};
use aig::{mffc_size, try_extract_cone, Aig, Cone, NodeId};
use fxhash::FxHashSet;

/// One reconvergence-bounded window of the host AIG.
#[derive(Debug, Clone)]
pub struct Window {
    /// Index of this window within its [`Partition`].
    pub id: usize,
    /// The host AND node the window is rooted at (unique per window).
    pub root: NodeId,
    /// Cut leaves, ascending host id; matches `cone.leaf_map` order.
    pub leaves: Vec<NodeId>,
    /// Interior nodes (root included), ascending host id. Every interior
    /// node's fanins lie in `volume ∪ leaves ∪ {constant}`.
    pub volume: Vec<NodeId>,
    /// The extracted sub-circuit: inputs are `leaves`, single output is the
    /// root function.
    pub cone: Cone,
    /// MFFC size of the root at seeding time (1 when the seed pass did not
    /// need to compute it, i.e. `min_mffc <= 1`).
    pub mffc: usize,
}

/// Summary statistics of a [`Partition`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Primary seeds considered (before coverage fallback).
    pub seeds: usize,
    /// Windows produced.
    pub windows: usize,
    /// Host AND gates covered by at least one window volume. Equals
    /// `total_ands` by construction.
    pub covered_ands: usize,
    /// Host AND gates in total.
    pub total_ands: usize,
    /// Sum of leaf counts over all windows.
    pub total_leaves: usize,
    /// Widest cut observed.
    pub max_leaves: usize,
    /// Largest interior observed.
    pub max_volume: usize,
}

/// A complete window cover of a host AIG.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The windows; roots are unique, volumes may overlap.
    pub windows: Vec<Window>,
    /// Summary statistics.
    pub stats: PartitionStats,
}

impl Partition {
    /// Mutable access to the window list, for audit mutation tests only.
    #[doc(hidden)]
    pub fn tamper_windows_mut(&mut self) -> &mut Vec<Window> {
        &mut self.windows
    }
}

/// Carves `aig` into reconvergence-bounded windows covering every AND gate.
///
/// # Errors
/// * [`WindowError::InvalidOptions`] — the knobs are unsatisfiable.
/// * [`WindowError::Cone`] — a window cut was rejected by
///   [`aig::try_extract_cone`]; construction guarantees dominating cuts, so
///   this indicates an internal inconsistency and is surfaced typed rather
///   than panicking.
pub fn partition(aig: &Aig, opts: &WindowOptions) -> Result<Partition, WindowError> {
    opts.validate()?;
    let num_nodes = aig.num_nodes();
    let fanouts = aig.fanout_counts();
    let mut drives_output = vec![false; num_nodes];
    for out in aig.outputs() {
        drives_output[out.node().index()] = true;
    }

    let mut covered = vec![false; num_nodes];
    let mut windows: Vec<Window> = Vec::new();
    let mut stats = PartitionStats {
        total_ands: aig.num_ands(),
        ..PartitionStats::default()
    };

    // Primary pass: top-down over MFFC-worthy seeds.
    let mut and_ids: Vec<NodeId> = aig.and_ids().collect();
    and_ids.sort_unstable_by(|a, b| b.cmp(a));
    for &seed in &and_ids {
        let interesting = drives_output[seed.index()] || fanouts[seed.index()] >= 2;
        if !interesting || covered[seed.index()] {
            continue;
        }
        // `mffc_size` copies the fanout vector (O(n)); every AND has an MFFC
        // of at least 1 (itself), so skip the walk when the knob cannot
        // filter anything.
        let mffc = if opts.min_mffc > 1 {
            mffc_size(aig, seed, &fanouts)
        } else {
            1
        };
        if mffc < opts.min_mffc {
            continue;
        }
        stats.seeds += 1;
        grow_window(
            aig,
            seed,
            mffc,
            opts,
            &mut covered,
            &mut windows,
            &mut stats,
        )?;
    }

    // Coverage fallback: every AND must belong to at least one volume.
    for &seed in &and_ids {
        if covered[seed.index()] {
            continue;
        }
        grow_window(aig, seed, 1, opts, &mut covered, &mut windows, &mut stats)?;
    }

    stats.windows = windows.len();
    stats.covered_ands = covered
        .iter()
        .enumerate()
        .filter(|(i, &c)| c && aig.node(NodeId(*i as u32)).is_and())
        .count();
    Ok(Partition { windows, stats })
}

/// Grows one window rooted at `root` and records it.
fn grow_window(
    aig: &Aig,
    root: NodeId,
    mffc: usize,
    opts: &WindowOptions,
    covered: &mut [bool],
    windows: &mut Vec<Window>,
    stats: &mut PartitionStats,
) -> Result<(), WindowError> {
    let mut volume: FxHashSet<NodeId> = FxHashSet::default();
    let mut cut: FxHashSet<NodeId> = FxHashSet::default();
    volume.insert(root);
    let (f0, f1) = aig.fanins(root);
    for f in [f0, f1] {
        if f.node() != NodeId::CONST {
            cut.insert(f.node());
        }
    }

    // Greedy frontier growth: expand the cut AND that keeps the cut
    // narrowest, preferring reconvergent expansions (which *shrink* the
    // frontier). Ties break toward the largest id so growth is deterministic
    // and stays near the root.
    loop {
        if volume.len() >= opts.max_volume {
            break;
        }
        let mut best: Option<(usize, NodeId)> = None;
        for &n in &cut {
            if !aig.node(n).is_and() {
                continue;
            }
            let (g0, g1) = aig.fanins(n);
            let fresh = [g0, g1]
                .iter()
                .filter(|l| {
                    let id = l.node();
                    id != NodeId::CONST && !cut.contains(&id) && !volume.contains(&id)
                })
                .count();
            let new_leaves = cut.len() - 1 + fresh;
            if new_leaves > opts.max_leaves {
                continue;
            }
            let candidate = (new_leaves, n);
            let better = match best {
                None => true,
                Some((bl, bn)) => new_leaves < bl || (new_leaves == bl && n > bn),
            };
            if better {
                best = Some(candidate);
            }
        }
        let Some((_, n)) = best else { break };
        cut.remove(&n);
        volume.insert(n);
        let (g0, g1) = aig.fanins(n);
        for g in [g0, g1] {
            let id = g.node();
            // A fanin already interior must not become a leaf: a node is
            // never both inside the window and on its boundary.
            if id != NodeId::CONST && !volume.contains(&id) {
                cut.insert(id);
            }
        }
    }

    let mut leaves: Vec<NodeId> = cut.into_iter().collect();
    leaves.sort_unstable();
    let mut interior: Vec<NodeId> = volume.iter().copied().collect();
    interior.sort_unstable();
    let cone = try_extract_cone(aig, &[root.lit()], Some(&leaves))?;
    for &v in &interior {
        covered[v.index()] = true;
    }
    stats.total_leaves += leaves.len();
    stats.max_leaves = stats.max_leaves.max(leaves.len());
    stats.max_volume = stats.max_volume.max(interior.len());
    windows.push(Window {
        id: windows.len(),
        root,
        leaves,
        volume: interior,
        cone,
        mffc,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(aig: &Aig, part: &Partition) {
        // Every AND covered by >= 1 volume.
        let mut covered = vec![false; aig.num_nodes()];
        for w in &part.windows {
            assert!(w.volume.contains(&w.root));
            for &v in &w.volume {
                covered[v.index()] = true;
                assert!(aig.node(v).is_and());
                // Interior fanins stay inside the window.
                let (f0, f1) = aig.fanins(v);
                for f in [f0, f1] {
                    let id = f.node();
                    assert!(
                        id == NodeId::CONST || w.volume.contains(&id) || w.leaves.contains(&id),
                        "window {} interior {v} reads {id} outside volume+cut",
                        w.id
                    );
                }
            }
            for &l in &w.leaves {
                assert!(!w.volume.contains(&l), "leaf {l} is also interior");
            }
            assert_eq!(w.cone.leaf_map, w.leaves);
            assert_eq!(w.cone.root_map, vec![w.root.lit()]);
        }
        for id in aig.and_ids() {
            assert!(covered[id.index()], "AND {id} not covered");
        }
        // Roots are unique.
        let roots: FxHashSet<NodeId> = part.windows.iter().map(|w| w.root).collect();
        assert_eq!(roots.len(), part.windows.len());
    }

    #[test]
    fn covers_small_circuits() {
        for bc in benchgen::epfl_like_suite(benchgen::SuiteScale::Tiny) {
            let part = partition(&bc.aig, &WindowOptions::default()).unwrap();
            check_invariants(&bc.aig, &part);
            assert_eq!(part.stats.covered_ands, part.stats.total_ands);
            assert!(part.stats.max_leaves <= 8);
            assert!(part.stats.max_volume <= 64);
        }
    }

    #[test]
    fn respects_tight_knobs() {
        let aig = benchgen::adder(8).aig;
        let opts = WindowOptions {
            max_leaves: 4,
            max_volume: 6,
            min_mffc: 1,
        };
        let part = partition(&aig, &opts).unwrap();
        check_invariants(&aig, &part);
        for w in &part.windows {
            assert!(w.leaves.len() <= 4 || w.volume.len() == 1);
            assert!(w.volume.len() <= 6);
        }
    }

    #[test]
    fn min_mffc_prunes_primary_seeds_but_not_coverage() {
        let aig = benchgen::adder(8).aig;
        let loose = partition(&aig, &WindowOptions::default()).unwrap();
        let strict = partition(
            &aig,
            &WindowOptions {
                min_mffc: 1000,
                ..WindowOptions::default()
            },
        )
        .unwrap();
        assert_eq!(strict.stats.covered_ands, strict.stats.total_ands);
        assert_eq!(strict.stats.seeds, 0);
        assert!(loose.stats.seeds > 0);
    }

    #[test]
    fn rejects_bad_options() {
        let aig = benchgen::adder(4).aig;
        let err = partition(
            &aig,
            &WindowOptions {
                max_leaves: 1,
                ..WindowOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, WindowError::InvalidOptions(_)));
        let err = partition(
            &aig,
            &WindowOptions {
                max_volume: 0,
                ..WindowOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, WindowError::InvalidOptions(_)));
    }

    #[test]
    fn is_deterministic() {
        let aig = benchgen::multiplier(8).aig;
        let a = partition(&aig, &WindowOptions::default()).unwrap();
        let b = partition(&aig, &WindowOptions::default()).unwrap();
        assert_eq!(a.windows.len(), b.windows.len());
        for (wa, wb) in a.windows.iter().zip(&b.windows) {
            assert_eq!(wa.root, wb.root);
            assert_eq!(wa.leaves, wb.leaves);
            assert_eq!(wa.volume, wb.volume);
        }
    }
}
