//! Windowed saturation substrate: carve, then stitch.
//!
//! A monolithic e-graph must hold an entire design, so saturation budgets
//! bite long before industrial sizes. This crate provides the escape hatch
//! used by ABC-style choice flows and partitioned eqsat mappers: carve the
//! AIG into overlapping, reconvergence-bounded *windows*, let the caller
//! saturate each window as an independent (small, cheap) e-graph, and stitch
//! the per-window choice spaces back into one global [`choices::ChoiceAig`]
//! through a boundary-literal translation table.
//!
//! The two halves live in [`partition`] and [`stitch`]:
//!
//! * [`partition()`] seeds windows at MFFC roots (output drivers and
//!   multi-fanout nodes), grows each window downward while the cut stays
//!   within [`WindowOptions::max_leaves`] and the interior within
//!   [`WindowOptions::max_volume`], and guarantees every AND gate of the
//!   host is covered by at least one window volume.
//! * [`stitch()`] rebuilds the host network, replays each window's exported
//!   choice alternatives at the window root, and links them into choice
//!   classes whose representative is the host node — producing a single
//!   [`choices::ChoiceAig`] a choice-aware mapper consumes directly.
//!
//! Windows overlap by design (a node may sit in several volumes); only the
//! *root* association is unique, which is what the stitcher keys on.

#![warn(missing_docs)]

pub mod partition;
pub mod stitch;

pub use partition::{partition, Partition, PartitionStats, Window};
pub use stitch::{stitch, StitchStats, Stitched, WindowChoiceSpace};

use aig::AigError;
use choices::ChoiceError;

/// Knobs bounding window growth.
///
/// | knob | meaning | default |
/// |------|---------|---------|
/// | `max_leaves` | cut width ceiling (window input count) | 8 |
/// | `max_volume` | interior AND-gate ceiling per window | 64 |
/// | `min_mffc` | minimum MFFC size for a *primary* seed | 1 |
///
/// Coverage is unconditional: ANDs left over after the primary seeding pass
/// are swept up by fallback windows regardless of `min_mffc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowOptions {
    /// Maximum number of cut leaves (window inputs).
    pub max_leaves: usize,
    /// Maximum number of interior AND gates per window.
    pub max_volume: usize,
    /// Minimum MFFC size for a primary seed (fallback coverage ignores it).
    pub min_mffc: usize,
}

impl Default for WindowOptions {
    fn default() -> Self {
        WindowOptions {
            max_leaves: 8,
            max_volume: 64,
            min_mffc: 1,
        }
    }
}

impl WindowOptions {
    /// Validates the knob combination.
    ///
    /// # Errors
    /// [`WindowError::InvalidOptions`] when `max_leaves < 2` (an AND gate
    /// alone needs two leaves) or `max_volume < 1` (a window must hold its
    /// root).
    pub fn validate(&self) -> Result<(), WindowError> {
        if self.max_leaves < 2 {
            return Err(WindowError::InvalidOptions(format!(
                "max_leaves must be at least 2 (an AND root alone has two fanins), got {}",
                self.max_leaves
            )));
        }
        if self.max_volume < 1 {
            return Err(WindowError::InvalidOptions(
                "max_volume must be at least 1 (a window must contain its root)".into(),
            ));
        }
        Ok(())
    }
}

/// Errors produced while partitioning or stitching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowError {
    /// The [`WindowOptions`] combination is unsatisfiable.
    InvalidOptions(String),
    /// Cone extraction rejected a window cut (propagated from [`aig`]).
    Cone(AigError),
    /// The stitched choice network failed validation (propagated from
    /// [`choices`]).
    Stitch(ChoiceError),
    /// A boundary literal could not be translated through the stitch table.
    Translation(String),
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::InvalidOptions(msg) => write!(f, "invalid window options: {msg}"),
            WindowError::Cone(e) => write!(f, "window cone extraction failed: {e}"),
            WindowError::Stitch(e) => write!(f, "stitched choice network invalid: {e}"),
            WindowError::Translation(msg) => write!(f, "boundary translation failed: {msg}"),
        }
    }
}

impl std::error::Error for WindowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WindowError::Cone(e) => Some(e),
            WindowError::Stitch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AigError> for WindowError {
    fn from(e: AigError) -> Self {
        WindowError::Cone(e)
    }
}

impl From<ChoiceError> for WindowError {
    fn from(e: ChoiceError) -> Self {
        WindowError::Stitch(e)
    }
}
