//! Cut-based resynthesis: DAG-aware rewriting and refactoring.
//!
//! For every AND node we enumerate K-feasible cuts, re-implement the cut
//! function from an algebraically factored SOP, and keep the new structure if
//! it does not cost more nodes than the logic it makes redundant (the node's
//! maximum fanout-free cone). This mirrors the intent of ABC's `rewrite` /
//! `refactor`: local, function-preserving restructuring that shrinks the
//! network and diversifies its shape before mapping.

use crate::factor::{factor_cover, FactorCube};
use aig::{mffc_size, Aig, AigNode, Lit, NodeId};
use techmap::cuts::{enumerate_cuts, CutsOptions};
use techmap::truth::isop;

/// Options for the resynthesis passes.
#[derive(Debug, Clone, Copy)]
pub struct ResynthOptions {
    /// Maximum cut size used for re-expression (4 for rewrite, 6 for refactor).
    pub cut_size: usize,
    /// Maximum number of cuts considered per node.
    pub cut_limit: usize,
    /// Accept re-implementations that are the same size as the logic they
    /// replace (increases structural diversity at no size cost).
    pub zero_gain: bool,
}

impl Default for ResynthOptions {
    fn default() -> Self {
        ResynthOptions {
            cut_size: 4,
            cut_limit: 5,
            zero_gain: true,
        }
    }
}

/// 4-input cut rewriting (the ABC `rw` analogue).
pub fn rewrite(aig: &Aig) -> Aig {
    resynthesize(aig, &ResynthOptions::default())
}

/// 6-input cut refactoring (the ABC `rf` analogue).
pub fn refactor(aig: &Aig) -> Aig {
    resynthesize(
        aig,
        &ResynthOptions {
            cut_size: 6,
            cut_limit: 4,
            zero_gain: false,
        },
    )
}

/// Rebuilds the network, re-expressing each node from the best factored form
/// of one of its cuts when that is no larger than the logic it replaces.
pub fn resynthesize(aig: &Aig, options: &ResynthOptions) -> Aig {
    let cut_options = CutsOptions {
        cut_size: options.cut_size.clamp(2, 6),
        cut_limit: options.cut_limit,
    };
    let cuts = enumerate_cuts(aig, &cut_options);
    let fanouts = aig.fanout_counts();

    let mut fresh = Aig::new(aig.name().to_string());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (idx, &pi) in aig.inputs().iter().enumerate() {
        map[pi.index()] = Some(fresh.add_input(aig.input_name(idx)));
    }

    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        let default_a = map[f0.node().index()]
            .unwrap_or_else(|| unreachable!("fanin built"))
            .xor(f0.is_complemented());
        let default_b = map[f1.node().index()]
            .unwrap_or_else(|| unreachable!("fanin built"))
            .xor(f1.is_complemented());

        // Budget: how many nodes the old implementation of this cone pays for.
        let budget = mffc_size(aig, id, &fanouts);

        // Try the factored form of each non-trivial cut with more than two
        // leaves; keep the cheapest one measured in newly created nodes.
        let mut best: Option<(Lit, usize)> = None;
        for cut in cuts.cuts(id) {
            if cut.leaves == [id] || cut.leaves.len() < 3 {
                continue;
            }
            let leaf_lits: Vec<Lit> = cut
                .leaves
                .iter()
                .map(|l| map[l.index()].unwrap_or_else(|| unreachable!("leaf built before root")))
                .collect();
            let cubes: Vec<FactorCube> = isop(cut.truth, cut.leaves.len())
                .iter()
                .map(|c| FactorCube {
                    pos: c.pos as u16,
                    neg: c.neg as u16,
                })
                .collect();
            let tree = factor_cover(&cubes);
            let before = fresh.num_nodes();
            let lit = tree.build(&mut fresh, &leaf_lits);
            let cost = fresh.num_nodes() - before;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((lit, cost));
            }
        }

        let accepted = match best {
            Some((lit, cost)) => {
                let ok = if options.zero_gain {
                    cost <= budget
                } else {
                    cost < budget
                };
                ok.then_some(lit)
            }
            None => None,
        };
        map[id.index()] = Some(match accepted {
            Some(lit) => lit,
            None => fresh.and(default_a, default_b),
        });
    }

    for (idx, po) in aig.outputs().iter().enumerate() {
        let base = match aig.node(po.node()) {
            AigNode::Const => Lit::FALSE,
            _ => map[po.node().index()].unwrap_or_else(|| unreachable!("output driver built")),
        };
        fresh.add_output(base.xor(po.is_complemented()), aig.output_name(idx));
    }
    let result = fresh.cleanup();
    // The per-node gain estimate is a heuristic (shared trial structures can
    // make candidates look cheaper than they end up being); guarantee the
    // pass never grows the network by falling back to the input if it did.
    if result.num_ands() > aig.num_ands() {
        aig.cleanup()
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert!(a.num_inputs() <= 12);
        for p in 0..(1usize << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p}");
        }
    }

    /// A circuit with a redundantly expressed cone: f = (a&b) | (a&c),
    /// built literally (4 AND nodes) instead of the factored a&(b|c) (2).
    fn redundant() -> Aig {
        let mut aig = Aig::new("red");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.or(ab, ac);
        aig.add_output(f, "f");
        aig
    }

    #[test]
    fn rewrite_preserves_function() {
        let aig = redundant();
        let out = rewrite(&aig);
        check_equiv_exhaustive(&aig, &out);
    }

    #[test]
    fn rewrite_reduces_redundant_cone() {
        let aig = redundant();
        assert_eq!(aig.num_ands(), 3);
        let out = rewrite(&aig);
        // a & (b | c) needs only 2 AND nodes.
        assert!(out.num_ands() <= aig.num_ands());
        check_equiv_exhaustive(&aig, &out);
    }

    #[test]
    fn refactor_preserves_function_on_adder() {
        let mut aig = Aig::new("adder");
        let a: Vec<_> = (0..3).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = Lit::FALSE;
        for i in 0..3 {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            carry = aig.maj3(a[i], b[i], carry);
            aig.add_output(sum, format!("s{i}"));
        }
        aig.add_output(carry, "cout");
        let out = refactor(&aig);
        check_equiv_exhaustive(&aig, &out);
        let rewritten = rewrite(&aig);
        check_equiv_exhaustive(&aig, &rewritten);
    }

    #[test]
    fn resynthesis_never_grows_much() {
        let mut aig = Aig::new("mixed");
        let inputs = aig.add_inputs("x", 8);
        let mut acc = inputs[0];
        for (i, &lit) in inputs[1..].iter().enumerate() {
            acc = if i % 2 == 0 {
                aig.or(acc, lit)
            } else {
                aig.xor(acc, lit)
            };
        }
        aig.add_output(acc, "f");
        let out = rewrite(&aig);
        check_equiv_exhaustive(&aig, &out);
        assert!(out.num_ands() <= aig.num_ands());
    }

    #[test]
    fn strict_gain_never_increases_size() {
        let aig = redundant();
        let out = resynthesize(
            &aig,
            &ResynthOptions {
                cut_size: 4,
                cut_limit: 5,
                zero_gain: false,
            },
        );
        assert!(out.num_ands() <= aig.num_ands());
        check_equiv_exhaustive(&aig, &out);
    }

    #[test]
    fn handles_trivial_networks() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(a.not(), "na");
        aig.add_output(Lit::FALSE, "zero");
        let out = rewrite(&aig);
        assert_eq!(out.evaluate(&[true]), vec![false, false]);
        assert_eq!(out.evaluate(&[false]), vec![true, false]);
    }
}
