//! Structural-choice computation: the `dch` analogue.
//!
//! ABC's `dch` accumulates structural choices by rewriting the network in
//! several ways and detecting functionally equivalent nodes across the
//! snapshots by simulation and SAT. Our substitute produces the same net
//! effect for the downstream mapper: it derives an alternative structure
//! (balance + rewrite), stacks it next to the original over shared inputs,
//! and SAT-sweeps the combined network so that equivalent cones collapse onto
//! a single (usually better) implementation.

use crate::{balance, rewrite};
use aig::{Aig, Lit};
use cec::{SatSweeper, SweepOptions};

/// Options for [`dch_like`].
#[derive(Debug, Clone)]
pub struct DchOptions {
    /// Options forwarded to the SAT sweeper.
    pub sweep: SweepOptions,
    /// Also generate a balanced + rewritten alternative structure before
    /// sweeping (matches `dch`'s use of multiple synthesis snapshots).
    pub use_alternative_structure: bool,
}

impl Default for DchOptions {
    fn default() -> Self {
        DchOptions {
            sweep: SweepOptions::default(),
            use_alternative_structure: true,
        }
    }
}

/// Computes structural choices and returns the functionally reduced network.
///
/// The result is combinationally equivalent to the input; redundant
/// functionally equivalent cones (including those only exposed by the
/// alternative structure) are merged.
pub fn dch_like(aig: &Aig, options: &DchOptions) -> Aig {
    let combined = if options.use_alternative_structure {
        let alternative = rewrite(&balance(aig));
        stack_over_shared_inputs(aig, &alternative)
    } else {
        aig.clone()
    };
    let sweeper = SatSweeper::new(options.sweep.clone());
    let (swept, _stats) = sweeper.sweep(&combined);
    // Keep only the original outputs (the alternative copies were appended
    // after them and exist purely to seed equivalences).
    keep_first_outputs(&swept, aig.num_outputs())
}

/// Builds a network containing both circuits over one shared set of inputs.
/// Outputs of `a` come first, then the outputs of `b`.
fn stack_over_shared_inputs(a: &Aig, b: &Aig) -> Aig {
    assert_eq!(
        a.num_inputs(),
        b.num_inputs(),
        "both structures must have the same inputs"
    );
    let mut out = Aig::new(a.name().to_string());
    let inputs: Vec<Lit> = a
        .input_names()
        .iter()
        .map(|n| out.add_input(n.clone()))
        .collect();
    let copy = |src: &Aig, dst: &mut Aig, inputs: &[Lit]| -> Vec<Lit> {
        let mut map: Vec<Option<Lit>> = vec![None; src.num_nodes()];
        map[0] = Some(Lit::FALSE);
        for (idx, &pi) in src.inputs().iter().enumerate() {
            map[pi.index()] = Some(inputs[idx]);
        }
        for id in src.and_ids() {
            let (f0, f1) = src.fanins(id);
            let x = map[f0.node().index()]
                .expect("topo")
                .xor(f0.is_complemented());
            let y = map[f1.node().index()]
                .expect("topo")
                .xor(f1.is_complemented());
            map[id.index()] = Some(dst.and(x, y));
        }
        src.outputs()
            .iter()
            .map(|po| {
                map[po.node().index()]
                    .expect("driver")
                    .xor(po.is_complemented())
            })
            .collect()
    };
    let outs_a = copy(a, &mut out, &inputs);
    let outs_b = copy(b, &mut out, &inputs);
    for (i, lit) in outs_a.into_iter().enumerate() {
        out.add_output(lit, a.output_name(i));
    }
    for (i, lit) in outs_b.into_iter().enumerate() {
        out.add_output(lit, format!("{}_alt", b.output_name(i)));
    }
    out
}

/// Keeps only the first `count` outputs of a network.
fn keep_first_outputs(aig: &Aig, count: usize) -> Aig {
    let mut trimmed = Aig::new(aig.name().to_string());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for (idx, &pi) in aig.inputs().iter().enumerate() {
        map[pi.index()] = Some(trimmed.add_input(aig.input_name(idx)));
    }
    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        let x = map[f0.node().index()]
            .expect("topo")
            .xor(f0.is_complemented());
        let y = map[f1.node().index()]
            .expect("topo")
            .xor(f1.is_complemented());
        map[id.index()] = Some(trimmed.and(x, y));
    }
    for (idx, po) in aig.outputs().iter().take(count).enumerate() {
        let lit = map[po.node().index()]
            .expect("driver")
            .xor(po.is_complemented());
        trimmed.add_output(lit, aig.output_name(idx));
    }
    trimmed.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cec::{check_equivalence, CecOptions};

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.or(ab, ac);
        let g = aig.mux(d, f, c);
        aig.add_output(f, "f");
        aig.add_output(g, "g");
        aig
    }

    #[test]
    fn dch_preserves_function() {
        let aig = sample();
        let out = dch_like(&aig, &DchOptions::default());
        assert_eq!(out.num_outputs(), aig.num_outputs());
        assert_eq!(out.num_inputs(), aig.num_inputs());
        assert!(check_equivalence(&aig, &out, &CecOptions::default()).is_equivalent());
    }

    #[test]
    fn dch_without_alternative_structure_is_a_sweep() {
        let aig = sample();
        let out = dch_like(
            &aig,
            &DchOptions {
                use_alternative_structure: false,
                ..DchOptions::default()
            },
        );
        assert!(check_equivalence(&aig, &out, &CecOptions::default()).is_equivalent());
        assert!(out.num_ands() <= aig.num_ands());
    }

    #[test]
    fn stacking_shares_inputs_and_concatenates_outputs() {
        let aig = sample();
        let alt = balance(&aig);
        let stacked = stack_over_shared_inputs(&aig, &alt);
        assert_eq!(stacked.num_inputs(), aig.num_inputs());
        assert_eq!(stacked.num_outputs(), aig.num_outputs() * 2);
        // Both halves implement the same functions.
        for p in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 == 1).collect();
            let out = stacked.evaluate(&bits);
            assert_eq!(out[0], out[2], "pattern {p}");
            assert_eq!(out[1], out[3], "pattern {p}");
        }
    }

    #[test]
    fn dch_does_not_grow_the_network() {
        let aig = sample();
        let out = dch_like(&aig, &DchOptions::default());
        // Sweeping the stacked structure must fold the duplicate back in.
        assert!(
            out.num_ands() <= aig.num_ands() + 2,
            "{} vs {}",
            out.num_ands(),
            aig.num_ands()
        );
    }
}
