//! Structural-choice computation: the `dch` analogue.
//!
//! ABC's `dch` accumulates structural choices by rewriting the network in
//! several ways and detecting functionally equivalent nodes across the
//! snapshots by simulation and SAT. Our substitute produces the same net
//! effect for the downstream mapper: it derives an alternative structure
//! (balance + rewrite), stacks it next to the original over shared inputs,
//! and SAT-sweeps the combined network so that equivalent cones collapse onto
//! a single (usually better) implementation.

use crate::{balance, rewrite};
use aig::{Aig, Lit};
use cec::{SatSweeper, SweepOptions, SweepStats};
use choices::{ChoiceAig, ChoiceError, RebuildStats};

/// Options for [`dch_like`].
#[derive(Debug, Clone)]
pub struct DchOptions {
    /// Options forwarded to the SAT sweeper.
    pub sweep: SweepOptions,
    /// Also generate a balanced + rewritten alternative structure before
    /// sweeping (matches `dch`'s use of multiple synthesis snapshots).
    pub use_alternative_structure: bool,
}

impl Default for DchOptions {
    fn default() -> Self {
        DchOptions {
            sweep: SweepOptions::default(),
            use_alternative_structure: true,
        }
    }
}

/// Computes structural choices and returns the functionally reduced network.
///
/// The result is combinationally equivalent to the input; redundant
/// functionally equivalent cones (including those only exposed by the
/// alternative structure) are merged.
pub fn dch_like(aig: &Aig, options: &DchOptions) -> Aig {
    let combined = if options.use_alternative_structure {
        let alternative = rewrite(&balance(aig));
        aig::stack_over_shared_inputs(aig, &alternative, "_alt")
    } else {
        aig.clone()
    };
    let sweeper = SatSweeper::new(options.sweep.clone());
    let (swept, _stats) = sweeper.sweep(&combined);
    // Keep only the original outputs (the alternative copies were appended
    // after them and exist purely to seed equivalences).
    keep_first_outputs(&swept, aig.num_outputs())
}

/// Computes structural choices like [`dch_like`] but *keeps* them: instead of
/// collapsing equivalent cones onto one implementation, the original and the
/// alternative structure are stacked over shared inputs, the proved
/// equivalences become choice classes, and the result is returned as a
/// [`ChoiceAig`] — the same type the e-graph exporter produces — so a
/// choice-aware mapper can pick per cut between the original and the
/// rewritten structure.
///
/// # Errors
/// Returns a [`ChoiceError`] if the proved classes cannot be turned into a
/// valid choice network (overlapping classes).
pub fn dch_choices(
    aig: &Aig,
    options: &DchOptions,
) -> Result<(ChoiceAig, RebuildStats, SweepStats), ChoiceError> {
    let combined = if options.use_alternative_structure {
        let alternative = rewrite(&balance(aig));
        aig::stack_over_shared_inputs(aig, &alternative, "_alt")
    } else {
        aig.clone()
    };
    let sweeper = SatSweeper::new(options.sweep.clone());
    let (equiv, sweep_stats) = sweeper.find_equivalences(&combined);
    // Only the original outputs survive; the alternative copies exist purely
    // to seed equivalences (their cones stay alive as choice members).
    let trimmed = keep_outputs_with_dangling(&combined, aig.num_outputs());
    let (network, rebuild_stats) = ChoiceAig::from_network_with_classes(&trimmed, &equiv.classes)?;
    Ok((network, rebuild_stats, sweep_stats))
}

/// Keeps the first `count` outputs but, unlike [`keep_first_outputs`], does
/// not drop the logic of the removed outputs — the whole node space is
/// preserved (ids unchanged) so equivalence classes computed on the full
/// network remain valid.
fn keep_outputs_with_dangling(aig: &Aig, count: usize) -> Aig {
    let mut trimmed = strip_outputs(aig);
    for i in 0..count {
        trimmed.add_output(aig.outputs()[i], aig.output_name(i).to_string());
    }
    trimmed
}

/// Returns a copy of `aig` with the same nodes but no outputs. Because
/// every construction path strashes, the replay is id-stable: node ids in
/// the copy match `aig`.
fn strip_outputs(aig: &Aig) -> Aig {
    let mut out = Aig::new(aig.name().to_string());
    let inputs: Vec<Lit> = aig
        .input_names()
        .iter()
        .map(|n| out.add_input(n.clone()))
        .collect();
    aig.copy_logic_into(&mut out, &inputs);
    out
}

/// Keeps only the first `count` outputs of a network.
fn keep_first_outputs(aig: &Aig, count: usize) -> Aig {
    let mut trimmed = Aig::new(aig.name().to_string());
    let inputs: Vec<Lit> = aig
        .input_names()
        .iter()
        .map(|n| trimmed.add_input(n.clone()))
        .collect();
    let map = aig.copy_logic_into(&mut trimmed, &inputs);
    for (idx, po) in aig.outputs().iter().take(count).enumerate() {
        let lit = map[po.node().index()].xor(po.is_complemented());
        trimmed.add_output(lit, aig.output_name(idx));
    }
    trimmed.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cec::{check_equivalence, CecOptions};

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.or(ab, ac);
        let g = aig.mux(d, f, c);
        aig.add_output(f, "f");
        aig.add_output(g, "g");
        aig
    }

    #[test]
    fn dch_preserves_function() {
        let aig = sample();
        let out = dch_like(&aig, &DchOptions::default());
        assert_eq!(out.num_outputs(), aig.num_outputs());
        assert_eq!(out.num_inputs(), aig.num_inputs());
        assert!(check_equivalence(&aig, &out, &CecOptions::default()).is_equivalent());
    }

    #[test]
    fn dch_without_alternative_structure_is_a_sweep() {
        let aig = sample();
        let out = dch_like(
            &aig,
            &DchOptions {
                use_alternative_structure: false,
                ..DchOptions::default()
            },
        );
        assert!(check_equivalence(&aig, &out, &CecOptions::default()).is_equivalent());
        assert!(out.num_ands() <= aig.num_ands());
    }

    #[test]
    fn stacking_shares_inputs_and_concatenates_outputs() {
        let aig = sample();
        let alt = balance(&aig);
        let stacked = aig::stack_over_shared_inputs(&aig, &alt, "_alt");
        assert_eq!(stacked.num_inputs(), aig.num_inputs());
        assert_eq!(stacked.num_outputs(), aig.num_outputs() * 2);
        // Both halves implement the same functions.
        for p in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 == 1).collect();
            let out = stacked.evaluate(&bits);
            assert_eq!(out[0], out[2], "pattern {p}");
            assert_eq!(out[1], out[3], "pattern {p}");
        }
    }

    #[test]
    fn dch_choices_produces_equivalent_members() {
        let aig = sample();
        let (network, rebuild, sweep) = dch_choices(&aig, &DchOptions::default()).unwrap();
        // The representative view is the original circuit's function.
        let repr = network.repr_network();
        assert!(check_equivalence(&aig, &repr, &CecOptions::default()).is_equivalent());
        // Every member literal evaluates to its class function. (Whether any
        // class survives depends on how different the rewritten structure
        // is; the invariants must hold either way.)
        #[allow(deprecated)] // string-typed oracle; audit carries the typed rules
        ::choices::check_members_equivalent(&network).unwrap();
        assert_eq!(rebuild.classes, network.num_classes());
        let _ = sweep;
    }

    #[test]
    fn dch_choices_without_alternative_structure_still_validates() {
        let aig = sample();
        let (network, _, _) = dch_choices(
            &aig,
            &DchOptions {
                use_alternative_structure: false,
                ..DchOptions::default()
            },
        )
        .unwrap();
        let repr = network.repr_network();
        assert!(check_equivalence(&aig, &repr, &CecOptions::default()).is_equivalent());
    }

    #[test]
    fn dch_does_not_grow_the_network() {
        let aig = sample();
        let out = dch_like(&aig, &DchOptions::default());
        // Sweeping the stacked structure must fold the duplicate back in.
        assert!(
            out.num_ands() <= aig.num_ands() + 2,
            "{} vs {}",
            out.num_ands(),
            aig.num_ands()
        );
    }
}
