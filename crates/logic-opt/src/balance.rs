//! Depth-oriented balancing of AND trees (the ABC `balance` command).
//!
//! The pass collects, for every multi-input conjunction, the set of leaves of
//! its maximal single-fanout AND tree and rebuilds the tree so that
//! earlier-arriving operands are combined first, minimizing the depth of the
//! result.

use aig::{Aig, AigNode, Lit, NodeId};

/// Rebuilds `aig` with every AND tree balanced by arrival time.
///
/// The result is functionally equivalent; its depth is never larger than a
/// freshly strashed copy of the input on typical circuits, and is usually
/// smaller for skewed chains.
pub fn balance(aig: &Aig) -> Aig {
    let fanouts = aig.fanout_counts();
    let mut fresh = Aig::new(aig.name().to_string());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    let mut level: Vec<u32> = vec![0; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (idx, &pi) in aig.inputs().iter().enumerate() {
        map[pi.index()] = Some(fresh.add_input(aig.input_name(idx)));
    }

    // Which nodes must be materialized as balanced tree roots: multi-fanout
    // nodes, nodes referenced through a complemented edge (tree boundaries in
    // an AIG), and output drivers.
    let mut is_root = vec![false; aig.num_nodes()];
    for id in aig.and_ids() {
        if fanouts[id.index()] > 1 {
            is_root[id.index()] = true;
        }
        let (f0, f1) = aig.fanins(id);
        for lit in [f0, f1] {
            if lit.is_complemented() && aig.node(lit.node()).is_and() {
                is_root[lit.node().index()] = true;
            }
        }
    }
    for po in aig.outputs() {
        is_root[po.node().index()] = true;
    }

    // Collect the leaves of the maximal AND tree rooted at `root`: descend
    // through non-complemented, single-fanout AND fanins.
    fn collect_leaves(
        aig: &Aig,
        root: NodeId,
        is_root: &[bool],
        leaves: &mut Vec<Lit>,
        depth: usize,
    ) {
        let (f0, f1) = aig.fanins(root);
        for lit in [f0, f1] {
            let child = lit.node();
            let expandable = !lit.is_complemented()
                && aig.node(child).is_and()
                && !is_root[child.index()]
                && depth < 10_000;
            if expandable {
                collect_leaves(aig, child, is_root, leaves, depth + 1);
            } else {
                leaves.push(lit);
            }
        }
    }

    for id in aig.and_ids() {
        if !is_root[id.index()] {
            continue;
        }
        let mut leaves = Vec::new();
        collect_leaves(aig, id, &is_root, &mut leaves, 0);
        // Map leaves into the new network with their arrival levels.
        let mut operands: Vec<(Lit, u32)> = leaves
            .iter()
            .map(|l| {
                let base =
                    map[l.node().index()].unwrap_or_else(|| unreachable!("leaf built before root"));
                (base.xor(l.is_complemented()), level[l.node().index()])
            })
            .collect();
        // Huffman-style reduction: combine the two earliest operands first.
        while operands.len() > 1 {
            operands.sort_by_key(|(_, lev)| std::cmp::Reverse(*lev));
            let (a, la) = operands.pop().unwrap_or_else(|| unreachable!("len > 1"));
            let (b, lb) = operands.pop().unwrap_or_else(|| unreachable!("len > 1"));
            let lit = fresh.and(a, b);
            operands.push((lit, la.max(lb) + 1));
        }
        let (lit, lev) = operands.pop().unwrap_or((Lit::TRUE, 0));
        map[id.index()] = Some(lit);
        level[id.index()] = lev;
    }

    for (idx, po) in aig.outputs().iter().enumerate() {
        let base = match aig.node(po.node()) {
            AigNode::Const => Lit::FALSE,
            _ => map[po.node().index()].unwrap_or_else(|| unreachable!("output driver built")),
        };
        fresh.add_output(base.xor(po.is_complemented()), aig.output_name(idx));
    }
    fresh.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert!(a.num_inputs() <= 14);
        for p in 0..(1usize << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn chain_becomes_logarithmic() {
        let mut aig = Aig::new("chain");
        let inputs = aig.add_inputs("x", 13);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        assert_eq!(aig.depth(), 12);
        let balanced = balance(&aig);
        assert!(balanced.depth() <= 4, "depth {}", balanced.depth());
        check_equiv_exhaustive(&aig, &balanced);
    }

    #[test]
    fn or_chains_balance_through_complemented_edges() {
        // An OR chain in an AIG is an AND chain of complemented literals with
        // a complemented output; balance still reduces its depth.
        let mut aig = Aig::new("orchain");
        let inputs = aig.add_inputs("x", 12);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.or(acc, lit);
        }
        aig.add_output(acc, "f");
        let balanced = balance(&aig);
        assert!(balanced.depth() <= 5, "depth {}", balanced.depth());
        check_equiv_exhaustive(&aig, &balanced);
    }

    #[test]
    fn multi_fanout_nodes_are_preserved() {
        let mut aig = Aig::new("shared");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let shared = aig.and(a, b);
        let f = aig.and(shared, c);
        let g = aig.and(shared, d);
        aig.add_output(f, "f");
        aig.add_output(g, "g");
        let balanced = balance(&aig);
        check_equiv_exhaustive(&aig, &balanced);
        // Sharing must not be duplicated: the balanced network is not larger.
        assert!(balanced.num_ands() <= aig.num_ands());
    }

    #[test]
    fn skewed_arrival_times_respected() {
        // h = ((((a&b)&c)&d) & deep) where `deep` is itself a chain: the
        // balanced form should put `deep` near the root.
        let mut aig = Aig::new("skew");
        let inputs = aig.add_inputs("x", 6);
        let deep1 = aig.and(inputs[0], inputs[1]);
        let deep2 = aig.and(deep1, inputs[2]);
        let flat = aig.and(inputs[3], inputs[4]);
        let flat2 = aig.and(flat, inputs[5]);
        let out = aig.and(deep2, flat2);
        aig.add_output(out, "f");
        let balanced = balance(&aig);
        check_equiv_exhaustive(&aig, &balanced);
        assert!(balanced.depth() <= aig.depth());
    }

    #[test]
    fn balance_is_idempotent_on_depth() {
        let mut aig = Aig::new("c");
        let inputs = aig.add_inputs("x", 10);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        let once = balance(&aig);
        let twice = balance(&once);
        assert_eq!(once.depth(), twice.depth());
        check_equiv_exhaustive(&once, &twice);
    }

    #[test]
    fn handles_constant_and_passthrough_outputs() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(Lit::TRUE, "one");
        aig.add_output(a.not(), "na");
        let balanced = balance(&aig);
        assert_eq!(balanced.evaluate(&[true]), vec![true, false]);
        assert_eq!(balanced.evaluate(&[false]), vec![true, true]);
    }
}
