//! Algebraic factoring of sum-of-products covers.
//!
//! The resynthesis passes re-implement cut functions from factored forms:
//! an irredundant SOP is computed first (`techmap::truth::isop`-style, but we
//! keep this crate independent by accepting any cube cover) and then factored
//! by repeatedly dividing out the most frequent literal. The resulting
//! expression tree is built back into the AIG with balanced operators.

use aig::{Aig, Lit};

/// A cube over at most 16 variables: positive and negative literal masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorCube {
    /// Bit `i` set: variable `i` appears positively.
    pub pos: u16,
    /// Bit `i` set: variable `i` appears negatively.
    pub neg: u16,
}

impl FactorCube {
    /// Number of literals.
    pub fn num_literals(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    fn contains(&self, var: usize, negated: bool) -> bool {
        if negated {
            self.neg >> var & 1 == 1
        } else {
            self.pos >> var & 1 == 1
        }
    }

    fn without(&self, var: usize, negated: bool) -> FactorCube {
        let mut c = *self;
        if negated {
            c.neg &= !(1 << var);
        } else {
            c.pos &= !(1 << var);
        }
        c
    }
}

/// A factored expression tree over variables `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorTree {
    /// Constant false (empty cover).
    Zero,
    /// Constant true (a cover containing the empty cube).
    One,
    /// A single literal: variable index and phase (`true` = negated).
    Literal(usize, bool),
    /// Conjunction of factors.
    And(Vec<FactorTree>),
    /// Disjunction of factors.
    Or(Vec<FactorTree>),
}

impl FactorTree {
    /// Number of literal occurrences in the tree (a proxy for implementation
    /// cost).
    pub fn literal_count(&self) -> usize {
        match self {
            FactorTree::Zero | FactorTree::One => 0,
            FactorTree::Literal(..) => 1,
            FactorTree::And(children) | FactorTree::Or(children) => {
                children.iter().map(FactorTree::literal_count).sum()
            }
        }
    }

    /// Builds the tree into an AIG given the literal of each variable,
    /// returning the root literal. Operators are built as balanced trees.
    pub fn build(&self, aig: &mut Aig, vars: &[Lit]) -> Lit {
        match self {
            FactorTree::Zero => Lit::FALSE,
            FactorTree::One => Lit::TRUE,
            FactorTree::Literal(v, negated) => vars[*v].xor(*negated),
            FactorTree::And(children) => {
                let lits: Vec<Lit> = children.iter().map(|c| c.build(aig, vars)).collect();
                aig.and_many(&lits)
            }
            FactorTree::Or(children) => {
                let lits: Vec<Lit> = children.iter().map(|c| c.build(aig, vars)).collect();
                aig.or_many(&lits)
            }
        }
    }

    /// Evaluates the tree on an assignment (bit `i` of `minterm` = variable `i`).
    pub fn eval(&self, minterm: usize) -> bool {
        match self {
            FactorTree::Zero => false,
            FactorTree::One => true,
            FactorTree::Literal(v, negated) => (minterm >> v & 1 == 1) ^ negated,
            FactorTree::And(children) => children.iter().all(|c| c.eval(minterm)),
            FactorTree::Or(children) => children.iter().any(|c| c.eval(minterm)),
        }
    }
}

/// Factors a cube cover into an expression tree by most-frequent-literal
/// division (quick algebraic factoring).
pub fn factor_cover(cubes: &[FactorCube]) -> FactorTree {
    if cubes.is_empty() {
        return FactorTree::Zero;
    }
    if cubes.iter().any(|c| c.num_literals() == 0) {
        return FactorTree::One;
    }
    if cubes.len() == 1 {
        return cube_to_tree(&cubes[0]);
    }
    // Find the literal occurring in the largest number of cubes.
    let mut best: Option<(usize, bool, usize)> = None;
    for var in 0..16usize {
        for negated in [false, true] {
            let count = cubes.iter().filter(|c| c.contains(var, negated)).count();
            if count >= 2 && best.is_none_or(|(_, _, c)| count > c) {
                best = Some((var, negated, count));
            }
        }
    }
    match best {
        None => {
            // No common literal: plain OR of cube products.
            FactorTree::Or(cubes.iter().map(cube_to_tree).collect())
        }
        Some((var, negated, _)) => {
            let mut quotient = Vec::new();
            let mut remainder = Vec::new();
            for cube in cubes {
                if cube.contains(var, negated) {
                    quotient.push(cube.without(var, negated));
                } else {
                    remainder.push(*cube);
                }
            }
            let factored_q = factor_cover(&quotient);
            let with_lit = match factored_q {
                FactorTree::One => FactorTree::Literal(var, negated),
                other => FactorTree::And(vec![FactorTree::Literal(var, negated), other]),
            };
            if remainder.is_empty() {
                with_lit
            } else {
                FactorTree::Or(vec![with_lit, factor_cover(&remainder)])
            }
        }
    }
}

fn cube_to_tree(cube: &FactorCube) -> FactorTree {
    let mut lits = Vec::new();
    for v in 0..16usize {
        if cube.pos >> v & 1 == 1 {
            lits.push(FactorTree::Literal(v, false));
        }
        if cube.neg >> v & 1 == 1 {
            lits.push(FactorTree::Literal(v, true));
        }
    }
    match lits.len() {
        0 => FactorTree::One,
        1 => lits.pop().unwrap_or_else(|| unreachable!("one literal")),
        _ => FactorTree::And(lits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(pos: u16, neg: u16) -> FactorCube {
        FactorCube { pos, neg }
    }

    fn cover_eval(cubes: &[FactorCube], minterm: usize) -> bool {
        cubes.iter().any(|c| {
            (0..16).all(|v| {
                let val = minterm >> v & 1 == 1;
                (c.pos >> v & 1 == 0 || val) && (c.neg >> v & 1 == 0 || !val)
            })
        })
    }

    #[test]
    fn constants() {
        assert_eq!(factor_cover(&[]), FactorTree::Zero);
        assert_eq!(factor_cover(&[cube(0, 0)]), FactorTree::One);
    }

    #[test]
    fn single_cube_becomes_and() {
        let tree = factor_cover(&[cube(0b011, 0b100)]);
        assert_eq!(tree.literal_count(), 3);
        for m in 0..8 {
            assert_eq!(tree.eval(m), m & 0b011 == 0b011 && m & 0b100 == 0);
        }
    }

    #[test]
    fn common_literal_is_factored_out() {
        // ab + ac = a(b + c): 3 literals instead of 4.
        let cubes = [cube(0b011, 0), cube(0b101, 0)];
        let tree = factor_cover(&cubes);
        assert_eq!(tree.literal_count(), 3);
        for m in 0..8 {
            assert_eq!(tree.eval(m), cover_eval(&cubes, m), "minterm {m}");
        }
    }

    #[test]
    fn factoring_preserves_function_on_random_covers() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n_cubes = 1 + (next() % 6) as usize;
            let cubes: Vec<FactorCube> = (0..n_cubes)
                .map(|_| {
                    let pos = (next() & 0x1F) as u16;
                    let neg = (next() & 0x1F) as u16 & !pos;
                    cube(pos, neg)
                })
                .collect();
            let tree = factor_cover(&cubes);
            for m in 0..32 {
                assert_eq!(tree.eval(m), cover_eval(&cubes, m));
            }
            // Factoring never increases the literal count.
            let flat: usize = cubes.iter().map(|c| c.num_literals() as usize).sum();
            assert!(tree.literal_count() <= flat);
        }
    }

    #[test]
    fn build_into_aig_matches_eval() {
        let cubes = [cube(0b011, 0), cube(0b101, 0), cube(0, 0b110)];
        let tree = factor_cover(&cubes);
        let mut aig = Aig::new("f");
        let vars: Vec<Lit> = (0..3).map(|i| aig.add_input(format!("x{i}"))).collect();
        let out = tree.build(&mut aig, &vars);
        aig.add_output(out, "f");
        for m in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits)[0], tree.eval(m), "minterm {m}");
        }
    }
}
