//! Composable optimization scripts, mirroring ABC command sequences.

use crate::{balance, dch_like, refactor, rewrite, DchOptions};
use aig::Aig;

/// One technology-independent pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Structural hashing + dangling-node sweep (ABC `st`).
    Strash,
    /// Depth-oriented balancing (ABC `b`).
    Balance,
    /// 4-input cut rewriting (ABC `rw`).
    Rewrite,
    /// 6-input cut refactoring (ABC `rf`).
    Refactor,
    /// Structural choices / functional reduction (ABC `dch`).
    Dch,
}

impl Pass {
    /// Applies the pass to a network.
    pub fn apply(self, aig: &Aig) -> Aig {
        match self {
            Pass::Strash => aig.strash_copy(),
            Pass::Balance => balance(aig),
            Pass::Rewrite => rewrite(aig),
            Pass::Refactor => refactor(aig),
            Pass::Dch => dch_like(aig, &DchOptions::default()),
        }
    }

    /// The ABC-style short name of the pass.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Strash => "st",
            Pass::Balance => "b",
            Pass::Rewrite => "rw",
            Pass::Refactor => "rf",
            Pass::Dch => "dch",
        }
    }
}

/// A sequence of passes applied in order.
#[derive(Debug, Clone, Default)]
pub struct OptScript {
    /// The passes to run, in order.
    pub passes: Vec<Pass>,
}

impl OptScript {
    /// Creates a script from a list of passes.
    pub fn new(passes: Vec<Pass>) -> Self {
        OptScript { passes }
    }

    /// The classic size-oriented script `st; rw; b; rf; b` (a `resyn`-style
    /// sequence).
    pub fn resyn() -> Self {
        OptScript::new(vec![
            Pass::Strash,
            Pass::Rewrite,
            Pass::Balance,
            Pass::Refactor,
            Pass::Balance,
        ])
    }

    /// Runs all passes and returns the optimized network.
    pub fn run(&self, aig: &Aig) -> Aig {
        let mut current = aig.clone();
        for pass in &self.passes {
            current = pass.apply(&current);
        }
        current
    }

    /// ABC-style textual form of the script, e.g. `st; rw; b`.
    pub fn to_command_string(&self) -> String {
        self.passes
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Lit;

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let inputs = aig.add_inputs("x", 6);
        let mut acc = Lit::FALSE;
        for (i, &lit) in inputs.iter().enumerate() {
            acc = if i % 2 == 0 {
                aig.or(acc, lit)
            } else {
                aig.xor(acc, lit)
            };
        }
        let extra = aig.and(inputs[0], inputs[5]);
        let out = aig.and(acc, extra.not());
        aig.add_output(out, "f");
        aig
    }

    #[test]
    fn script_preserves_function() {
        let aig = sample();
        let optimized = OptScript::resyn().run(&aig);
        for p in 0..64usize {
            let bits: Vec<bool> = (0..6).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(
                aig.evaluate(&bits),
                optimized.evaluate(&bits),
                "pattern {p}"
            );
        }
    }

    #[test]
    fn script_does_not_grow_network() {
        let aig = sample();
        let optimized = OptScript::resyn().run(&aig);
        assert!(optimized.num_ands() <= aig.num_ands());
    }

    #[test]
    fn command_string_matches_abc_names() {
        assert_eq!(OptScript::resyn().to_command_string(), "st; rw; b; rf; b");
        assert_eq!(Pass::Dch.name(), "dch");
        assert_eq!(OptScript::default().to_command_string(), "");
    }

    #[test]
    fn individual_passes_preserve_function() {
        let aig = sample();
        for pass in [Pass::Strash, Pass::Balance, Pass::Rewrite, Pass::Refactor] {
            let out = pass.apply(&aig);
            for p in [0usize, 1, 7, 33, 63] {
                let bits: Vec<bool> = (0..6).map(|i| p >> i & 1 == 1).collect();
                assert_eq!(
                    aig.evaluate(&bits),
                    out.evaluate(&bits),
                    "{pass:?} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn empty_script_is_identity() {
        let aig = sample();
        let out = OptScript::default().run(&aig);
        assert_eq!(out.num_ands(), aig.num_ands());
    }
}
