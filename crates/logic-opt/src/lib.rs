//! Technology-independent logic optimization passes over AIGs.
//!
//! These passes reproduce the role of ABC's pre-mapping script commands in
//! the E-morphic flows:
//!
//! * [`balance`] — depth-oriented rebalancing of AND/OR trees (ABC `b`).
//! * [`rewrite`] / [`refactor`] — cut-based resynthesis from factored forms
//!   (ABC `rw` / `rf`): each node's cut function is re-implemented from an
//!   algebraically factored sum-of-products and the cheaper structure wins.
//! * [`dch_like`] — the structural-choice substitute for ABC `dch`: random
//!   simulation plus SAT sweeping merges functionally equivalent nodes so the
//!   mapper sees a functionally reduced network.
//! * [`dch_choices`] — the same machinery, but the proved equivalences are
//!   *kept* as a `choices::ChoiceAig` so a choice-aware mapper can pick
//!   between the original and the rewritten structure per cut.
//! * [`OptScript`] — composition of passes, used to express the paper's
//!   `(st; if -g -K 6 -C 8)(st; dch; map)` style sequences.

#![warn(missing_docs)]

mod balance;
mod choices;
mod factor;
mod resynth;
mod script;

pub use balance::balance;
pub use choices::{dch_choices, dch_like, DchOptions};
pub use factor::{factor_cover, FactorTree};
pub use resynth::{refactor, rewrite, ResynthOptions};
pub use script::{OptScript, Pass};
