//! Integration tests for the synthesis daemon: the determinism/serving
//! contract (same circuit twice ⇒ cache hit with a bit-identical netlist),
//! checkpoint reuse across extractor kinds, and cooperative cancellation
//! (a cancelled job reports preemption, and its worker goes back to
//! serving the queue).

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::unwrap_used)]

use emorphic::flow::FlowConfig;
use emorphic::ExtractorKind;
use emorphic_server::{JobRequest, JobState, ServerOptions, SynthesisServer};
use std::time::{Duration, Instant};

/// Bit-identity proxy: `Aig` intentionally has no `PartialEq` (equality of
/// networks is a semantic question), so the serving contract is checked on
/// the exact serialized bytes.
fn aig_bytes(aig: &aig::Aig) -> String {
    serde_json::to_string(aig).unwrap()
}

#[test]
fn resubmission_is_a_cache_hit_with_bit_identical_netlist() {
    let server = SynthesisServer::start(&ServerOptions { workers: 2 });
    let circuit = benchgen::adder(6).aig;
    let config = FlowConfig::fast();

    let cold = server.submit(JobRequest::new(circuit.clone(), config.clone()));
    let cold = server.wait(cold).unwrap();
    assert_eq!(cold.state, JobState::Completed);
    assert!(!cold.cache_hit, "first submission must be a cold miss");
    let cold_result = cold.result.unwrap();
    assert!(cold_result.verified, "served netlist must be CEC-verified");

    let warm = server.submit(JobRequest::new(circuit, config));
    let warm = server.wait(warm).unwrap();
    assert_eq!(warm.state, JobState::Completed);
    assert!(warm.cache_hit, "identical resubmission must hit the cache");
    let warm_result = warm.result.unwrap();

    // The determinism contract: the cached answer IS the first answer.
    assert_eq!(
        aig_bytes(&cold_result.final_aig),
        aig_bytes(&warm_result.final_aig),
        "cache hit must serve a bit-identical netlist"
    );
    assert_eq!(cold_result.qor.area_um2, warm_result.qor.area_um2);
    assert_eq!(cold_result.qor.delay_ps, warm_result.qor.delay_ps);

    let stats = server.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.saturations, 1, "one circuit, one saturation");
}

#[test]
fn renumbered_clone_shares_the_cache_entry() {
    // The cache key is the structural fingerprint, not node numbering or
    // names: a renamed copy of the same function is the same key.
    let server = SynthesisServer::start(&ServerOptions { workers: 1 });
    let circuit = benchgen::adder(5).aig;
    let mut renamed = circuit.clone();
    renamed.set_name("adder5_copy");

    let config = FlowConfig::fast();
    let first = server.submit(JobRequest::new(circuit, config.clone()));
    assert_eq!(server.wait(first).unwrap().state, JobState::Completed);

    let second = server.submit(JobRequest::new(renamed, config));
    let second = server.wait(second).unwrap();
    assert_eq!(second.state, JobState::Completed);
    assert!(second.cache_hit, "renamed clone must share the cache key");
}

#[test]
fn different_extractor_reuses_the_checkpoint_without_resaturating() {
    let server = SynthesisServer::start(&ServerOptions { workers: 1 });
    let circuit = benchgen::adder(6).aig;
    let base = FlowConfig::fast();

    let bottom_up = server.submit(JobRequest::new(
        circuit.clone(),
        base.clone().with_extractor(ExtractorKind::BottomUp),
    ));
    let bottom_up = server.wait(bottom_up).unwrap();
    assert_eq!(bottom_up.state, JobState::Completed);
    let bottom_up = bottom_up.result.unwrap();
    assert!(!bottom_up.reused_checkpoint);

    // A different extraction engine is a different *result* key but the
    // same *saturation* key: the stored checkpoint must be re-extracted
    // instead of re-saturating.
    let greedy = server.submit(JobRequest::new(
        circuit,
        base.with_extractor(ExtractorKind::GlobalGreedyDag),
    ));
    let greedy = server.wait(greedy).unwrap();
    assert_eq!(greedy.state, JobState::Completed);
    assert!(
        !greedy.cache_hit,
        "different config must miss the result cache"
    );
    let greedy = greedy.result.unwrap();
    assert!(
        greedy.reused_checkpoint,
        "same saturation key must restore the checkpoint"
    );
    assert!(greedy.verified, "re-extracted netlist must be CEC-verified");

    let stats = server.stats();
    assert_eq!(stats.saturations, 1, "the e-graph must be built only once");
    assert_eq!(stats.checkpoint_hits, 1);
    assert_eq!(server.stored_checkpoints(), 1);
    assert_eq!(server.cached_results(), 2);
}

#[test]
fn cancel_preempts_cleanly_and_the_worker_keeps_serving() {
    // One worker: the heavy job holds it, the light job queues behind.
    let server = SynthesisServer::start(&ServerOptions { workers: 1 });

    // Generous limits and no time cap: without cancellation this job would
    // occupy the worker for a long time.
    let mut heavy_config = FlowConfig::paper();
    heavy_config.rewrite_iterations = 50;
    heavy_config.node_limit = 5_000_000;
    heavy_config.match_limit = 100_000;
    let heavy = server.submit(JobRequest::new(benchgen::multiplier(8).aig, heavy_config));
    let light = server.submit(JobRequest::new(benchgen::adder(4).aig, FlowConfig::fast()));
    // A queued job cancelled before any worker touches it is preempted
    // immediately.
    let never_run = server.submit(JobRequest::new(benchgen::adder(3).aig, FlowConfig::fast()));
    assert!(server.cancel(never_run));
    assert_eq!(server.status(never_run).unwrap().state, JobState::Preempted);

    // Wait until the heavy job is actually running, then cancel it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let state = server.status(heavy).unwrap().state;
        if state == JobState::Running || state.is_terminal() {
            break;
        }
        assert!(Instant::now() < deadline, "heavy job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.cancel(heavy));

    let heavy = server.wait(heavy).unwrap();
    assert_eq!(
        heavy.state,
        JobState::Preempted,
        "cancellation must report preemption, not a corrupted result"
    );
    assert!(heavy.result.is_none());
    assert!(heavy.error.is_none());

    // The reclaimed worker serves the queued job to completion: preemption
    // left no corrupted shared state behind.
    let light = server.wait(light).unwrap();
    assert_eq!(light.state, JobState::Completed);
    assert!(light.result.unwrap().verified);

    let stats = server.stats();
    assert_eq!(stats.preempted, 2);
    assert_eq!(stats.completed, 1);
}

#[test]
fn batch_of_duplicates_is_served_deterministically() {
    let server = SynthesisServer::start(&ServerOptions { workers: 4 });
    let circuit = benchgen::adder(5).aig;
    let config = FlowConfig::fast();
    let requests = (0..6)
        .map(|_| JobRequest::new(circuit.clone(), config.clone()))
        .collect();

    let statuses = server.run_batch(requests);
    let mut bytes: Vec<String> = Vec::new();
    for status in statuses {
        let status = status.unwrap();
        assert_eq!(status.state, JobState::Completed);
        bytes.push(aig_bytes(&status.result.unwrap().final_aig));
    }
    // Every duplicate of the key gets the identical answer, no matter which
    // worker computed it or how the pool interleaved.
    assert!(bytes.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(server.cached_results(), 1);
    assert_eq!(server.stats().saturations, 1);
}
