//! Synthesis-as-a-service: a persistent, thread-based synthesis daemon.
//!
//! The server keeps a pool of plain `std::thread` workers alive across
//! submissions (ROADMAP item 3: "a stream of jobs against warm state", not
//! one CLI invocation per design) and serves each job through three layers:
//!
//! 1. **Content-addressed result cache** — keyed on
//!    `(aig::structural_fingerprint, rules::rule_set_id, flow-config
//!    fingerprint)`. Identical or repeated submissions return instantly with
//!    the *same* result object: the first completion for a key defines the
//!    answer and every later submission of that key is served from the
//!    cache, which is the bit-identity serving contract.
//! 2. **Checkpoint store** — keyed on the *saturation-relevant* subset of
//!    the flow config (the extraction / verification knobs are excluded).
//!    One expensive saturation is snapshotted once through
//!    [`emorphic::FlowCheckpoint`] and re-extracted / re-mapped many times
//!    under different [`emorphic::ExtractorKind`] / cost-function /
//!    delay-target requests, amortizing the dominant phase (paper Fig. 9).
//! 3. **The flow itself** — the split entry points `prepare_network` →
//!    `saturate_network_with_interrupt` → `extract_network` →
//!    `map_network`, with the served netlist CEC-verified against the
//!    submitted input.
//!
//! Jobs carry optional wall-clock budgets (mapped onto the saturation time
//! limit) and can be cancelled cooperatively: cancellation sets a per-job
//! flag that the saturation runner checks at the same points as its other
//! limits, so a preempted job reports [`JobState::Preempted`] and returns
//! its worker to the pool with no corrupted state.

use aig::Aig;
use cec::{check_equivalence_swept, CecResult};
use emorphic::checkpoint::FlowCheckpoint;
use emorphic::flow::{
    extract_network, map_network, prepare_network, saturate_network_with_interrupt, FlowConfig,
};
use emorphic::rules::rule_set_id;
use fxhash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use techmap::Qor;

/// Locks a mutex, tolerating poisoning: a worker that panicked (which the
/// workspace lints forbid in library code anyway) must not wedge the whole
/// server, so the data is taken as-is.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A synthesis request: the circuit, the flow configuration, and an
/// optional wall-clock budget for the saturation phase.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The input network.
    pub aig: Aig,
    /// Flow knobs (saturation limits, extraction engine, CEC budgets, ...).
    pub config: FlowConfig,
    /// Per-job budget, mapped onto the saturation wall-clock limit (the
    /// tightest of this and `config.saturation_time_limit` wins).
    pub budget: Option<Duration>,
}

impl JobRequest {
    /// A request with the given circuit and config and no extra budget.
    pub fn new(aig: Aig, config: FlowConfig) -> Self {
        JobRequest {
            aig,
            config,
            budget: None,
        }
    }

    /// Sets the per-job budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; a result is available.
    Completed,
    /// Cancelled (or budget-preempted before any phase completed): the
    /// worker was reclaimed and no result is available. Preemption is a
    /// clean outcome, never a corrupted one — the runner's cooperative
    /// checkpoints leave every structure consistent.
    Preempted,
    /// The flow failed with a typed error (recorded on the status).
    Failed,
}

impl JobState {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Preempted | JobState::Failed
        )
    }
}

/// The deterministic payload served for a cache key: the first completion
/// for a key produces it, every later submission of the same key receives
/// the identical object.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The final technology-independent network right before mapping.
    pub final_aig: Aig,
    /// Post-mapping quality of the final netlist.
    pub qor: Qor,
    /// Whether CEC *proved* the served network equivalent to the submitted
    /// input (`true` when verification is disabled by the config).
    pub verified: bool,
    /// Whether this result was extracted from a restored checkpoint instead
    /// of a fresh saturation.
    pub reused_checkpoint: bool,
    /// Number of e-nodes in the (restored or fresh) saturated e-graph.
    pub egraph_nodes: usize,
}

/// A job's observable status.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// The result, once `state` is [`JobState::Completed`].
    pub result: Option<Arc<SynthesisResult>>,
    /// Whether the result was served from the result cache.
    pub cache_hit: bool,
    /// Typed failure description when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

/// Aggregate serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs accepted by [`SynthesisServer::submit`].
    pub submitted: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs preempted by cancellation.
    pub preempted: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs served straight from the result cache.
    pub cache_hits: u64,
    /// Jobs that restored a checkpoint instead of saturating.
    pub checkpoint_hits: u64,
    /// Fresh saturations performed (checkpoint-store misses).
    pub saturations: u64,
}

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads in the pool (floored at 1).
    pub workers: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { workers: 2 }
    }
}

struct JobEntry {
    state: JobState,
    cancel: Arc<AtomicBool>,
    result: Option<Arc<SynthesisResult>>,
    cache_hit: bool,
    error: Option<String>,
}

/// Queue + job table + stats behind one mutex (no lock ordering to get
/// wrong); the caches live behind their own locks so a long flow never
/// blocks submissions.
struct Shared {
    queue: VecDeque<(JobId, JobRequest)>,
    jobs: FxHashMap<JobId, JobEntry>,
    /// Result keys currently being computed by some worker. Duplicates of
    /// an in-flight key wait for the publication instead of repeating the
    /// work, so a batch of identical jobs costs one saturation.
    in_flight: FxHashSet<(u128, u64, u64)>,
    stats: ServerStats,
    next_id: u64,
    shutdown: bool,
}

/// Result-cache key: circuit fingerprint × rule-set id × full flow-config
/// fingerprint.
type ResultKey = (u128, u64, u64);
/// Checkpoint-store key: circuit fingerprint × rule-set id ×
/// saturation-relevant config fingerprint.
type SaturationKey = (u128, u64, u64);

struct Inner {
    shared: Mutex<Shared>,
    /// Wakes workers when work arrives or shutdown is requested.
    work_cv: Condvar,
    /// Wakes `wait()` callers when any job reaches a terminal state.
    done_cv: Condvar,
    result_cache: Mutex<FxHashMap<ResultKey, Arc<SynthesisResult>>>,
    checkpoints: Mutex<FxHashMap<SaturationKey, Arc<FlowCheckpoint>>>,
}

/// Deterministic string hash (fxhash-style, fixed constants).
fn hash_str(s: &str) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut acc: u64 = s.len() as u64;
    for b in s.as_bytes() {
        acc = (acc.rotate_left(5) ^ u64::from(*b)).wrapping_mul(K);
    }
    acc
}

/// Fingerprint of the whole flow configuration (the result-cache component).
/// Hashing the `Debug` rendering over-keys — any knob change, relevant or
/// not, invalidates the cache entry — which is the safe direction for a
/// content-addressed cache.
fn full_config_fingerprint(config: &FlowConfig) -> u64 {
    hash_str(&format!("{config:?}"))
}

/// Fingerprint of the saturation-relevant subset of the config: everything
/// that shapes the prepared network or the saturated e-graph, and nothing
/// that only affects extraction, mapping or verification — so a job that
/// merely switches `ExtractorKind`, cost model or delay target still hits
/// the checkpoint store.
fn saturation_config_fingerprint(config: &FlowConfig) -> u64 {
    hash_str(&format!(
        "rounds={:?} lut={:?} map={:?} dch={:?} library={:?} iters={:?} nodes={:?} \
         matches={:?} threads={:?} sat_limit={:?}",
        config.rounds,
        config.lut_options,
        config.map_options,
        config.dch_options,
        config.library,
        config.rewrite_iterations,
        config.node_limit,
        config.match_limit,
        config.search_threads,
        config.saturation_time_limit,
    ))
}

/// The persistent synthesis daemon. Dropping the server shuts the pool
/// down: the queue is drained of nothing further, workers finish their
/// current job and exit, and the threads are joined.
pub struct SynthesisServer {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SynthesisServer {
    /// Starts the daemon with `options.workers` pool threads.
    pub fn start(options: &ServerOptions) -> Self {
        let inner = Arc::new(Inner {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                jobs: FxHashMap::default(),
                in_flight: FxHashSet::default(),
                stats: ServerStats::default(),
                next_id: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            result_cache: Mutex::new(FxHashMap::default()),
            checkpoints: Mutex::new(FxHashMap::default()),
        });
        let workers = (0..options.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        SynthesisServer { inner, workers }
    }

    /// Enqueues one job and returns its id.
    pub fn submit(&self, request: JobRequest) -> JobId {
        let mut shared = lock(&self.inner.shared);
        let id = JobId(shared.next_id);
        shared.next_id += 1;
        shared.stats.submitted += 1;
        shared.jobs.insert(
            id,
            JobEntry {
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                result: None,
                cache_hit: false,
                error: None,
            },
        );
        shared.queue.push_back((id, request));
        drop(shared);
        self.inner.work_cv.notify_one();
        id
    }

    /// Batch mode: enqueues every request and returns the ids in order. The
    /// jobs multiplex over the worker pool; answers are deterministic per
    /// cache key (the first completion for a key defines it, duplicates are
    /// served from the cache).
    pub fn submit_batch(&self, requests: Vec<JobRequest>) -> Vec<JobId> {
        let ids: Vec<JobId> = requests.into_iter().map(|r| self.submit(r)).collect();
        self.inner.work_cv.notify_all();
        ids
    }

    /// Requests cooperative cancellation. A queued job is preempted
    /// immediately; a running job's cancel flag is set and the worker stops
    /// at the saturation runner's next limit checkpoint (or the next phase
    /// boundary). Returns `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut shared = lock(&self.inner.shared);
        let Some(entry) = shared.jobs.get_mut(&id) else {
            return false;
        };
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Preempted;
                entry.cancel.store(true, Ordering::Relaxed);
                shared.stats.preempted += 1;
                drop(shared);
                self.inner.done_cv.notify_all();
                true
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Returns the job's current status (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let shared = lock(&self.inner.shared);
        shared.jobs.get(&id).map(|e| JobStatus {
            state: e.state,
            result: e.result.clone(),
            cache_hit: e.cache_hit,
            error: e.error.clone(),
        })
    }

    /// Blocks until the job reaches a terminal state and returns its status.
    /// Returns `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut shared = lock(&self.inner.shared);
        loop {
            match shared.jobs.get(&id) {
                None => return None,
                Some(e) if e.state.is_terminal() => {
                    return Some(JobStatus {
                        state: e.state,
                        result: e.result.clone(),
                        cache_hit: e.cache_hit,
                        error: e.error.clone(),
                    });
                }
                Some(_) => {
                    shared = self
                        .inner
                        .done_cv
                        .wait(shared)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Submits a batch and waits for every job, returning statuses in order.
    pub fn run_batch(&self, requests: Vec<JobRequest>) -> Vec<Option<JobStatus>> {
        let ids = self.submit_batch(requests);
        ids.into_iter().map(|id| self.wait(id)).collect()
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ServerStats {
        lock(&self.inner.shared).stats
    }

    /// Number of entries in the result cache.
    pub fn cached_results(&self) -> usize {
        lock(&self.inner.result_cache).len()
    }

    /// Number of stored saturation checkpoints.
    pub fn stored_checkpoints(&self) -> usize {
        lock(&self.inner.checkpoints).len()
    }
}

impl Drop for SynthesisServer {
    fn drop(&mut self) {
        {
            let mut shared = lock(&self.inner.shared);
            shared.shutdown = true;
            // Cancel everything still queued or running so shutdown is
            // bounded by one job, not the whole backlog.
            let mut preempted = 0;
            for entry in shared.jobs.values_mut() {
                entry.cancel.store(true, Ordering::Relaxed);
                if entry.state == JobState::Queued {
                    entry.state = JobState::Preempted;
                    preempted += 1;
                }
            }
            shared.queue.clear();
            shared.stats.preempted += preempted;
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing we rely on
            // (all locks are poison-tolerant); ignore the join error.
            let _ = handle.join();
        }
    }
}

/// One pool thread: pop → serve → repeat until shutdown.
fn worker_loop(inner: &Inner) {
    loop {
        let (id, request) = {
            let mut shared = lock(&inner.shared);
            loop {
                if let Some(job) = shared.queue.pop_front() {
                    break job;
                }
                if shared.shutdown {
                    return;
                }
                shared = inner
                    .work_cv
                    .wait(shared)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        serve_job(inner, id, request);
        inner.done_cv.notify_all();
    }
}

/// Terminal-state bookkeeping shared by every outcome path.
fn finish(
    inner: &Inner,
    id: JobId,
    state: JobState,
    result: Option<Arc<SynthesisResult>>,
    cache_hit: bool,
    error: Option<String>,
) {
    let mut shared = lock(&inner.shared);
    match state {
        JobState::Completed => shared.stats.completed += 1,
        JobState::Preempted => shared.stats.preempted += 1,
        JobState::Failed => shared.stats.failed += 1,
        _ => {}
    }
    if cache_hit {
        shared.stats.cache_hits += 1;
    }
    if let Some(entry) = shared.jobs.get_mut(&id) {
        entry.state = state;
        entry.result = result;
        entry.cache_hit = cache_hit;
        entry.error = error;
    }
}

/// Executes one job through cache → checkpoint → flow.
fn serve_job(inner: &Inner, id: JobId, request: JobRequest) {
    let cancel = {
        let mut shared = lock(&inner.shared);
        let Some(entry) = shared.jobs.get_mut(&id) else {
            return;
        };
        // Cancelled while queued (state already terminal): nothing to do.
        if entry.state != JobState::Queued {
            return;
        }
        entry.state = JobState::Running;
        Arc::clone(&entry.cancel)
    };

    let JobRequest {
        aig,
        mut config,
        budget,
    } = request;
    // The per-job budget tightens the saturation limit; it never loosens a
    // limit the config already sets.
    if let Some(budget) = budget {
        config.saturation_time_limit = Some(
            config
                .saturation_time_limit
                .map_or(budget, |limit| limit.min(budget)),
        );
    }

    let fingerprint = aig.structural_fingerprint();
    let rules_id = rule_set_id();
    let result_key: ResultKey = (fingerprint, rules_id, full_config_fingerprint(&config));

    // Layer 1: the result cache, with in-flight coalescing — a duplicate of
    // a key some worker is already computing waits for that publication
    // instead of repeating the work, so a batch of identical jobs costs one
    // saturation no matter how the pool interleaves.
    loop {
        if let Some(result) = lock(&inner.result_cache).get(&result_key).cloned() {
            finish(inner, id, JobState::Completed, Some(result), true, None);
            return;
        }
        if cancel.load(Ordering::Relaxed) {
            finish(inner, id, JobState::Preempted, None, false, None);
            return;
        }
        let mut shared = lock(&inner.shared);
        if shared.in_flight.insert(result_key) {
            break;
        }
        // Someone else is computing the key right now; sleep briefly, then
        // re-check (timed so a cancellation of *this* job is still seen).
        let (guard, _timed_out) = inner
            .done_cv
            .wait_timeout(shared, Duration::from_millis(20))
            .unwrap_or_else(PoisonError::into_inner);
        drop(guard);
    }

    let outcome = 'flow: {
        // Technology-independent prefix (conventional rounds + SOP
        // balancing).
        let prepared = prepare_network(&aig, &config);
        if cancel.load(Ordering::Relaxed) {
            break 'flow None;
        }

        // Layer 2: the checkpoint store — restore a prior saturation of the
        // same (circuit, rules, saturation-knobs) key, or saturate and
        // store.
        let saturation_key: SaturationKey = (
            fingerprint,
            rules_id,
            saturation_config_fingerprint(&config),
        );
        let stored = lock(&inner.checkpoints).get(&saturation_key).cloned();
        let (state, reused_checkpoint) = match stored.as_ref().and_then(|cp| cp.restore().ok()) {
            Some(state) => {
                lock(&inner.shared).stats.checkpoint_hits += 1;
                (state, true)
            }
            None => {
                let state =
                    saturate_network_with_interrupt(&prepared, &config, Some(Arc::clone(&cancel)));
                if state.stop_reason == Some(egraph::StopReason::Interrupted) {
                    break 'flow None;
                }
                lock(&inner.shared).stats.saturations += 1;
                let checkpoint = Arc::new(FlowCheckpoint::capture(&state));
                lock(&inner.checkpoints)
                    .entry(saturation_key)
                    .or_insert(checkpoint);
                (state, false)
            }
        };
        if cancel.load(Ordering::Relaxed) {
            break 'flow None;
        }

        // Layer 3: extract, verify against the *submitted* input, map.
        let (extracted, _reports) = extract_network(&state, &config);
        let egraph_nodes = state.egraph.total_nodes();
        let mut resynthesized = extracted.unwrap_or_else(|| prepared.clone());
        if cancel.load(Ordering::Relaxed) {
            break 'flow None;
        }
        let mut verified = true;
        if config.verify {
            // Swept CEC proves the served netlist against the *submitted*
            // circuit (not just the prepared network): equivalence-class
            // sweeping closes the arithmetic miters the monolithic check
            // cannot within the conflict budget.
            match check_equivalence_swept(&aig, &resynthesized, &config.cec, &config.sweep) {
                CecResult::Equivalent => {}
                CecResult::NotEquivalent(_) => {
                    // A proven mismatch falls back to the prepared network,
                    // the same containment the flow applies; the served
                    // result says so via `verified = false`.
                    verified = false;
                    resynthesized = prepared.clone();
                }
                CecResult::Unknown => verified = false,
            }
        }
        let (final_aig, netlist) = map_network(&resynthesized, &config);
        let mut qor = netlist.qor();
        qor.name = aig.name().to_string();

        let result = Arc::new(SynthesisResult {
            final_aig,
            qor,
            verified,
            reused_checkpoint,
            egraph_nodes,
        });
        // First completion wins: if a concurrent duplicate of the same key
        // got here first, serve *its* object so every submission of the key
        // returns the identical result.
        Some(Arc::clone(
            lock(&inner.result_cache)
                .entry(result_key)
                .or_insert(result),
        ))
    };

    // Publish-or-release: the in-flight claim is dropped on every path so
    // coalesced waiters proceed — to the cache on success, to their own
    // computation on preemption.
    lock(&inner.shared).in_flight.remove(&result_key);
    inner.done_cv.notify_all();
    match outcome {
        Some(result) => finish(inner, id, JobState::Completed, Some(result), false, None),
        None => finish(inner, id, JobState::Preempted, None, false, None),
    }
}

/// Convenience: serve one job synchronously on a throwaway server. Used by
/// examples and tests that don't need a persistent pool.
pub fn serve_one(request: JobRequest) -> Option<JobStatus> {
    let server = SynthesisServer::start(&ServerOptions { workers: 1 });
    let id = server.submit(request);
    server.wait(id)
}
