//! The choice-annotated AIG network type.

use crate::ChoiceError;
use aig::{Aig, AigNode, Lit, NodeId};
use fxhash::{FxHashMap, FxHashSet};

/// DFS colors for the cycle-safe rebuild.
const WHITE: u8 = 0;
const GREY: u8 = 1;
const BLACK: u8 = 2;

/// One equivalence class of choice representatives.
///
/// Every member literal *evaluates to the class function*: for a member `m`,
/// the Boolean function of node `m.node()` XOR `m.is_complemented()` equals
/// the function of `members[0]` (the representative) interpreted the same
/// way. Fanouts in the network reference the representative node only; the
/// other members exist purely as alternative structures for the mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceClass {
    /// Member literals; `members[0]` is the representative.
    pub members: Vec<Lit>,
}

impl ChoiceClass {
    /// The representative literal (what the rest of the network references).
    #[inline]
    pub fn repr(&self) -> Lit {
        self.members[0]
    }

    /// The non-representative members.
    #[inline]
    pub fn alternatives(&self) -> &[Lit] {
        &self.members[1..]
    }

    /// Number of members (representative included).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the class has no members (never the case after validation).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Statistics of a [`ChoiceAig::from_network_with_classes`] rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Members dropped because realizing them would create a combinational
    /// cycle through their own class representative.
    pub dropped_cyclic: usize,
    /// Members dropped because structural hashing collapsed them onto the
    /// representative (they brought no new structure).
    pub dropped_duplicate: usize,
    /// Classes that survived with at least one alternative.
    pub classes: usize,
    /// Total alternatives across all surviving classes.
    pub alternatives: usize,
}

/// A choice-annotated And-Inverter Graph.
///
/// Structurally this is a plain [`Aig`] — alternatives are ordinary AND
/// nodes, usually dangling (not reachable from the outputs) — plus the class
/// annotation that tells a choice-aware mapper which nodes implement the same
/// function. See the crate docs for the ordering invariant.
#[derive(Debug, Clone)]
pub struct ChoiceAig {
    aig: Aig,
    classes: Vec<ChoiceClass>,
    /// Representative node → index into `classes`.
    class_of: FxHashMap<NodeId, usize>,
}

impl ChoiceAig {
    /// Wraps a network with no choices (every node is its own class).
    pub fn trivial(aig: Aig) -> Self {
        ChoiceAig {
            aig,
            classes: Vec::new(),
            class_of: FxHashMap::default(),
        }
    }

    /// Builds a choice network from a network and its classes, validating the
    /// member and ordering invariants.
    ///
    /// # Errors
    /// Returns a [`ChoiceError`] if a member is out of range or not an AND
    /// gate, a node occurs in a class with both phases, two classes share a
    /// representative, or a fanout of a representative precedes a member.
    pub fn new(aig: Aig, classes: Vec<ChoiceClass>) -> Result<Self, ChoiceError> {
        let mut class_of: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (index, class) in classes.iter().enumerate() {
            if class.members.len() < 2 {
                return Err(ChoiceError::InvalidMember(format!(
                    "class {index} has {} member(s); need a representative plus at least one \
                     alternative",
                    class.members.len()
                )));
            }
            let mut phases: FxHashMap<NodeId, bool> = FxHashMap::default();
            for &member in &class.members {
                let node = aig
                    .try_node(member.node())
                    .map_err(|e| ChoiceError::InvalidMember(format!("class {index}: {e}")))?;
                if !node.is_and() {
                    return Err(ChoiceError::InvalidMember(format!(
                        "class {index}: member {} is not an AND gate",
                        member.node()
                    )));
                }
                if let Some(&phase) = phases.get(&member.node()) {
                    if phase != member.is_complemented() {
                        return Err(ChoiceError::PhaseConflict(format!(
                            "class {index}: node {} occurs with both phases",
                            member.node()
                        )));
                    }
                } else {
                    phases.insert(member.node(), member.is_complemented());
                }
            }
            let repr = class.repr().node();
            if class_of.insert(repr, index).is_some() {
                return Err(ChoiceError::DuplicateRepresentative(format!(
                    "node {repr} represents more than one class"
                )));
            }
        }

        // Ordering invariant: the representative is the topologically *last*
        // member of its class. Every alternative (and, because cuts only
        // reach into a node's fanin cone, every cut leaf any member can
        // contribute) then precedes the representative, so a single
        // ascending-id pass over the network sees all member cuts before the
        // class is consumed and mapped covers stay topologically ordered.
        for (index, class) in classes.iter().enumerate() {
            let repr = class.repr().node();
            for member in class.alternatives() {
                if member.node() >= repr {
                    return Err(ChoiceError::OrderingViolation(format!(
                        "class {index}: member {} does not precede representative {repr}",
                        member.node()
                    )));
                }
            }
        }

        Ok(ChoiceAig {
            aig,
            classes,
            class_of,
        })
    }

    /// The underlying network (alternatives included as dangling nodes).
    #[inline]
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// All choice classes.
    #[inline]
    pub fn classes(&self) -> &[ChoiceClass] {
        &self.classes
    }

    /// Raw mutable class list. Bypasses every construction invariant — the
    /// `audit` crate's mutation tests use this to plant corruptions the
    /// auditor must detect. Never call from production code.
    #[doc(hidden)]
    pub fn tamper_classes_mut(&mut self) -> &mut Vec<ChoiceClass> {
        &mut self.classes
    }

    /// Raw mutable underlying network (same caveats as
    /// [`ChoiceAig::tamper_classes_mut`]).
    #[doc(hidden)]
    pub fn tamper_aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// The class represented by `node`, if it is a representative.
    #[inline]
    pub fn class_of(&self, node: NodeId) -> Option<&ChoiceClass> {
        self.class_of.get(&node).map(|&i| &self.classes[i])
    }

    /// Number of classes with at least one alternative.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of alternatives across all classes.
    pub fn num_alternatives(&self) -> usize {
        self.classes.iter().map(|c| c.alternatives().len()).sum()
    }

    /// The choice-free view: only the logic reachable from the outputs (the
    /// representative cone), with all alternatives removed.
    pub fn repr_network(&self) -> Aig {
        self.aig.cleanup()
    }

    /// Rebuilds `src` into a choice network from proved equivalence classes
    /// (e.g. the output of `cec::SatSweeper::find_equivalences`).
    ///
    /// Each input class lists pairwise-equivalent literals with the
    /// representative first (uncomplemented); a complemented member means the
    /// node equals the *negation* of the representative. The rebuild
    /// redirects every fanin onto class representatives, emits each member's
    /// own structure right after its representative (establishing the
    /// ordering invariant), and *drops* members whose realization would pass
    /// through their own class representative — the cycle-safe selection.
    /// Classes over constants or primary inputs are folded into plain
    /// representative substitution.
    ///
    /// # Errors
    /// Returns a [`ChoiceError`] if a class literal is out of range or the
    /// same node is claimed by two classes.
    pub fn from_network_with_classes(
        src: &Aig,
        classes: &[Vec<Lit>],
    ) -> Result<(Self, RebuildStats), ChoiceError> {
        let stats = RebuildStats::default();
        // Member substitution: node → literal over its class representative.
        let mut replacement: Vec<Option<Lit>> = vec![None; src.num_nodes()];
        // Representative node → (class index, members in src coordinates).
        let mut src_classes: Vec<(NodeId, Vec<Lit>)> = Vec::new();
        for class in classes {
            let Some((first, rest)) = class.split_first() else {
                continue;
            };
            let repr = first.node();
            if repr.index() >= src.num_nodes() {
                return Err(ChoiceError::InvalidMember(format!(
                    "representative {repr} out of range"
                )));
            }
            let mut members: Vec<Lit> = vec![repr.lit()];
            for &member in rest {
                if member.node().index() >= src.num_nodes() {
                    return Err(ChoiceError::InvalidMember(format!(
                        "member {} out of range",
                        member.node()
                    )));
                }
                if replacement[member.node().index()].is_some() {
                    return Err(ChoiceError::DuplicateRepresentative(format!(
                        "node {} is claimed by two classes",
                        member.node()
                    )));
                }
                replacement[member.node().index()] = Some(Lit::new(repr, member.is_complemented()));
                members.push(member);
            }
            // Choices only make sense on AND representatives; classes rooted
            // at constants or inputs still get the substitution above.
            if src.node(repr).is_and() && members.len() >= 2 {
                src_classes.push((repr, members));
            }
        }
        let class_index: FxHashMap<NodeId, usize> = src_classes
            .iter()
            .enumerate()
            .map(|(i, (repr, _))| (*repr, i))
            .collect();

        let mut rebuild = Rebuild {
            src,
            replacement: &replacement,
            class_index: &class_index,
            src_classes: &src_classes,
            fresh: Aig::new(src.name().to_string()),
            built: vec![None; src.num_nodes()],
            fresh_members: vec![Vec::new(); src_classes.len()],
            color: vec![WHITE; src.num_nodes()],
            stats,
        };
        rebuild.built[NodeId::CONST.index()] = Some(Lit::FALSE);
        rebuild.color[NodeId::CONST.index()] = BLACK;
        for (idx, &pi) in src.inputs().iter().enumerate() {
            rebuild.built[pi.index()] = Some(rebuild.fresh.add_input(src.input_name(idx)));
            rebuild.color[pi.index()] = BLACK;
        }

        let mut outputs: Vec<(Lit, String)> = Vec::new();
        for (idx, &po) in src.outputs().iter().enumerate() {
            let target = rebuild.subst(po);
            let lit = if src.node(target.node()).is_and() {
                // A top-level `None` means the output cone re-reaches its own
                // node through member substitution: the caller listed a
                // representative whose cone contains one of its members, so
                // redirecting the member makes the cone cyclic.
                let built_lit = rebuild.visit(target.node()).ok_or_else(|| {
                    ChoiceError::OrderingViolation(format!(
                        "output {idx}: cone of node {} is cyclic under representative \
                         substitution (a representative lies inside its own member's cone)",
                        target.node()
                    ))
                })?;
                built_lit.xor(target.is_complemented())
            } else {
                rebuild.built[target.node().index()]
                    .unwrap_or_else(|| unreachable!("constant and input nodes are pre-built"))
                    .xor(target.is_complemented())
            };
            outputs.push((lit, src.output_name(idx).to_string()));
        }
        let Rebuild {
            fresh: mut network_aig,
            built,
            fresh_members,
            mut stats,
            ..
        } = rebuild;
        for (lit, name) in outputs {
            network_aig.add_output(lit, name);
        }

        // Assemble the surviving classes in fresh coordinates.
        let mut out_classes: Vec<ChoiceClass> = Vec::new();
        let mut seen_repr: FxHashSet<NodeId> = FxHashSet::default();
        for (ci, (repr, _)) in src_classes.iter().enumerate() {
            let Some(repr_lit) = built[repr.index()] else {
                continue; // representative never reached from the outputs
            };
            if !network_aig.node(repr_lit.node()).is_and() {
                continue; // folded away during reconstruction
            }
            if !seen_repr.insert(repr_lit.node()) {
                continue; // strash merged two representatives; keep the first
            }
            let mut members: Vec<Lit> = vec![repr_lit];
            for &candidate in &fresh_members[ci] {
                let duplicate = !network_aig.node(candidate.node()).is_and()
                    || members.iter().any(|m| m.node() == candidate.node());
                if duplicate {
                    stats.dropped_duplicate += 1;
                } else {
                    members.push(candidate);
                }
            }
            if members.len() >= 2 {
                out_classes.push(ChoiceClass { members });
            }
        }
        let (out_classes, dropped) = filter_ordering(out_classes);
        stats.dropped_cyclic += dropped;
        for class in &out_classes {
            stats.classes += 1;
            stats.alternatives += class.alternatives().len();
        }

        let network = ChoiceAig::new(network_aig, out_classes)?;
        Ok((network, stats))
    }
}

/// One in-flight DFS frame of the rebuild.
struct Frame {
    node: NodeId,
    /// 0, 1: fanins pending; 2..: members pending; last: build the node (so
    /// the representative gets the highest id of its class).
    step: usize,
}

/// State of the cycle-safe rebuild DFS (see
/// [`ChoiceAig::from_network_with_classes`]).
struct Rebuild<'a> {
    src: &'a Aig,
    /// Member substitution: node → literal over its class representative.
    replacement: &'a [Option<Lit>],
    class_index: &'a FxHashMap<NodeId, usize>,
    src_classes: &'a [(NodeId, Vec<Lit>)],
    fresh: Aig,
    built: Vec<Option<Lit>>,
    /// Fresh members per class, filled as the DFS reaches representatives.
    fresh_members: Vec<Vec<Lit>>,
    color: Vec<u8>,
    stats: RebuildStats,
}

impl Rebuild<'_> {
    /// Redirects a literal onto its class representative (identity for
    /// non-members).
    fn subst(&self, lit: Lit) -> Lit {
        match self.replacement[lit.node().index()] {
            Some(repr) => Lit::new(repr.node(), repr.is_complemented() ^ lit.is_complemented()),
            None => lit,
        }
    }

    /// Visits the canonical cone of `start`, building nodes bottom-up and
    /// realizing class members *before* their representative so the
    /// representative is the topologically last member of its class.
    ///
    /// Returns `None` when the cone reaches a grey node (a cycle through an
    /// in-progress representative): nothing on the abort path is built and
    /// its frames are reset to white so later visits can retry them. Member
    /// realization re-enters `visit` recursively; that recursion is bounded
    /// by the class nesting depth, not the circuit depth, because each
    /// nested call walks its own cone iteratively.
    fn visit(&mut self, start: NodeId) -> Option<Lit> {
        if self.color[start.index()] == BLACK {
            return self.built[start.index()];
        }
        if self.color[start.index()] == GREY {
            return None;
        }
        let mut stack = vec![Frame {
            node: start,
            step: 0,
        }];
        self.color[start.index()] = GREY;
        'outer: while let Some(frame) = stack.last_mut() {
            let id = frame.node;
            let (f0, f1) = self.src.fanins(id);
            let fanins = [self.subst(f0), self.subst(f1)];
            while frame.step < 2 {
                let fanin = fanins[frame.step];
                frame.step += 1;
                match self.color[fanin.node().index()] {
                    BLACK => {}
                    GREY => {
                        // Cycle: unwind the whole active path to white.
                        for f in stack.drain(..) {
                            self.color[f.node.index()] = WHITE;
                        }
                        return None;
                    }
                    _ => {
                        self.color[fanin.node().index()] = GREY;
                        stack.push(Frame {
                            node: fanin.node(),
                            step: 0,
                        });
                        continue 'outer;
                    }
                }
            }
            // Realize the members of this class (if any) before building the
            // representative node, so every alternative precedes it. A member
            // whose cone reaches back into the (grey) representative is a
            // class-level cycle and is dropped.
            if let Some(&ci) = self.class_index.get(&id) {
                while frame.step - 2 < self.src_classes[ci].1.len() {
                    let member = self.src_classes[ci].1[frame.step - 2];
                    frame.step += 1;
                    if member.node() == id {
                        continue; // the representative itself
                    }
                    match self.visit(member.node()) {
                        Some(lit) => {
                            // Member convention: the stored literal evaluates
                            // to the class function.
                            self.fresh_members[ci].push(lit.xor(member.is_complemented()));
                        }
                        None => self.stats.dropped_cyclic += 1,
                    }
                }
            }
            let a = self.built[fanins[0].node().index()]
                .unwrap_or_else(|| unreachable!("fanin built"))
                .xor(fanins[0].is_complemented());
            let b = self.built[fanins[1].node().index()]
                .unwrap_or_else(|| unreachable!("fanin built"))
                .xor(fanins[1].is_complemented());
            self.built[id.index()] = Some(self.fresh.and(a, b));
            self.color[id.index()] = BLACK;
            stack.pop();
        }
        self.built[start.index()]
    }
}

/// Drops members that do not topologically precede their class
/// representative (structural hashing can produce such members when the
/// representative collapses onto pre-existing logic), then drops classes
/// left without alternatives. Returns the surviving classes and the number
/// of dropped members. The result always satisfies the ordering invariant
/// checked by [`ChoiceAig::new`]. Exposed for external builders of choice
/// networks (e.g. the windowed stitcher) that replay logic into a shared
/// host and can hit the same strash collisions as the exporter.
pub fn filter_ordering(classes: Vec<ChoiceClass>) -> (Vec<ChoiceClass>, usize) {
    let mut dropped = 0usize;
    let mut kept: Vec<ChoiceClass> = Vec::new();
    for mut class in classes {
        let repr = class.repr();
        let before = class.members.len();
        class
            .members
            .retain(|m| *m == repr || m.node() < repr.node());
        dropped += before - class.members.len();
        if class.members.len() >= 2 {
            kept.push(class);
        }
    }
    (kept, dropped)
}

/// Checks (by exhaustive simulation, inputs ≤ 16) that every member of every
/// class evaluates to the class function. Intended for tests.
#[deprecated(
    note = "use `audit::audit_choices` at `AuditLevel::Paranoid` for typed \
            per-rule diagnostics; this stringly-typed shim is kept for \
            legacy call sites"
)]
pub fn check_members_equivalent(choices: &ChoiceAig) -> Result<(), String> {
    let aig = choices.aig();
    assert!(aig.num_inputs() <= 16, "exhaustive check needs ≤16 inputs");
    for pattern in 0..(1usize << aig.num_inputs()) {
        let bits: Vec<bool> = (0..aig.num_inputs())
            .map(|i| pattern >> i & 1 == 1)
            .collect();
        let values = node_values(aig, &bits);
        for (index, class) in choices.classes().iter().enumerate() {
            let repr = class.repr();
            let expected = values[repr.node().index()] ^ repr.is_complemented();
            for &member in class.alternatives() {
                let got = values[member.node().index()] ^ member.is_complemented();
                if got != expected {
                    return Err(format!(
                        "class {index}: member {} disagrees with representative {} on pattern \
                         {pattern}",
                        member.node(),
                        repr.node()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Evaluates every node of `aig` on one input assignment.
fn node_values(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let mut values = vec![false; aig.num_nodes()];
    for id in aig.node_ids() {
        values[id.index()] = match aig.node(id) {
            AigNode::Const => false,
            AigNode::Input { index } => inputs[*index as usize],
            AigNode::And { fanin0, fanin1 } => {
                (values[fanin0.node().index()] ^ fanin0.is_complemented())
                    && (values[fanin1.node().index()] ^ fanin1.is_complemented())
            }
        };
    }
    values
}

#[cfg(test)]
#[allow(deprecated)] // legacy string-typed check_members_equivalent shim is still exercised here
mod tests {
    use super::*;

    /// `(a & b) | c` in SOP and POS shapes; the two forms are equivalent but
    /// structurally different, which is exactly what a choice class records.
    /// The POS cone is built first so the SOP root can serve as the
    /// (topologically last) representative.
    fn two_shapes() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new("shapes");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c);
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c);
        aig.add_output(f1, "f");
        (aig, f1, f2)
    }

    #[test]
    fn trivial_network_has_no_classes() {
        let (aig, _, _) = two_shapes();
        let choices = ChoiceAig::trivial(aig);
        assert_eq!(choices.num_classes(), 0);
        assert_eq!(choices.num_alternatives(), 0);
    }

    #[test]
    fn from_classes_establishes_invariants() {
        let (aig, f1, f2) = two_shapes();
        // f1 = !n (or is complemented and); its AND node equals !f1.
        let classes = vec![vec![Lit::new(f1.node(), false), Lit::new(f2.node(), true)]];
        let (choices, stats) = ChoiceAig::from_network_with_classes(&aig, &classes).unwrap();
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.alternatives, 1);
        assert_eq!(choices.num_classes(), 1);
        check_members_equivalent(&choices).unwrap();
        // The representative cone must still compute (a & b) | c.
        let repr = choices.repr_network();
        for p in 0..8usize {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let expected = (bits[0] && bits[1]) || bits[2];
            assert_eq!(repr.evaluate(&bits), vec![expected], "pattern {p}");
        }
    }

    #[test]
    fn duplicate_structure_members_are_dropped() {
        let (aig, f1, _) = two_shapes();
        // A "class" whose member is the representative itself adds nothing.
        let classes = vec![vec![Lit::new(f1.node(), false), Lit::new(f1.node(), false)]];
        let (choices, stats) = ChoiceAig::from_network_with_classes(&aig, &classes).unwrap();
        assert_eq!(choices.num_classes(), 0);
        assert_eq!(stats.classes, 0);
    }

    #[test]
    fn validation_rejects_phase_conflicts() {
        let (aig, f1, f2) = two_shapes();
        let class = ChoiceClass {
            members: vec![
                Lit::new(f1.node(), false),
                Lit::new(f2.node(), false),
                Lit::new(f2.node(), true),
            ],
        };
        let err = ChoiceAig::new(aig, vec![class]).unwrap_err();
        assert!(matches!(err, ChoiceError::PhaseConflict(_)));
    }

    #[test]
    fn validation_rejects_non_and_members() {
        let (aig, f1, _) = two_shapes();
        let pi = aig.inputs()[0];
        let class = ChoiceClass {
            members: vec![Lit::new(f1.node(), false), Lit::new(pi, false)],
        };
        let err = ChoiceAig::new(aig, vec![class]).unwrap_err();
        assert!(matches!(err, ChoiceError::InvalidMember(_)));
    }

    #[test]
    fn validation_rejects_ordering_violations() {
        // alt is created after n1, so it cannot be an alternative of a class
        // represented by n1: the representative must be the topologically
        // last member.
        let mut aig = Aig::new("order");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let n1 = aig.and(a, b);
        let n2 = aig.and(n1, c);
        let alt = aig.and(a, c);
        aig.add_output(n2, "f");
        let class = ChoiceClass {
            members: vec![Lit::new(n1.node(), false), Lit::new(alt.node(), false)],
        };
        let err = ChoiceAig::new(aig, vec![class]).unwrap_err();
        assert!(matches!(err, ChoiceError::OrderingViolation(_)));
    }

    #[test]
    fn representative_containing_its_member_is_a_typed_error() {
        // The representative's own cone contains the member; substituting the
        // member by the representative makes the output cone cyclic. This
        // must surface as a typed error, not a panic.
        let mut aig = Aig::new("selfcycle");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let m = aig.and(a, b);
        let x = aig.or(m, b);
        let r = aig.and(m, x); // r's cone contains m
        aig.add_output(r, "f");
        let classes = vec![vec![Lit::new(r.node(), false), Lit::new(m.node(), false)]];
        let err = ChoiceAig::from_network_with_classes(&aig, &classes).unwrap_err();
        assert!(matches!(err, ChoiceError::OrderingViolation(_)), "{err}");
    }

    #[test]
    fn cyclic_member_realization_is_dropped() {
        // m = and(r, x) is (contrived) "equivalent" to r when x ⊇ r; a class
        // {r, m} cannot realize m without passing through r, so the rebuild
        // must drop it rather than loop.
        let mut aig = Aig::new("cyc");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let r = aig.and(a, b);
        let x = aig.or(r, b); // r implies x, so and(r, x) == r
        let m = aig.and(r, x);
        aig.add_output(m, "f");
        let classes = vec![vec![Lit::new(r.node(), false), Lit::new(m.node(), false)]];
        let (choices, stats) = ChoiceAig::from_network_with_classes(&aig, &classes).unwrap();
        assert_eq!(stats.dropped_cyclic, 1);
        assert_eq!(choices.num_classes(), 0);
        // The output must still be correct (m realized through r's class? No:
        // m is substituted by r).
        for p in 0..4usize {
            let bits = [(p & 1) != 0, (p & 2) != 0];
            assert_eq!(
                choices.aig().evaluate(&bits),
                vec![bits[0] && bits[1]],
                "pattern {p}"
            );
        }
    }
}
