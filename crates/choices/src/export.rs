//! Exporting a saturated e-graph as a choice-annotated AIG.
//!
//! Instead of extracting *one* design from the e-graph, the exporter
//! materializes, for every live e-class, up to K structurally distinct
//! representatives ranked by a configurable cost. The representatives of a
//! class all realize the class function over the *canonical* representatives
//! of their child classes, which makes every alternative automatically
//! acyclic at the node level; class-level acyclicity (what a choice-aware cut
//! enumerator needs) is guaranteed by only admitting alternatives whose child
//! classes sit strictly lower in the representative DAG.

use crate::network::filter_ordering;
use crate::{ChoiceAig, ChoiceClass, ChoiceError};
use aig::{Aig, Lit};
use egraph::{EGraph, Id, Language};
use fxhash::{FxHashMap, FxHashSet};

/// The Boolean interpretation of one e-node, with child e-class ids.
///
/// The exporter is generic over the e-graph language; a language opts in by
/// implementing [`BoolNode`] and mapping each operator onto this shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolExpr {
    /// A Boolean constant.
    Const(bool),
    /// Primary input `i`.
    Var(u32),
    /// Negation of a class.
    Not(Id),
    /// Conjunction of two classes.
    And(Id, Id),
    /// Disjunction of two classes.
    Or(Id, Id),
}

impl BoolExpr {
    /// The child class slots of this operator (`None` for unused slots).
    pub fn children(&self) -> [Option<Id>; 2] {
        match *self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => [None, None],
            BoolExpr::Not(c) => [Some(c), None],
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => [Some(a), Some(b)],
        }
    }

    /// Rewrites every child class id with `f` (used to canonicalize children
    /// against an e-graph's union-find).
    pub fn map_children(self, mut f: impl FnMut(Id) -> Id) -> Self {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => self,
            BoolExpr::Not(c) => BoolExpr::Not(f(c)),
            BoolExpr::And(a, b) => BoolExpr::And(f(a), f(b)),
            BoolExpr::Or(a, b) => BoolExpr::Or(f(a), f(b)),
        }
    }
}

/// An e-graph language whose nodes can be interpreted as Boolean operators.
pub trait BoolNode: Language {
    /// The Boolean reading of this e-node, or `None` if the operator has no
    /// Boolean interpretation (such nodes are skipped by the exporter).
    fn as_bool(&self) -> Option<BoolExpr>;
}

/// The structural cost ranking choice representatives within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoiceCost {
    /// Gate count of the realization tree (AND/OR count 1, inverters are
    /// free edge attributes).
    #[default]
    Size,
    /// Gate depth of the realization.
    Depth,
}

/// Configuration of the e-graph → choice-network export.
#[derive(Debug, Clone)]
pub struct ChoiceConfig {
    /// Maximum members per class, representative included. `1` disables
    /// choices (the export degenerates to greedy extraction).
    pub max_choices: usize,
    /// Cost ranking the members.
    pub cost: ChoiceCost,
}

impl Default for ChoiceConfig {
    fn default() -> Self {
        ChoiceConfig {
            max_choices: 4,
            cost: ChoiceCost::Size,
        }
    }
}

/// Statistics of one export run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Classes reachable from the roots through representatives and admitted
    /// alternatives.
    pub live_classes: usize,
    /// Choice classes that survived with at least one alternative.
    pub classes: usize,
    /// Total admitted alternatives.
    pub alternatives: usize,
    /// Candidate alternatives rejected (height rule, duplicates after
    /// structural hashing, representative conflicts, ordering filter).
    pub rejected: usize,
}

fn expr_cost(
    expr: &BoolExpr,
    kind: ChoiceCost,
    child_cost: impl Fn(Id) -> Option<u64>,
) -> Option<u64> {
    let gate = match expr {
        BoolExpr::And(..) | BoolExpr::Or(..) => 1u64,
        BoolExpr::Not(_) | BoolExpr::Const(_) | BoolExpr::Var(_) => 0,
    };
    let mut combined = 0u64;
    for child in expr.children().into_iter().flatten() {
        let c = child_cost(child)?;
        combined = match kind {
            ChoiceCost::Size => combined.saturating_add(c),
            ChoiceCost::Depth => combined.max(c),
        };
    }
    Some(combined.saturating_add(gate))
}

/// A per-class selection driving the choice export: the representative
/// realization (`best`) and its cost (`costs`) for every realizable class.
///
/// Produced either by the exporter's own greedy sweep
/// ([`greedy_class_selection`]) or by an external extraction engine whose
/// per-class choices are translated to [`BoolExpr`]s — the dependency
/// inversion that lets alternative extractors shape which class members a
/// [`ChoiceAig`] keeps without this crate knowing about them.
#[derive(Debug, Clone, Default)]
pub struct ClassSelection {
    /// The selected realization per class, children canonicalized.
    pub best: FxHashMap<Id, BoolExpr>,
    /// The per-class cost ranking used to order choice members; classes
    /// missing here are treated as unrealizable.
    pub costs: FxHashMap<Id, u64>,
}

/// The exporter's default per-class selection: a greedy bottom-up sweep to
/// the least-fixpoint cost under `config.cost` (the same selection a
/// choice-free extraction would make).
pub fn greedy_class_selection<L: BoolNode>(
    egraph: &EGraph<L>,
    config: &ChoiceConfig,
) -> ClassSelection {
    let ids = egraph.class_ids_sorted();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();
    let mut best: FxHashMap<Id, BoolExpr> = FxHashMap::default();
    let mut changed = true;
    while changed {
        changed = false;
        for &cid in &ids {
            for node in &egraph.class(cid).nodes {
                let Some(expr) = node.as_bool() else { continue };
                let expr = expr.map_children(|c| egraph.find(c));
                let Some(cost) = expr_cost(&expr, config.cost, |c| costs.get(&c).copied()) else {
                    continue;
                };
                if costs.get(&cid).is_none_or(|&prev| cost < prev) {
                    costs.insert(cid, cost);
                    best.insert(cid, expr);
                    changed = true;
                }
            }
        }
    }
    ClassSelection { best, costs }
}

/// Exports a saturated (rebuilt) e-graph as a [`ChoiceAig`].
///
/// `roots` are the output classes (one per output name); `Var(i)` maps to
/// `input_names[i]`. The representative of every class is its cheapest
/// realization under `config.cost` (the same greedy bottom-up selection a
/// choice-free extraction would make), and up to `config.max_choices - 1`
/// alternatives per class ride along for the mapper. To let a different
/// extraction engine pick the representatives, use
/// [`egraph_to_choices_with_selection`].
///
/// # Errors
/// Returns a [`ChoiceError`] if a root class has no realizable term, a
/// variable index is out of range, or the roots and output names disagree in
/// length.
pub fn egraph_to_choices<L: BoolNode>(
    egraph: &EGraph<L>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
    config: &ChoiceConfig,
) -> Result<(ChoiceAig, ExportStats), ChoiceError> {
    let selection = greedy_class_selection(egraph, config);
    egraph_to_choices_with_selection(
        egraph,
        roots,
        input_names,
        output_names,
        name,
        config,
        &selection,
    )
}

/// Exports a saturated e-graph as a [`ChoiceAig`] around an externally
/// chosen per-class selection: `selection.best` supplies every class
/// representative (an extraction engine's choices), `selection.costs` ranks
/// the alternatives riding along.
///
/// # Errors
/// In addition to the [`egraph_to_choices`] errors, returns
/// [`ChoiceError::NoSelection`] when the selection is incomplete (a
/// representative references a class without one) or cyclic — external
/// selections are not trusted to be well-formed.
#[allow(clippy::too_many_arguments)]
pub fn egraph_to_choices_with_selection<L: BoolNode>(
    egraph: &EGraph<L>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
    config: &ChoiceConfig,
    selection: &ClassSelection,
) -> Result<(ChoiceAig, ExportStats), ChoiceError> {
    if roots.len() != output_names.len() {
        return Err(ChoiceError::NoSelection(format!(
            "{} roots but {} output names",
            roots.len(),
            output_names.len()
        )));
    }
    let best = &selection.best;
    let costs = &selection.costs;
    for &root in roots {
        let root = egraph.find(root);
        if !costs.contains_key(&root) || !best.contains_key(&root) {
            return Err(ChoiceError::NoSelection(format!(
                "root class {root} has no realizable term"
            )));
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: heights over the representative DAG. `h` strictly increases
    // along every representative edge (including through `Not`), so "all
    // child classes strictly lower" certifies class-level acyclicity. The
    // walk is defensive (two-color DFS): an external selection that is
    // incomplete or cyclic surfaces as a typed error instead of an index
    // panic or an unbounded loop.
    // ------------------------------------------------------------------
    let mut heights: FxHashMap<Id, u64> = FxHashMap::default();
    let mut visiting: FxHashSet<Id> = FxHashSet::default();
    for &start in best.keys() {
        if heights.contains_key(&start) {
            continue;
        }
        let mut stack: Vec<(Id, bool)> = vec![(start, false)];
        while let Some((top, ready)) = stack.pop() {
            if heights.contains_key(&top) {
                continue;
            }
            let Some(expr) = best.get(&top) else {
                return Err(ChoiceError::NoSelection(format!(
                    "selection is incomplete: class {top} has no selected member"
                )));
            };
            if ready {
                let mut max_child = 0u64;
                for child in expr.children().into_iter().flatten() {
                    max_child = max_child.max(heights.get(&child).copied().unwrap_or(0));
                }
                let h = match expr {
                    BoolExpr::Const(_) | BoolExpr::Var(_) => 0,
                    _ => 1 + max_child,
                };
                heights.insert(top, h);
                visiting.remove(&top);
            } else {
                if !visiting.insert(top) {
                    return Err(ChoiceError::NoSelection(format!(
                        "selection is cyclic through class {top}"
                    )));
                }
                stack.push((top, true));
                for child in expr.children().into_iter().flatten() {
                    if !heights.contains_key(&child) {
                        if visiting.contains(&child) {
                            return Err(ChoiceError::NoSelection(format!(
                                "selection is cyclic through class {child}"
                            )));
                        }
                        stack.push((child, false));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 3: admitted alternatives per class, then the live-class closure.
    // ------------------------------------------------------------------
    let mut stats = ExportStats::default();
    let alternatives_of = |cid: Id, stats: &mut ExportStats| -> Vec<BoolExpr> {
        if config.max_choices <= 1 {
            return Vec::new();
        }
        let h = heights[&cid];
        let chosen = best[&cid];
        let mut ranked: Vec<(u64, usize, BoolExpr)> = Vec::new();
        for (pos, node) in egraph.class(cid).nodes.iter().enumerate() {
            let Some(expr) = node.as_bool() else { continue };
            let expr = expr.map_children(|c| egraph.find(c));
            if expr == chosen {
                continue;
            }
            if matches!(expr, BoolExpr::Const(_) | BoolExpr::Var(_)) {
                continue; // a leaf alternative cannot be a mapped structure
            }
            let Some(cost) = expr_cost(&expr, config.cost, |c| costs.get(&c).copied()) else {
                continue;
            };
            // Cycle safety: every child class must sit strictly below this
            // class in the representative DAG.
            let admissible = expr
                .children()
                .into_iter()
                .flatten()
                .all(|c| heights.get(&c).is_some_and(|&ch| ch < h));
            if admissible {
                ranked.push((cost, pos, expr));
            } else {
                stats.rejected += 1;
            }
        }
        ranked.sort_by_key(|&(cost, pos, _)| (cost, pos));
        ranked.truncate(config.max_choices - 1);
        ranked.into_iter().map(|(_, _, expr)| expr).collect()
    };

    let mut live: FxHashMap<Id, Vec<BoolExpr>> = FxHashMap::default();
    let mut worklist: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
    while let Some(cid) = worklist.pop() {
        if live.contains_key(&cid) {
            continue;
        }
        let alts = alternatives_of(cid, &mut stats);
        for child in best[&cid]
            .children()
            .into_iter()
            .flatten()
            .chain(alts.iter().flat_map(|a| a.children().into_iter().flatten()))
        {
            if !live.contains_key(&child) {
                worklist.push(child);
            }
        }
        live.insert(cid, alts);
    }
    stats.live_classes = live.len();

    // ------------------------------------------------------------------
    // Pass 4: build the network class by class in (height, id) order, so all
    // members of a class exist before any fanout of its representative.
    // ------------------------------------------------------------------
    let mut order: Vec<Id> = live.keys().copied().collect();
    order.sort_unstable_by_key(|id| (heights[id], id.0));

    let mut aig = Aig::new(name.to_string());
    let inputs: Vec<Lit> = input_names
        .iter()
        .map(|n| aig.add_input(n.clone()))
        .collect();
    let mut repr_lit: FxHashMap<Id, Lit> = FxHashMap::default();
    let mut classes: Vec<ChoiceClass> = Vec::new();

    let build = |expr: &BoolExpr,
                 aig: &mut Aig,
                 repr_lit: &FxHashMap<Id, Lit>|
     -> Result<Lit, ChoiceError> {
        Ok(match *expr {
            BoolExpr::Const(b) => {
                if b {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            }
            BoolExpr::Var(i) => *inputs.get(i as usize).ok_or_else(|| {
                ChoiceError::UnknownInput(format!("variable x{i} but only {} inputs", inputs.len()))
            })?,
            BoolExpr::Not(c) => repr_lit[&c].not(),
            BoolExpr::And(a, b) => {
                let (la, lb) = (repr_lit[&a], repr_lit[&b]);
                aig.and(la, lb)
            }
            BoolExpr::Or(a, b) => {
                let (la, lb) = (repr_lit[&a], repr_lit[&b]);
                aig.or(la, lb)
            }
        })
    };

    let mut registered: FxHashSet<aig::NodeId> = FxHashSet::default();
    for cid in order {
        // Alternatives are realized *before* the representative so the
        // representative ends up with the topologically last node of its
        // class (the ordering invariant): every cut any member contributes
        // then only reaches nodes below the representative.
        let mut alt_lits: Vec<Lit> = Vec::new();
        for alt in &live[&cid] {
            alt_lits.push(build(alt, &mut aig, &repr_lit)?);
        }
        let repr = build(&best[&cid], &mut aig, &repr_lit)?;
        repr_lit.insert(cid, repr);
        if alt_lits.is_empty() || !aig.node(repr.node()).is_and() {
            stats.rejected += alt_lits.len();
            continue;
        }
        if registered.contains(&repr.node()) {
            // An aliasing representative (e.g. a `Not`-rooted class) shares
            // its node with an earlier class; that node already carries
            // choices, so this class's alternatives are dropped.
            stats.rejected += alt_lits.len();
            continue;
        }
        let mut members: Vec<Lit> = vec![repr];
        for lit in alt_lits {
            let duplicate =
                !aig.node(lit.node()).is_and() || members.iter().any(|m| m.node() == lit.node());
            if duplicate {
                stats.rejected += 1;
            } else {
                members.push(lit);
            }
        }
        if members.len() >= 2 {
            registered.insert(repr.node());
            classes.push(ChoiceClass { members });
        }
    }

    for (&root, output_name) in roots.iter().zip(output_names) {
        let root = egraph.find(root);
        let lit = repr_lit[&root];
        aig.add_output(lit, output_name.clone());
    }

    let (classes, dropped) = filter_ordering(classes);
    stats.rejected += dropped;
    for class in &classes {
        stats.classes += 1;
        stats.alternatives += class.alternatives().len();
    }
    let network = ChoiceAig::new(aig, classes)?;
    Ok((network, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)] // the string-typed shim remains a handy oracle in tests
    use crate::network::check_members_equivalent;
    use egraph::{RecExpr, SymbolLang};

    /// `SymbolLang` terms over `&`, `|`, `!`, `xN`, `true`/`false` read as
    /// Boolean circuits, which lets the tests drive the exporter without a
    /// dedicated language.
    impl BoolNode for SymbolLang {
        fn as_bool(&self) -> Option<BoolExpr> {
            let children = self.children();
            match (self.op_str().as_str(), children.len()) {
                ("&", 2) => Some(BoolExpr::And(children[0], children[1])),
                ("|", 2) => Some(BoolExpr::Or(children[0], children[1])),
                ("!", 1) => Some(BoolExpr::Not(children[0])),
                ("true", 0) => Some(BoolExpr::Const(true)),
                ("false", 0) => Some(BoolExpr::Const(false)),
                (var, 0) if var.starts_with('x') => var[1..].parse().ok().map(BoolExpr::Var),
                _ => None,
            }
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    fn export(
        egraph: &EGraph<SymbolLang>,
        roots: &[Id],
        num_inputs: usize,
        config: &ChoiceConfig,
    ) -> (ChoiceAig, ExportStats) {
        egraph_to_choices(
            egraph,
            roots,
            &names(num_inputs),
            &["f".to_string()],
            "test",
            config,
        )
        .unwrap()
    }

    fn saturate(exprs: &[&str]) -> (EGraph<SymbolLang>, Id) {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let mut root = None;
        for text in exprs {
            let expr: RecExpr<SymbolLang> = text.parse().unwrap();
            let id = eg.add_expr(&expr);
            match root {
                None => root = Some(id),
                Some(r) => {
                    eg.union(r, id);
                }
            }
        }
        eg.rebuild();
        let root = root.unwrap();
        (eg, root)
    }

    #[test]
    #[allow(deprecated)] // keeps the legacy check_members_equivalent shim covered
    fn exports_equivalent_alternatives() {
        // Two shapes of the same function in one class.
        let (eg, root) = saturate(&["(| (& x0 x1) x2)", "(& (| x0 x2) (| x1 x2))"]);
        let (choices, stats) = export(&eg, &[eg.find(root)], 3, &ChoiceConfig::default());
        assert_eq!(stats.classes, 1, "stats: {stats:?}");
        assert!(choices.num_alternatives() >= 1);
        check_members_equivalent(&choices).unwrap();
        // The representative network computes the function.
        let repr = choices.repr_network();
        for p in 0..8usize {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let expected = (bits[0] && bits[1]) || bits[2];
            assert_eq!(repr.evaluate(&bits), vec![expected], "pattern {p}");
        }
    }

    #[test]
    fn max_choices_one_disables_choices() {
        let (eg, root) = saturate(&["(| (& x0 x1) x2)", "(& (| x0 x2) (| x1 x2))"]);
        let config = ChoiceConfig {
            max_choices: 1,
            ..ChoiceConfig::default()
        };
        let (choices, stats) = export(&eg, &[eg.find(root)], 3, &config);
        assert_eq!(choices.num_classes(), 0);
        assert_eq!(stats.alternatives, 0);
    }

    #[test]
    fn representative_is_the_cheapest_member() {
        // The SOP form has 3 gates, the POS form 3 gates as well, but after
        // adding a deliberately bigger 4-gate shape the representative must
        // not be that one.
        let (eg, root) = saturate(&[
            "(| (& x0 x1) x2)",
            "(| x2 (& x0 (& x1 x1)))", // extra gate
        ]);
        let (choices, _) = export(&eg, &[eg.find(root)], 3, &ChoiceConfig::default());
        // Greedy representative realization: 2 ANDs + 1 OR = 3 AIG nodes at
        // most for the SOP shape.
        assert!(choices.repr_network().num_ands() <= 3);
    }

    #[test]
    fn missing_root_is_an_error() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        // A class with only a non-Boolean operator cannot be realized.
        let expr: RecExpr<SymbolLang> = "(foo x0)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let err = egraph_to_choices(
            &eg,
            &[eg.find(root)],
            &names(1),
            &["f".to_string()],
            "t",
            &ChoiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::NoSelection(_)));
    }

    #[test]
    fn variable_out_of_range_is_an_error() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(& x0 x9)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let err = egraph_to_choices(
            &eg,
            &[eg.find(root)],
            &names(1),
            &["f".to_string()],
            "t",
            &ChoiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::UnknownInput(_)));
    }

    #[test]
    fn external_selection_matches_inline_greedy() {
        let (eg, root) = saturate(&["(| (& x0 x1) x2)", "(& (| x0 x2) (| x1 x2))"]);
        let config = ChoiceConfig::default();
        let selection = greedy_class_selection(&eg, &config);
        let a = export(&eg, &[eg.find(root)], 3, &config);
        let b = egraph_to_choices_with_selection(
            &eg,
            &[eg.find(root)],
            &names(3),
            &["f".to_string()],
            "test",
            &config,
            &selection,
        )
        .unwrap();
        assert_eq!(a.0.classes(), b.0.classes());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn incomplete_external_selection_is_an_error() {
        let (eg, root) = saturate(&["(& x0 x1)"]);
        let root = eg.find(root);
        // A selection whose root member references a class with no selection.
        let mut selection = greedy_class_selection(&eg, &ChoiceConfig::default());
        let child = selection.best[&root]
            .children()
            .into_iter()
            .flatten()
            .next()
            .unwrap();
        selection.best.remove(&child);
        let err = egraph_to_choices_with_selection(
            &eg,
            &[root],
            &names(2),
            &["f".to_string()],
            "test",
            &ChoiceConfig::default(),
            &selection,
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::NoSelection(_)), "{err}");
    }

    #[test]
    fn cyclic_external_selection_is_an_error() {
        let (eg, root) = saturate(&["(& x0 x1)"]);
        let root = eg.find(root);
        // Hand-build a cyclic "selection": the root realizes as Not(root).
        let mut selection = ClassSelection::default();
        selection.best.insert(root, BoolExpr::Not(root));
        selection.costs.insert(root, 1);
        let err = egraph_to_choices_with_selection(
            &eg,
            &[root],
            &names(2),
            &["f".to_string()],
            "test",
            &ChoiceConfig::default(),
            &selection,
        )
        .unwrap_err();
        assert!(matches!(err, ChoiceError::NoSelection(_)), "{err}");
        assert!(err.to_string().contains("cyclic"), "{err}");
    }

    #[test]
    fn export_is_deterministic() {
        let (eg, root) = saturate(&[
            "(| (& x0 x1) (& x2 x3))",
            "(| (& x2 x3) (& x0 x1))",
            "(& (| x0 x2) (& (| x0 x3) (& (| x1 x2) (| x1 x3))))",
        ]);
        let a = export(&eg, &[eg.find(root)], 4, &ChoiceConfig::default());
        let b = export(&eg, &[eg.find(root)], 4, &ChoiceConfig::default());
        assert_eq!(a.0.aig().num_nodes(), b.0.aig().num_nodes());
        assert_eq!(a.0.classes(), b.0.classes());
        assert_eq!(a.1, b.1);
    }
}
