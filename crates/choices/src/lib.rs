//! Choice networks: map the whole e-space, not one extracted design.
//!
//! A saturated e-graph holds *many* structurally different implementations of
//! every signal, but a conventional flow collapses it to a single circuit
//! before technology mapping ever sees it — discarding exactly the structural
//! diversity the saturation paid for. This crate keeps that diversity alive
//! across the extraction boundary as a [`ChoiceAig`]: an ordinary
//! [`aig::Aig`] whose nodes are grouped into *choice classes* of functionally
//! equivalent representatives, so a choice-aware mapper (see
//! `techmap::cell::try_map_to_cells_with_choices`) can pick the best
//! structure per cut instead of per circuit.
//!
//! Two choice sources are supported behind the same type:
//!
//! * [`egraph_to_choices`] exports a saturated e-graph: each live e-class
//!   becomes a class of top-K representatives ranked by a configurable
//!   structural cost, realized cycle-safely against the class-representative
//!   DAG and structurally hashed into one network.
//! * [`ChoiceAig::from_network_with_classes`] ingests proved equivalence
//!   classes over an existing network (the `dch`/SAT-sweeping route; see
//!   `logic_opt::dch_choices`), rebuilding the network so that the choice
//!   ordering invariant holds and dropping members that would create
//!   combinational cycles.
//!
//! # The choice ordering invariant
//!
//! Every [`ChoiceAig`] guarantees that *all members of a class precede every
//! fanout of the class representative* in topological (node-id) order. A
//! choice-aware cut enumerator can therefore run a single bottom-up pass:
//! when a node first consumes the cuts of a choice class, the cut sets of
//! every member of that class are already available. [`ChoiceAig::new`]
//! validates the invariant, so a mapper may rely on it unconditionally.

#![warn(missing_docs)]

mod export;
mod network;

pub use export::{
    egraph_to_choices, egraph_to_choices_with_selection, greedy_class_selection, BoolExpr,
    BoolNode, ChoiceConfig, ChoiceCost, ClassSelection, ExportStats,
};
#[allow(deprecated)]
pub use network::check_members_equivalent;
pub use network::{filter_ordering, ChoiceAig, ChoiceClass, RebuildStats};

/// Errors produced while building or validating a choice network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChoiceError {
    /// A class member references a node that does not exist or is not an AND
    /// gate.
    InvalidMember(String),
    /// The same node occurs in one class with both phases (it would have to
    /// equal both the class function and its complement).
    PhaseConflict(String),
    /// Two classes share the same representative node.
    DuplicateRepresentative(String),
    /// A fanout of a class representative precedes a member of the class,
    /// violating the choice ordering invariant.
    OrderingViolation(String),
    /// A root e-class has no realizable selection (no finite-cost term).
    NoSelection(String),
    /// The e-graph references a primary input outside the provided name list.
    UnknownInput(String),
    /// The e-graph contains an operator the Boolean exporter cannot
    /// interpret.
    UnsupportedOp(String),
}

impl std::fmt::Display for ChoiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChoiceError::InvalidMember(msg) => write!(f, "invalid choice member: {msg}"),
            ChoiceError::PhaseConflict(msg) => write!(f, "choice phase conflict: {msg}"),
            ChoiceError::DuplicateRepresentative(msg) => {
                write!(f, "duplicate choice representative: {msg}")
            }
            ChoiceError::OrderingViolation(msg) => {
                write!(f, "choice ordering violation: {msg}")
            }
            ChoiceError::NoSelection(msg) => write!(f, "no selection: {msg}"),
            ChoiceError::UnknownInput(msg) => write!(f, "unknown input: {msg}"),
            ChoiceError::UnsupportedOp(msg) => write!(f, "unsupported operator: {msg}"),
        }
    }
}

impl std::error::Error for ChoiceError {}
