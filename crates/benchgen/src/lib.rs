//! EPFL-like combinational benchmark circuit generators.
//!
//! The E-morphic paper evaluates on ten circuits of the EPFL combinational
//! benchmark suite (`hyp`, `div`, `mem_ctrl`, `log2`, `multiplier`, `sqrt`,
//! `square`, `arbiter`, `sin`, `adder`). The original AIGs are distributed as
//! files; this crate regenerates functionally comparable circuits from
//! parametric generators so the whole reproduction is self-contained:
//! the same arithmetic/control functions, the same relative size ordering
//! (hyp largest … adder smallest), at bit-widths scaled to laptop-friendly
//! sizes (see `DESIGN.md` for the substitution rationale).
//!
//! # Example
//!
//! ```
//! let suite = benchgen::epfl_like_suite(benchgen::SuiteScale::Tiny);
//! assert_eq!(suite.len(), 10);
//! let adder = suite.iter().find(|c| c.name == "adder").unwrap();
//! assert!(adder.aig.num_ands() > 0);
//! ```

#![warn(missing_docs)]

mod circuits;
mod random;
pub mod words;

pub use circuits::{
    adder, arbiter, crossbar, divider, hypotenuse, log2, mem_ctrl, multiplier, sine, square,
    square_root, BenchCircuit, SuiteScale,
};
pub use random::random_aig;

/// Generates the full ten-circuit EPFL-like suite at the given scale,
/// ordered roughly from largest to smallest (the Table II/III row order).
pub fn epfl_like_suite(scale: SuiteScale) -> Vec<BenchCircuit> {
    let (w_small, w_mid, w_big) = match scale {
        SuiteScale::Tiny => (6, 8, 8),
        SuiteScale::Small => (8, 12, 16),
        SuiteScale::Default => (16, 24, 32),
    };
    vec![
        hypotenuse(w_big),
        divider(w_big),
        mem_ctrl(w_mid),
        log2(w_big),
        multiplier(w_big),
        square_root(w_big),
        square(w_mid),
        arbiter(4 * w_mid),
        sine(w_small),
        adder(2 * w_mid),
    ]
}

/// Generates the scaling-class circuits used by the windowed-saturation
/// benchmarks: instances of the regular generators at sizes where monolithic
/// saturation starts to struggle (up to the paper-style `multiplier64` at
/// [`SuiteScale::Default`]), plus the crossbar [`router`](crossbar)
/// interconnect fabric. Names carry the size (`multiplier32`, …) so results
/// at different scales stay distinguishable.
pub fn scaling_suite(scale: SuiteScale) -> Vec<BenchCircuit> {
    fn named(mut circuit: BenchCircuit, name: &str) -> BenchCircuit {
        circuit.name = name.to_string();
        circuit
    }
    match scale {
        SuiteScale::Tiny => vec![
            named(multiplier(8), "multiplier8"),
            named(adder(32), "adder32"),
            named(crossbar(4, 4), "router4x4"),
        ],
        SuiteScale::Small => vec![
            named(multiplier(16), "multiplier16"),
            named(adder(64), "adder64"),
            named(crossbar(8, 8), "router8x8"),
        ],
        SuiteScale::Default => vec![
            named(multiplier(32), "multiplier32"),
            named(multiplier(64), "multiplier64"),
            named(adder(128), "adder128"),
            named(crossbar(8, 16), "router8x16"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_named_circuits() {
        let suite = epfl_like_suite(SuiteScale::Tiny);
        let names: Vec<&str> = suite.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "hyp",
                "div",
                "mem_ctrl",
                "log2",
                "multiplier",
                "sqrt",
                "square",
                "arbiter",
                "sin",
                "adder"
            ]
        );
    }

    #[test]
    fn size_ordering_roughly_matches_epfl() {
        let suite = epfl_like_suite(SuiteScale::Small);
        let size = |name: &str| {
            suite
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.aig.num_ands())
                .unwrap()
        };
        // hyp is the largest circuit; adder and arbiter are among the smallest.
        assert!(size("hyp") > size("multiplier"));
        assert!(size("hyp") > size("adder"));
        assert!(size("div") > size("adder"));
        assert!(size("multiplier") > size("adder"));
    }

    #[test]
    fn scales_are_monotonic() {
        let tiny = epfl_like_suite(SuiteScale::Tiny);
        let small = epfl_like_suite(SuiteScale::Small);
        let total = |s: &[BenchCircuit]| s.iter().map(|c| c.aig.num_ands()).sum::<usize>();
        assert!(total(&small) > total(&tiny));
    }

    #[test]
    fn scaling_suite_grows_with_scale() {
        let tiny = scaling_suite(SuiteScale::Tiny);
        let small = scaling_suite(SuiteScale::Small);
        let largest = |s: &[BenchCircuit]| s.iter().map(|c| c.aig.num_ands()).max().unwrap();
        assert!(largest(&small) > largest(&tiny));
        // Every circuit carries a size-qualified name.
        for c in tiny.iter().chain(&small) {
            assert!(c.name.chars().any(|ch| ch.is_ascii_digit()), "{}", c.name);
        }
    }
}
