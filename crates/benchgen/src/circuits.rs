//! Parametric generators for the ten EPFL-like benchmark circuits.

use crate::words::{
    constant_word, equal, greater_equal, multiply, mux_word, resize, ripple_add, ripple_sub,
    shift_left_const, shift_right_const,
};
use aig::{Aig, Lit};

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct BenchCircuit {
    /// EPFL-style circuit name (e.g. `"adder"`).
    pub name: String,
    /// The generated network.
    pub aig: Aig,
}

impl BenchCircuit {
    fn new(name: &str, aig: Aig) -> Self {
        BenchCircuit {
            name: name.to_string(),
            aig,
        }
    }
}

/// Size presets for [`crate::epfl_like_suite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Very small circuits for unit tests (seconds for the whole flow).
    Tiny,
    /// Small circuits for integration tests and quick benchmarks.
    Small,
    /// The default evaluation scale used by the benchmark harness.
    Default,
}

fn word_inputs(aig: &mut Aig, prefix: &str, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| aig.add_input(format!("{prefix}[{i}]")))
        .collect()
}

fn add_word_outputs(aig: &mut Aig, prefix: &str, word: &[Lit]) {
    for (i, &bit) in word.iter().enumerate() {
        aig.add_output(bit, format!("{prefix}[{i}]"));
    }
}

/// `adder`: a `width`-bit ripple-carry adder (EPFL `adder` analogue).
pub fn adder(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("adder");
    let a = word_inputs(&mut aig, "a", width);
    let b = word_inputs(&mut aig, "b", width);
    let (sum, cout) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
    add_word_outputs(&mut aig, "sum", &sum);
    aig.add_output(cout, "cout");
    BenchCircuit::new("adder", aig)
}

/// `multiplier`: a `width x width` array multiplier.
pub fn multiplier(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("multiplier");
    let a = word_inputs(&mut aig, "a", width);
    let b = word_inputs(&mut aig, "b", width);
    let product = multiply(&mut aig, &a, &b);
    add_word_outputs(&mut aig, "p", &product);
    BenchCircuit::new("multiplier", aig)
}

/// `square`: a `width`-bit squarer.
pub fn square(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("square");
    let x = word_inputs(&mut aig, "x", width);
    let product = multiply(&mut aig, &x, &x);
    add_word_outputs(&mut aig, "sq", &product);
    BenchCircuit::new("square", aig)
}

/// Builds restoring division logic; returns `(quotient, remainder)`.
fn divide_words(aig: &mut Aig, dividend: &[Lit], divisor: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
    let width = dividend.len();
    let ext = width + 1;
    let divisor_ext = resize(divisor, ext);
    let mut remainder = vec![Lit::FALSE; ext];
    let mut quotient = vec![Lit::FALSE; width];
    for i in (0..width).rev() {
        // remainder = (remainder << 1) | dividend[i]
        let mut shifted = shift_left_const(&remainder, 1);
        shifted[0] = dividend[i];
        let fits = greater_equal(aig, &shifted, &divisor_ext);
        let (sub, _) = ripple_sub(aig, &shifted, &divisor_ext);
        remainder = mux_word(aig, fits, &sub, &shifted);
        quotient[i] = fits;
    }
    (quotient, resize(&remainder, width))
}

/// `div`: a restoring divider producing quotient and remainder.
pub fn divider(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("div");
    let a = word_inputs(&mut aig, "a", width);
    let b = word_inputs(&mut aig, "b", width);
    let (q, r) = divide_words(&mut aig, &a, &b);
    add_word_outputs(&mut aig, "q", &q);
    add_word_outputs(&mut aig, "r", &r);
    BenchCircuit::new("div", aig)
}

/// Builds integer square-root logic over a `width`-bit radicand, returning the
/// `ceil(width/2)`-bit root (restoring, bit-by-bit).
fn isqrt_word(aig: &mut Aig, x: &[Lit]) -> Vec<Lit> {
    let width = x.len();
    let root_width = width.div_ceil(2);
    let mut root = vec![Lit::FALSE; root_width];
    for i in (0..root_width).rev() {
        // candidate = root | (1 << i)
        let mut candidate = root.clone();
        candidate[i] = Lit::TRUE;
        // candidate^2 <= x ?
        let cand_sq = multiply(aig, &candidate, &candidate);
        let cand_sq = resize(&cand_sq, width + 1);
        let x_ext = resize(x, width + 1);
        let fits = greater_equal(aig, &x_ext, &cand_sq);
        root = mux_word(aig, fits, &candidate, &root);
    }
    root
}

/// `sqrt`: integer square root of a `width`-bit input.
pub fn square_root(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("sqrt");
    let x = word_inputs(&mut aig, "x", width);
    let root = isqrt_word(&mut aig, &x);
    add_word_outputs(&mut aig, "root", &root);
    BenchCircuit::new("sqrt", aig)
}

/// `hyp`: integer hypotenuse `floor(sqrt(x^2 + y^2))` (the largest circuit of
/// the suite, as in EPFL).
pub fn hypotenuse(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("hyp");
    let x = word_inputs(&mut aig, "x", width);
    let y = word_inputs(&mut aig, "y", width);
    let x2 = multiply(&mut aig, &x, &x);
    let y2 = multiply(&mut aig, &y, &y);
    let x2e = resize(&x2, 2 * width + 1);
    let y2e = resize(&y2, 2 * width + 1);
    let (sum, _) = ripple_add(&mut aig, &x2e, &y2e, Lit::FALSE);
    let root = isqrt_word(&mut aig, &sum);
    add_word_outputs(&mut aig, "hyp", &root);
    BenchCircuit::new("hyp", aig)
}

/// `log2`: leading-one position (integer log2) plus a normalized mantissa,
/// similar in character to the EPFL `log2` datapath.
pub fn log2(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("log2");
    let x = word_inputs(&mut aig, "x", width);
    // One-hot leading-one detector.
    let mut any_higher = Lit::FALSE;
    let mut onehot = vec![Lit::FALSE; width];
    for i in (0..width).rev() {
        onehot[i] = aig.and(x[i], any_higher.not());
        any_higher = aig.or(any_higher, x[i]);
    }
    // Binary encode the leading-one position.
    let exp_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut exponent = vec![Lit::FALSE; exp_bits.max(1)];
    for (i, &oh) in onehot.iter().enumerate() {
        for (bit, e) in exponent.iter_mut().enumerate() {
            if i >> bit & 1 == 1 {
                *e = aig.or(*e, oh);
            }
        }
    }
    // Normalized mantissa: shift x left so the leading one reaches the MSB
    // (one-hot controlled mux tree, i.e. a barrel shifter).
    let mut mantissa = vec![Lit::FALSE; width];
    for (i, &oh) in onehot.iter().enumerate() {
        let shifted = shift_left_const(&x, width - 1 - i);
        for (m, &s) in mantissa.iter_mut().zip(&shifted) {
            let selected = aig.and(oh, s);
            *m = aig.or(*m, selected);
        }
    }
    add_word_outputs(&mut aig, "exp", &exponent);
    add_word_outputs(&mut aig, "mant", &mantissa);
    aig.add_output(any_higher, "valid");
    BenchCircuit::new("log2", aig)
}

/// `sin`: a CORDIC sine datapath with `width` iterations on `width + 2`-bit
/// fixed-point words.
pub fn sine(width: usize) -> BenchCircuit {
    let mut aig = Aig::new("sin");
    let w = width + 2;
    let angle = word_inputs(&mut aig, "angle", width);
    // K scaled initial x (CORDIC gain compensated), y = 0, z = angle.
    let k_scaled = ((0.607_252_935 * f64::from(1u32 << (w as u32 - 2))) as u64).max(1);
    let mut x = constant_word(k_scaled, w);
    let mut y = vec![Lit::FALSE; w];
    let mut z = resize(&angle, w);
    for i in 0..width {
        // Rotation direction: sign of z (MSB as two's complement sign).
        let neg = z[w - 1];
        let x_shift = shift_right_const(&x, i);
        let y_shift = shift_right_const(&y, i);
        let atan = (f64::from(1u32 << (w as u32 - 2)) * (1.0 / f64::from(1u32 << i)).atan()) as u64;
        let atan_w = constant_word(atan, w);

        let (x_minus, _) = ripple_sub(&mut aig, &x, &y_shift);
        let (x_plus, _) = ripple_add(&mut aig, &x, &y_shift, Lit::FALSE);
        let (y_plus, _) = ripple_add(&mut aig, &y, &x_shift, Lit::FALSE);
        let (y_minus, _) = ripple_sub(&mut aig, &y, &x_shift);
        let (z_minus, _) = ripple_sub(&mut aig, &z, &atan_w);
        let (z_plus, _) = ripple_add(&mut aig, &z, &atan_w, Lit::FALSE);

        // If z >= 0 rotate one way, otherwise the other.
        x = mux_word(&mut aig, neg, &x_plus, &x_minus);
        y = mux_word(&mut aig, neg, &y_minus, &y_plus);
        z = mux_word(&mut aig, neg, &z_plus, &z_minus);
    }
    add_word_outputs(&mut aig, "sin", &y);
    BenchCircuit::new("sin", aig)
}

/// `arbiter`: a rotating-priority arbiter over `n` request lines.
pub fn arbiter(n: usize) -> BenchCircuit {
    let mut aig = Aig::new("arbiter");
    let req = word_inputs(&mut aig, "req", n);
    let ptr_bits = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(1);
    let ptr = word_inputs(&mut aig, "ptr", ptr_bits);
    let enable = aig.add_input("en");

    // Decode the priority pointer to one-hot.
    let mut start = Vec::with_capacity(n);
    for i in 0..n {
        let mut terms = Vec::new();
        for (b, &p) in ptr.iter().enumerate() {
            terms.push(if i >> b & 1 == 1 { p } else { p.not() });
        }
        start.push(aig.and_many(&terms));
    }

    // grant[i] = en & req[i] & "no earlier request in rotating order".
    let mut grants = Vec::with_capacity(n);
    for i in 0..n {
        // For every possible start position s, the requests with rotating
        // priority higher than i are s, s+1, ..., i-1 (mod n).
        let mut per_start = Vec::with_capacity(n);
        for (s, &start_s) in start.iter().enumerate() {
            let mut higher = Vec::new();
            let mut k = s;
            while k != i {
                higher.push(req[k].not());
                k = (k + 1) % n;
            }
            let none_higher = aig.and_many(&higher);
            per_start.push(aig.and(start_s, none_higher));
        }
        let selected = aig.or_many(&per_start);
        let with_req = aig.and(req[i], selected);
        grants.push(aig.and(with_req, enable));
    }
    let any = aig.or_many(&grants);
    add_word_outputs(&mut aig, "grant", &grants);
    aig.add_output(any, "any_grant");
    BenchCircuit::new("arbiter", aig)
}

/// `mem_ctrl`: a synthetic memory-controller combinational slice: bank
/// decoding, open-row hit detection, command arbitration and byte-mask
/// generation.
pub fn mem_ctrl(width: usize) -> BenchCircuit {
    const BANKS: usize = 4;
    let mut aig = Aig::new("mem_ctrl");
    let addr = word_inputs(&mut aig, "addr", width + 2);
    let we = aig.add_input("we");
    let re = aig.add_input("re");
    let refresh = aig.add_input("refresh");
    let burst = word_inputs(&mut aig, "burst", 3);
    let open_rows: Vec<Vec<Lit>> = (0..BANKS)
        .map(|b| word_inputs(&mut aig, &format!("open_row{b}"), width))
        .collect();
    let bank_busy = word_inputs(&mut aig, "busy", BANKS);

    // Bank select: low two address bits, decoded one-hot.
    let mut bank_sel = Vec::with_capacity(BANKS);
    for b in 0..BANKS {
        let b0 = if b & 1 == 1 { addr[0] } else { addr[0].not() };
        let b1 = if b >> 1 & 1 == 1 {
            addr[1]
        } else {
            addr[1].not()
        };
        bank_sel.push(aig.and(b0, b1));
    }
    // Row address and per-bank hit detection.
    let row = &addr[2..];
    let mut hits = Vec::with_capacity(BANKS);
    for b in 0..BANKS {
        let same = equal(&mut aig, row, &open_rows[b]);
        let not_busy = bank_busy[b].not();
        let sel_same = aig.and(bank_sel[b], same);
        hits.push(aig.and(sel_same, not_busy));
    }
    let hit = aig.or_many(&hits);

    // Command generation: refresh has priority, then read/write.
    let access = aig.or(we, re);
    let do_refresh = refresh;
    let refresh_blocked = do_refresh.not();
    let do_activate = {
        let miss = hit.not();
        let acc_miss = aig.and(access, miss);
        aig.and(acc_miss, refresh_blocked)
    };
    let do_rw = {
        let acc_hit = aig.and(access, hit);
        aig.and(acc_hit, refresh_blocked)
    };
    let write_cmd = aig.and(do_rw, we);
    let read_cmd = {
        let no_we = we.not();
        let t = aig.and(do_rw, re);
        aig.and(t, no_we)
    };

    // Byte-mask: thermometer code of the burst length over 8 beats.
    let mut mask = Vec::with_capacity(8);
    for beat in 0..8usize {
        let beat_word = constant_word(beat as u64, 3);
        let lt = greater_equal(&mut aig, &burst, &beat_word);
        mask.push(lt);
    }

    add_word_outputs(&mut aig, "bank_sel", &bank_sel);
    aig.add_output(hit, "row_hit");
    aig.add_output(do_activate, "cmd_activate");
    aig.add_output(read_cmd, "cmd_read");
    aig.add_output(write_cmd, "cmd_write");
    aig.add_output(do_refresh, "cmd_refresh");
    add_word_outputs(&mut aig, "mask", &mask);
    BenchCircuit::new("mem_ctrl", aig)
}

/// `router`: an `ports × ports` crossbar router over `width`-bit words.
/// Every output port owns a select address choosing which input port it
/// reads; the routed word is gated by the selected port's valid bit. The
/// per-port mux trees share the input words, giving the wide, shallow,
/// reconvergence-rich structure interconnect fabrics are known for.
pub fn crossbar(ports: usize, width: usize) -> BenchCircuit {
    assert!(ports >= 2, "a crossbar needs at least two ports");
    let mut aig = Aig::new("router");
    let data: Vec<Vec<Lit>> = (0..ports)
        .map(|p| word_inputs(&mut aig, &format!("d{p}"), width))
        .collect();
    let valid = word_inputs(&mut aig, "valid", ports);
    let sel_bits = (usize::BITS as usize - (ports - 1).leading_zeros() as usize).max(1);
    let slots = 1usize << sel_bits;
    for o in 0..ports {
        let sel = word_inputs(&mut aig, &format!("sel{o}"), sel_bits);
        // Mux tree over the input ports; unpopulated slots read as zero
        // words with the valid bit low.
        let mut words: Vec<Vec<Lit>> = (0..slots)
            .map(|i| {
                if i < ports {
                    data[i].clone()
                } else {
                    constant_word(0, width)
                }
            })
            .collect();
        let mut valids: Vec<Lit> = (0..slots)
            .map(|i| if i < ports { valid[i] } else { Lit::FALSE })
            .collect();
        for &s in &sel {
            words = words
                .chunks(2)
                .map(|pair| mux_word(&mut aig, s, &pair[1], &pair[0]))
                .collect();
            valids = valids
                .chunks(2)
                .map(|pair| aig.mux(s, pair[1], pair[0]))
                .collect();
        }
        let routed = &words[0];
        let ok = valids[0];
        let gated: Vec<Lit> = routed.iter().map(|&bit| aig.and(bit, ok)).collect();
        add_word_outputs(&mut aig, &format!("out{o}"), &gated);
        aig.add_output(ok, format!("out_valid{o}"));
    }
    BenchCircuit::new("router", aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn divider_matches_integer_division() {
        let width = 5;
        let circuit = divider(width).aig;
        for a in [0u64, 1, 7, 13, 25, 31] {
            for b in [1u64, 2, 3, 7, 15, 31] {
                let mut inputs = to_bits(a, width);
                inputs.extend(to_bits(b, width));
                let out = circuit.evaluate(&inputs);
                let q = from_bits(&out[..width]);
                let r = from_bits(&out[width..2 * width]);
                assert_eq!(q, a / b, "{a}/{b}");
                assert_eq!(r, a % b, "{a}%{b}");
            }
        }
    }

    #[test]
    fn sqrt_matches_integer_square_root() {
        let width = 8;
        let circuit = square_root(width).aig;
        for x in [0u64, 1, 2, 3, 4, 8, 15, 16, 17, 63, 64, 100, 200, 255] {
            let out = circuit.evaluate(&to_bits(x, width));
            let root = from_bits(&out);
            let expected = (x as f64).sqrt().floor() as u64;
            assert_eq!(root, expected, "sqrt({x})");
        }
    }

    #[test]
    fn hypotenuse_matches_reference() {
        let width = 4;
        let circuit = hypotenuse(width).aig;
        for x in [0u64, 3, 5, 12, 15] {
            for y in [0u64, 4, 9, 15] {
                let mut inputs = to_bits(x, width);
                inputs.extend(to_bits(y, width));
                let out = circuit.evaluate(&inputs);
                let expected = ((x * x + y * y) as f64).sqrt().floor() as u64;
                assert_eq!(from_bits(&out), expected, "hyp({x},{y})");
            }
        }
    }

    #[test]
    fn log2_exponent_is_leading_one_position() {
        let width = 8;
        let circuit = log2(width).aig;
        for x in [1u64, 2, 3, 4, 7, 8, 100, 128, 200, 255] {
            let out = circuit.evaluate(&to_bits(x, width));
            let exp_bits = 3;
            let exponent = from_bits(&out[..exp_bits]);
            assert_eq!(exponent, 63 - x.leading_zeros() as u64, "log2({x})");
            // Validity flag is the last output.
            assert!(out[out.len() - 1]);
        }
        let zero_out = circuit.evaluate(&to_bits(0, width));
        assert!(!zero_out[zero_out.len() - 1]);
    }

    #[test]
    fn multiplier_and_square_consistent() {
        let width = 5;
        let mul = multiplier(width).aig;
        let sq = square(width).aig;
        for x in [0u64, 1, 5, 19, 31] {
            let mut mul_in = to_bits(x, width);
            mul_in.extend(to_bits(x, width));
            let m = from_bits(&mul.evaluate(&mul_in));
            let s = from_bits(&sq.evaluate(&to_bits(x, width)));
            assert_eq!(m, x * x);
            assert_eq!(s, x * x);
        }
    }

    #[test]
    fn arbiter_grants_exactly_one_active_request() {
        let n = 8;
        let circuit = arbiter(n).aig;
        // Inputs: req[n], ptr[3], en.
        for req in [0b0000_0001u64, 0b1001_0010, 0b1111_1111, 0b0000_0000] {
            for ptr in [0u64, 3, 7] {
                let mut inputs = to_bits(req, n);
                inputs.extend(to_bits(ptr, 3));
                inputs.push(true);
                let out = circuit.evaluate(&inputs);
                let grants = &out[..n];
                let granted = grants.iter().filter(|&&g| g).count();
                if req == 0 {
                    assert_eq!(granted, 0);
                    assert!(!out[n]);
                } else {
                    assert_eq!(granted, 1, "req={req:b} ptr={ptr}");
                    let idx = grants.iter().position(|&g| g).unwrap();
                    assert!(req >> idx & 1 == 1, "granted a non-requesting line");
                    assert!(out[n]);
                }
            }
        }
        // Disabled arbiter grants nothing.
        let mut inputs = to_bits(0xFF, n);
        inputs.extend(to_bits(0, 3));
        inputs.push(false);
        let out = circuit.evaluate(&inputs);
        assert!(out[..n].iter().all(|&g| !g));
    }

    #[test]
    fn arbiter_respects_rotating_priority() {
        let n = 4;
        let circuit = arbiter(n).aig;
        // All requests active: the grant must go to the pointer position.
        for ptr in 0..4u64 {
            let mut inputs = to_bits(0b1111, n);
            inputs.extend(to_bits(ptr, 2));
            inputs.push(true);
            let out = circuit.evaluate(&inputs);
            let idx = out[..n].iter().position(|&g| g).unwrap();
            assert_eq!(idx as u64, ptr);
        }
    }

    #[test]
    fn mem_ctrl_hit_and_command_logic() {
        let width = 6;
        let circuit = mem_ctrl(width).aig;
        let banks = 4;
        // Build an input vector: addr, we, re, refresh, burst, open_rows, busy.
        let build = |addr: u64,
                     we: bool,
                     re: bool,
                     refresh: bool,
                     burst: u64,
                     rows: [u64; 4],
                     busy: u64| {
            let mut v = to_bits(addr, width + 2);
            v.push(we);
            v.push(re);
            v.push(refresh);
            v.extend(to_bits(burst, 3));
            for row in rows {
                v.extend(to_bits(row, width));
            }
            v.extend(to_bits(busy, banks));
            v
        };
        // A read to bank 1 whose open row matches -> row_hit, cmd_read.
        let addr = 0b01 | (0b1010 << 2); // bank 1, row 0b1010
        let rows = [0, 0b1010, 0, 0];
        let out = circuit.evaluate(&build(addr, false, true, false, 3, rows, 0));
        let hit_idx = banks; // after bank_sel outputs
        assert!(out[hit_idx], "row hit expected");
        assert!(out[hit_idx + 2], "cmd_read expected");
        assert!(!out[hit_idx + 1], "no activate on hit");
        // Same access with refresh asserted: refresh wins.
        let out = circuit.evaluate(&build(addr, false, true, true, 3, rows, 0));
        assert!(out[hit_idx + 4], "cmd_refresh expected");
        assert!(!out[hit_idx + 2], "read suppressed by refresh");
        // Row miss -> activate.
        let rows_miss = [0, 0b0001, 0, 0];
        let out = circuit.evaluate(&build(addr, false, true, false, 3, rows_miss, 0));
        assert!(out[hit_idx + 1], "activate on miss");
    }

    #[test]
    fn sine_output_is_plausible() {
        let width = 6;
        let circuit = sine(width).aig;
        // angle = 0 should give a sine close to 0 (small magnitude).
        let out = circuit.evaluate(&to_bits(0, width));
        let w = width + 2;
        let value = from_bits(&out[..w]);
        // Interpret as two's complement.
        let signed = if value >> (w - 1) & 1 == 1 {
            value as i64 - (1i64 << w)
        } else {
            value as i64
        };
        assert!(
            signed.abs() <= 4,
            "sin(0) should be near zero, got {signed}"
        );
        // A clearly positive angle gives a positive sine larger than sin(0).
        let quarter = 1u64 << (w - 3);
        let out = circuit.evaluate(&to_bits(quarter, width));
        let value = from_bits(&out[..w]) as i64;
        assert!(
            value > signed.abs(),
            "sin(positive angle) should be positive"
        );
    }

    #[test]
    fn generators_scale_with_width() {
        assert!(multiplier(12).aig.num_ands() > multiplier(6).aig.num_ands());
        assert!(divider(12).aig.num_ands() > divider(6).aig.num_ands());
        assert!(adder(32).aig.num_ands() > adder(8).aig.num_ands());
        assert!(arbiter(16).aig.num_ands() > arbiter(4).aig.num_ands());
        assert!(crossbar(8, 8).aig.num_ands() > crossbar(4, 4).aig.num_ands());
    }

    #[test]
    fn crossbar_routes_selected_port() {
        // 4 ports × 2 bits: output port 0 reads the port its select names,
        // gated by that port's valid bit.
        let circuit = crossbar(4, 2);
        let aig = &circuit.aig;
        let out0 = aig
            .output_names()
            .iter()
            .position(|n| n == "out0[0]")
            .unwrap();
        let out_valid0 = aig
            .output_names()
            .iter()
            .position(|n| n == "out_valid0")
            .unwrap();
        let set = |names: &[(&str, bool)]| -> Vec<bool> {
            let mut inputs = vec![false; aig.num_inputs()];
            for (name, value) in names {
                let pos = aig.input_names().iter().position(|n| n == name).unwrap();
                inputs[pos] = *value;
            }
            inputs
        };
        // sel0 = 2 (binary 10), port 2 valid, d2 = 0b01.
        let outs = aig.evaluate(&set(&[
            ("sel0[1]", true),
            ("valid[2]", true),
            ("d2[0]", true),
        ]));
        assert!(outs[out0], "bit 0 of port 2 must route to out0");
        assert!(outs[out_valid0]);
        // Same route with the valid bit low: gated to zero.
        let outs = aig.evaluate(&set(&[("sel0[1]", true), ("d2[0]", true)]));
        assert!(!outs[out0]);
        assert!(!outs[out_valid0]);
    }
}
