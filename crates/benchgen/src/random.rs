//! Random AIG generation for property-based testing.

use aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a pseudo-random combinational AIG with the given number of
/// primary inputs and approximately `num_ands` AND gates, deterministically
/// from `seed`.
///
/// The generator draws fanins from the already-created nodes with random
/// complementation, so the result is always acyclic and structurally hashed.
pub fn random_aig(num_inputs: usize, num_ands: usize, num_outputs: usize, seed: u64) -> Aig {
    assert!(num_inputs >= 1, "at least one input is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new(format!("random_{seed}"));
    let mut pool: Vec<Lit> = (0..num_inputs)
        .map(|i| aig.add_input(format!("i{i}")))
        .collect();
    for _ in 0..num_ands {
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let a = a.xor(rng.random_bool(0.5));
        let b = b.xor(rng.random_bool(0.5));
        let lit = aig.and(a, b);
        pool.push(lit);
    }
    let outputs = num_outputs.max(1);
    for o in 0..outputs {
        // Prefer recently created (deeper) nodes as outputs.
        let idx = if pool.len() > 8 {
            rng.random_range(pool.len() / 2..pool.len())
        } else {
            rng.random_range(0..pool.len())
        };
        let lit = pool[idx].xor(rng.random_bool(0.5));
        aig.add_output(lit, format!("o{o}"));
    }
    aig.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_aig(8, 100, 4, 42);
        let b = random_aig(8, 100, 4, 42);
        let c = random_aig(8, 100, 4, 43);
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.num_inputs(), b.num_inputs());
        // Different seeds give (almost surely) different structures.
        assert!(
            a.num_ands() != c.num_ands() || a.depth() != c.depth() || {
                let x = a.evaluate(&[true; 8]);
                let y = c.evaluate(&[true; 8]);
                x != y
            }
        );
    }

    #[test]
    fn respects_requested_interface() {
        let aig = random_aig(5, 50, 3, 7);
        assert_eq!(aig.num_inputs(), 5);
        assert_eq!(aig.num_outputs(), 3);
        assert!(aig.num_ands() <= 50);
        assert!(aig.num_ands() > 0);
    }

    #[test]
    fn evaluation_is_well_defined() {
        let aig = random_aig(6, 80, 4, 11);
        let out = aig.evaluate(&[true, false, true, false, true, false]);
        assert_eq!(out.len(), 4);
    }
}
