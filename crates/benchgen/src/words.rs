//! Word-level arithmetic building blocks over vectors of AIG literals.
//!
//! All words are little-endian: index 0 is the least-significant bit.

use aig::{Aig, Lit};

/// Adds two equal-width words, returning the sum bits and the carry-out.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "ripple_add requires equal widths");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for i in 0..a.len() {
        let axb = aig.xor(a[i], b[i]);
        sum.push(aig.xor(axb, carry));
        carry = aig.maj3(a[i], b[i], carry);
    }
    (sum, carry)
}

/// Subtracts `b` from `a` (two's complement), returning the difference and a
/// borrow flag that is true when `a < b`.
pub fn ripple_sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|l| l.not()).collect();
    let (diff, carry) = ripple_add(aig, a, &nb, Lit::TRUE);
    (diff, carry.not())
}

/// Two's-complement negation of a word.
pub fn negate(aig: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    let zeros = vec![Lit::FALSE; a.len()];
    let (diff, _) = ripple_sub(aig, &zeros, a);
    diff
}

/// Bitwise multiplexer between two words: `sel ? t : e`.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len());
    t.iter()
        .zip(e)
        .map(|(&ti, &ei)| aig.mux(sel, ti, ei))
        .collect()
}

/// Unsigned comparison `a >= b`.
pub fn greater_equal(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, borrow) = ripple_sub(aig, a, b);
    borrow.not()
}

/// Equality comparison of two words.
pub fn equal(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len());
    let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_many(&bits)
}

/// Shifts a word left by a constant amount, dropping overflowing bits.
pub fn shift_left_const(a: &[Lit], amount: usize) -> Vec<Lit> {
    let mut out = vec![Lit::FALSE; a.len()];
    for (i, &bit) in a.iter().enumerate() {
        if i + amount < a.len() {
            out[i + amount] = bit;
        }
    }
    out
}

/// Shifts a word right by a constant amount (logical).
pub fn shift_right_const(a: &[Lit], amount: usize) -> Vec<Lit> {
    let mut out = vec![Lit::FALSE; a.len()];
    if amount < a.len() {
        out[..a.len() - amount].copy_from_slice(&a[amount..]);
    }
    out
}

/// Multiplies two words (array multiplier), returning a product of width
/// `a.len() + b.len()`.
pub fn multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len() + b.len();
    let mut acc: Vec<Lit> = vec![Lit::FALSE; width];
    for (j, &bj) in b.iter().enumerate() {
        // Partial product: (a & bj) << j, extended to full width.
        let mut partial = vec![Lit::FALSE; width];
        for (i, &ai) in a.iter().enumerate() {
            partial[i + j] = aig.and(ai, bj);
        }
        let (sum, _) = ripple_add(aig, &acc, &partial, Lit::FALSE);
        acc = sum;
    }
    acc
}

/// Zero-extends or truncates a word to the given width.
pub fn resize(a: &[Lit], width: usize) -> Vec<Lit> {
    let mut out = a.to_vec();
    out.resize(width, Lit::FALSE);
    out.truncate(width);
    out
}

/// Converts a constant integer into a word of literals.
pub fn constant_word(value: u64, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if value >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_inputs(aig: &mut Aig, prefix: &str, width: usize) -> Vec<Lit> {
        (0..width)
            .map(|i| aig.add_input(format!("{prefix}{i}")))
            .collect()
    }

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_matches_integer_addition() {
        let width = 5;
        let mut aig = Aig::new("add");
        let a = word_inputs(&mut aig, "a", width);
        let b = word_inputs(&mut aig, "b", width);
        let (sum, cout) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
        for &s in &sum {
            aig.add_output(s, "s");
        }
        aig.add_output(cout, "cout");
        for x in [0u64, 1, 7, 13, 31] {
            for y in [0u64, 2, 15, 30, 31] {
                let mut inputs = to_bits(x, width);
                inputs.extend(to_bits(y, width));
                let out = aig.evaluate(&inputs);
                let total = from_bits(&out[..width]) + ((out[width] as u64) << width);
                assert_eq!(total, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtractor_and_comparison() {
        let width = 4;
        let mut aig = Aig::new("sub");
        let a = word_inputs(&mut aig, "a", width);
        let b = word_inputs(&mut aig, "b", width);
        let (diff, borrow) = ripple_sub(&mut aig, &a, &b);
        let ge = greater_equal(&mut aig, &a, &b);
        let eq = equal(&mut aig, &a, &b);
        for &d in &diff {
            aig.add_output(d, "d");
        }
        aig.add_output(borrow, "borrow");
        aig.add_output(ge, "ge");
        aig.add_output(eq, "eq");
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = to_bits(x, width);
                inputs.extend(to_bits(y, width));
                let out = aig.evaluate(&inputs);
                let diff_val = from_bits(&out[..width]);
                assert_eq!(diff_val, x.wrapping_sub(y) & 0xF, "{x}-{y}");
                assert_eq!(out[width], x < y, "borrow {x} {y}");
                assert_eq!(out[width + 1], x >= y, "ge {x} {y}");
                assert_eq!(out[width + 2], x == y, "eq {x} {y}");
            }
        }
    }

    #[test]
    fn multiplier_matches_integer_multiplication() {
        let width = 4;
        let mut aig = Aig::new("mul");
        let a = word_inputs(&mut aig, "a", width);
        let b = word_inputs(&mut aig, "b", width);
        let product = multiply(&mut aig, &a, &b);
        for &p in &product {
            aig.add_output(p, "p");
        }
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = to_bits(x, width);
                inputs.extend(to_bits(y, width));
                let out = aig.evaluate(&inputs);
                assert_eq!(from_bits(&out), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn constant_shift_and_mux_words() {
        let width = 6;
        let mut aig = Aig::new("misc");
        let a = word_inputs(&mut aig, "a", width);
        let sel = aig.add_input("sel");
        let shifted = shift_left_const(&a, 2);
        let muxed = mux_word(&mut aig, sel, &shifted, &a);
        for &m in &muxed {
            aig.add_output(m, "m");
        }
        for value in [0u64, 1, 5, 21, 63] {
            for s in [false, true] {
                let mut inputs = to_bits(value, width);
                inputs.push(s);
                let out = aig.evaluate(&inputs);
                let expect = if s { (value << 2) & 0x3F } else { value };
                assert_eq!(from_bits(&out), expect);
            }
        }
    }

    #[test]
    fn negate_is_twos_complement() {
        let width = 4;
        let mut aig = Aig::new("neg");
        let a = word_inputs(&mut aig, "a", width);
        let n = negate(&mut aig, &a);
        for &bit in &n {
            aig.add_output(bit, "n");
        }
        for x in 0..16u64 {
            let out = aig.evaluate(&to_bits(x, width));
            assert_eq!(from_bits(&out), x.wrapping_neg() & 0xF, "-{x}");
        }
    }

    #[test]
    fn constant_word_roundtrip() {
        let w = constant_word(0b1011, 6);
        assert_eq!(w.len(), 6);
        assert_eq!(w[0], Lit::TRUE);
        assert_eq!(w[1], Lit::TRUE);
        assert_eq!(w[2], Lit::FALSE);
        assert_eq!(w[3], Lit::TRUE);
        assert_eq!(w[4], Lit::FALSE);
        assert_eq!(resize(&w, 3).len(), 3);
        assert_eq!(resize(&w, 8).len(), 8);
    }
}
