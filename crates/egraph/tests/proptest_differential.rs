//! Differential property tests.
//!
//! 1. The incremental worklist rebuild ([`EGraph::rebuild`]) must agree with
//!    the retained whole-graph reference rebuild
//!    ([`EGraph::rebuild_reference`]) on every observable outcome — class
//!    partitions, canonical node forms, and union counts — under random
//!    interleavings of `add`, `union` and `rebuild`.
//! 2. The [`Runner`]'s parallel sharded search must be *bit-identical* to the
//!    serial path: identical per-iteration reports (matches applied,
//!    `search_complete`, node/class counts), stop reasons, and final class
//!    partitions for every thread count, across randomized rule sets and
//!    match budgets.
//!
//! Run with `PROPTEST_CASES=5000` (or higher) for the PR gate.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
// The deprecated string-typed `check_invariants` shim stays the reference
// oracle for these differential tests; `audit` carries the typed rules.
#![allow(deprecated)]

use egraph::{EGraph, FxHashMap, Id, Language, Rewrite, Runner, Scheduler, SymbolLang};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Leaf(u8),
    Node(u8, usize, usize),
    Union(usize, usize),
    Rebuild,
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..6).prop_map(Op::Leaf),
        (0u8..4, 0usize..1000, 0usize..1000).prop_map(|(o, a, b)| Op::Node(o, a, b)),
        (0usize..1000, 0usize..1000).prop_map(|(a, b)| Op::Union(a, b)),
        Just(Op::Rebuild),
    ];
    proptest::collection::vec(op, 5..120)
}

/// Replays a workload, rebuilding either incrementally or with the reference
/// whole-graph passes at every `Rebuild` op and once at the end. Returns the
/// final graph and the id returned by each add, in op order.
fn apply(ops: &[Op], reference: bool) -> (EGraph<SymbolLang>, Vec<Id>) {
    let mut egraph: EGraph<SymbolLang> = EGraph::new();
    let mut ids: Vec<Id> = vec![egraph.add(SymbolLang::leaf("seed"))];
    let rebuild = |eg: &mut EGraph<SymbolLang>| {
        if reference {
            eg.rebuild_reference()
        } else {
            eg.rebuild()
        }
    };
    for op in ops {
        match op {
            Op::Leaf(l) => ids.push(egraph.add(SymbolLang::leaf(format!("v{l}")))),
            Op::Node(o, a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                ids.push(egraph.add(SymbolLang::new(format!("f{o}"), vec![a, b])));
            }
            Op::Union(a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                egraph.union(a, b);
            }
            Op::Rebuild => {
                rebuild(&mut egraph);
            }
        }
    }
    rebuild(&mut egraph);
    (egraph, ids)
}

/// Renumbers the canonical classes of `ids` by first occurrence, giving an
/// implementation-independent name for every class (representative ids may
/// legitimately differ between the two rebuild strategies).
fn renumber(egraph: &EGraph<SymbolLang>, ids: &[Id]) -> (FxHashMap<Id, usize>, Vec<usize>) {
    let mut map: FxHashMap<Id, usize> = FxHashMap::default();
    let mut sequence = Vec::with_capacity(ids.len());
    for &id in ids {
        let canon = egraph.find(id);
        let next = map.len();
        let index = *map.entry(canon).or_insert(next);
        sequence.push(index);
    }
    (map, sequence)
}

/// The canonical forms of every class, with classes and children renamed via
/// the first-occurrence numbering: a representation two isomorphic e-graphs
/// must agree on exactly.
fn class_signatures(
    egraph: &EGraph<SymbolLang>,
    numbering: &FxHashMap<Id, usize>,
) -> BTreeMap<usize, Vec<(String, Vec<usize>)>> {
    let mut out = BTreeMap::new();
    for class in egraph.classes() {
        let index = *numbering
            .get(&class.id)
            .expect("every class is the find() of some tracked add");
        let mut nodes: Vec<(String, Vec<usize>)> = class
            .iter()
            .map(|node| {
                let children = node
                    .children()
                    .iter()
                    .map(|&c| numbering[&egraph.find(c)])
                    .collect();
                (node.op_str(), children)
            })
            .collect();
        nodes.sort();
        out.insert(index, nodes);
    }
    out
}

/// The pool of rewrite rules the runner differential draws from. SymbolLang
/// attaches no semantics, so any structurally well-formed rule is fair game;
/// the mix covers growing rules (commutativity, associativity,
/// distribution), collapsing rules, and cross-operator rules.
fn rule_pool() -> Vec<Rewrite<SymbolLang>> {
    vec![
        Rewrite::parse("comm-f0", "(f0 ?a ?b)", "(f0 ?b ?a)").unwrap(),
        Rewrite::parse("comm-f1", "(f1 ?a ?b)", "(f1 ?b ?a)").unwrap(),
        Rewrite::parse("assoc-f0", "(f0 (f0 ?a ?b) ?c)", "(f0 ?a (f0 ?b ?c))").unwrap(),
        Rewrite::parse("assoc-f1", "(f1 ?a (f1 ?b ?c))", "(f1 (f1 ?a ?b) ?c)").unwrap(),
        Rewrite::parse("dist", "(f0 (f1 ?a ?b) ?c)", "(f1 (f0 ?a ?c) (f0 ?b ?c))").unwrap(),
        Rewrite::parse("fuse", "(f2 ?a ?b)", "(f0 ?a ?b)").unwrap(),
        Rewrite::parse("collapse", "(f3 ?a ?a)", "?a").unwrap(),
        Rewrite::parse("wrap", "(f3 ?a ?b)", "(f3 (f2 ?a ?b) (f2 ?a ?b))").unwrap(),
    ]
}

/// Everything a saturation run observes, minus wall-clock times: used to
/// compare a serial and a parallel run for bit-identical behavior. Unlike
/// the rebuild differential above, no renumbering is needed — bit-identical
/// runs perform the same unions in the same order, so even the raw class ids
/// must coincide.
/// `(iteration, nodes, classes, applied, rebuild_unions, search_complete)`
type IterationSig = (usize, usize, usize, Vec<(String, usize)>, usize, bool);

#[derive(Debug, PartialEq)]
struct RunSignature {
    stop_reason: egraph::StopReason,
    iterations: Vec<IterationSig>,
    /// `find()` of every tracked add, by raw id.
    partitions: Vec<Id>,
    /// Raw class id → sorted canonical node forms.
    classes: BTreeMap<usize, Vec<(String, Vec<usize>)>>,
    total_nodes: usize,
    num_unions: usize,
}

fn run_signature(
    ops: &[Op],
    rules: &[Rewrite<SymbolLang>],
    threads: usize,
    iter_limit: usize,
    match_limit: usize,
    ban_length: usize,
) -> RunSignature {
    let (egraph, ids) = apply(ops, false);
    let runner = Runner::with_egraph(egraph)
        .with_iter_limit(iter_limit)
        .with_node_limit(3_000)
        .with_scheduler(Scheduler::Backoff {
            match_limit,
            ban_length,
        })
        .with_search_threads(threads)
        .run(rules);
    let iterations = runner
        .iterations
        .iter()
        .map(|it| {
            (
                it.iteration,
                it.egraph_nodes,
                it.egraph_classes,
                it.applied.clone(),
                it.rebuild_unions,
                it.search_complete,
            )
        })
        .collect();
    let partitions = ids.iter().map(|&id| runner.egraph.find(id)).collect();
    let mut classes: BTreeMap<usize, Vec<(String, Vec<usize>)>> = BTreeMap::new();
    for class in runner.egraph.classes() {
        let mut nodes: Vec<(String, Vec<usize>)> = class
            .iter()
            .map(|node| {
                let children = node
                    .children()
                    .iter()
                    .map(|&c| runner.egraph.find(c).index())
                    .collect();
                (node.op_str(), children)
            })
            .collect();
        nodes.sort();
        classes.insert(class.id.index(), nodes);
    }
    RunSignature {
        stop_reason: runner.stop_reason.expect("run sets a stop reason"),
        iterations,
        partitions,
        classes,
        total_nodes: runner.egraph.total_nodes(),
        num_unions: runner.egraph.num_unions(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The headline differential property: identical canonical forms, class
    /// partitions and union counts between the two rebuild strategies.
    #[test]
    fn incremental_rebuild_matches_reference(ops in workload()) {
        let (inc, inc_ids) = apply(&ops, false);
        let (refe, ref_ids) = apply(&ops, true);

        prop_assert_eq!(inc_ids.len(), ref_ids.len());
        prop_assert_eq!(inc.num_classes(), refe.num_classes(), "class counts diverge");
        prop_assert_eq!(inc.total_nodes(), refe.total_nodes(), "node counts diverge");
        prop_assert_eq!(inc.num_unions(), refe.num_unions(), "union counts diverge");

        // Identical partitions of the tracked ids...
        let (inc_map, inc_seq) = renumber(&inc, &inc_ids);
        let (ref_map, ref_seq) = renumber(&refe, &ref_ids);
        prop_assert_eq!(&inc_seq, &ref_seq, "class partitions diverge");
        // ...and identical canonical node forms class by class.
        prop_assert_eq!(
            class_signatures(&inc, &inc_map),
            class_signatures(&refe, &ref_map),
            "canonical forms diverge"
        );

        inc.check_invariants().map_err(|e| TestCaseError(format!("incremental: {e}")))?;
        refe.check_invariants().map_err(|e| TestCaseError(format!("reference: {e}")))?;
    }

    /// An incremental rebuild after a reference rebuild (and vice versa) on
    /// the *same* graph is a no-op: the two strategies restore the same
    /// invariant state, not merely isomorphic ones.
    #[test]
    fn strategies_interchange_on_one_graph(ops in workload()) {
        let (mut egraph, _) = apply(&ops, false);
        prop_assert_eq!(egraph.rebuild_reference(), 0);
        prop_assert_eq!(egraph.rebuild(), 0);
        egraph.check_invariants().map_err(TestCaseError)?;

        let (mut egraph, _) = apply(&ops, true);
        prop_assert_eq!(egraph.rebuild(), 0);
        prop_assert_eq!(egraph.rebuild_reference(), 0);
        egraph.check_invariants().map_err(TestCaseError)?;
    }

    /// The parallel-search differential: sharded search on 2 and 4 worker
    /// threads is bit-identical to the serial path — same matches applied,
    /// same `IterationReport`s (modulo wall-clock), same stop reason, and
    /// the same final e-graph down to raw class ids — across randomized
    /// starting graphs, rule subsets, match budgets and ban lengths.
    #[test]
    fn parallel_search_matches_serial(
        ops in workload(),
        mask in proptest::collection::vec(any::<bool>(), 8),
        iter_limit in 2usize..5,
        match_limit in 4usize..64,
        ban_length in 0usize..3,
    ) {
        let mut rules: Vec<Rewrite<SymbolLang>> = rule_pool()
            .into_iter()
            .zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(rule, _)| rule)
            .collect();
        if rules.is_empty() {
            // An all-false mask still exercises the single-rule path.
            rules = rule_pool().into_iter().take(1).collect();
        }
        let serial = run_signature(&ops, &rules, 1, iter_limit, match_limit, ban_length);
        for threads in [2usize, 4] {
            let parallel = run_signature(&ops, &rules, threads, iter_limit, match_limit, ban_length);
            prop_assert_eq!(&serial, &parallel, "{} search threads diverged from serial", threads);
        }
    }

    /// Interleaving the strategies op-by-op (alternating which one handles
    /// each rebuild point) still converges to the same invariant state.
    #[test]
    fn alternating_strategies_preserve_invariants(ops in workload()) {
        let mut egraph: EGraph<SymbolLang> = EGraph::new();
        let mut ids: Vec<Id> = vec![egraph.add(SymbolLang::leaf("seed"))];
        let mut flip = false;
        for op in &ops {
            match op {
                Op::Leaf(l) => ids.push(egraph.add(SymbolLang::leaf(format!("v{l}")))),
                Op::Node(o, a, b) => {
                    let a = ids[a % ids.len()];
                    let b = ids[b % ids.len()];
                    ids.push(egraph.add(SymbolLang::new(format!("f{o}"), vec![a, b])));
                }
                Op::Union(a, b) => {
                    let a = ids[a % ids.len()];
                    let b = ids[b % ids.len()];
                    egraph.union(a, b);
                }
                Op::Rebuild => {
                    if flip {
                        egraph.rebuild_reference();
                    } else {
                        egraph.rebuild();
                    }
                    flip = !flip;
                    egraph.check_invariants().map_err(TestCaseError)?;
                }
            }
        }
        egraph.rebuild();
        egraph.check_invariants().map_err(TestCaseError)?;
    }
}
