//! Property-based tests of the e-graph engine: congruence-closure invariants
//! under random add/union workloads, agreement of the incrementally
//! maintained parent lists with a from-scratch scan, and soundness of
//! rewriting/extraction.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
// The deprecated string-typed `check_invariants` shim stays the reference
// oracle for these differential tests; `audit` carries the typed rules.
#![allow(deprecated)]

use egraph::{
    AstSize, EGraph, Extractor, FxHashMap, Id, Language, RecExpr, Rewrite, Runner, SymbolLang,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Leaf(u8),
    Node(u8, usize, usize),
    Union(usize, usize),
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..6).prop_map(Op::Leaf),
        (0u8..4, 0usize..1000, 0usize..1000).prop_map(|(o, a, b)| Op::Node(o, a, b)),
        (0usize..1000, 0usize..1000).prop_map(|(a, b)| Op::Union(a, b)),
    ];
    proptest::collection::vec(op, 5..80)
}

fn apply(ops: &[Op]) -> (EGraph<SymbolLang>, Vec<Id>) {
    let mut egraph: EGraph<SymbolLang> = EGraph::new();
    let mut ids: Vec<Id> = vec![egraph.add(SymbolLang::leaf("seed"))];
    for op in ops {
        match op {
            Op::Leaf(l) => ids.push(egraph.add(SymbolLang::leaf(format!("v{l}")))),
            Op::Node(o, a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                ids.push(egraph.add(SymbolLang::new(format!("f{o}"), vec![a, b])));
            }
            Op::Union(a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                egraph.union(a, b);
            }
        }
    }
    (egraph, ids)
}

/// Builds the parent index the slow, obviously-correct way: a full scan of
/// every class's (canonical) node list. [`EGraph::parent_index`] instead
/// canonicalizes the per-class parent lists the e-graph maintains on
/// `add`/`union`; the two must agree on a clean graph.
fn scan_parent_index(egraph: &EGraph<SymbolLang>) -> FxHashMap<Id, Vec<(Id, SymbolLang)>> {
    let mut parents: FxHashMap<Id, Vec<(Id, SymbolLang)>> = FxHashMap::default();
    for class in egraph.classes() {
        for node in class.iter() {
            for &child in node.children() {
                parents
                    .entry(egraph.find(child))
                    .or_default()
                    .push((class.id, node.clone()));
            }
        }
    }
    for list in parents.values_mut() {
        list.sort_unstable();
        list.dedup();
    }
    parents
}

fn assert_parent_index_agrees(egraph: &EGraph<SymbolLang>) -> Result<(), TestCaseError> {
    let mut incremental = egraph.parent_index();
    for list in incremental.values_mut() {
        list.sort_unstable();
    }
    let scanned = scan_parent_index(egraph);
    prop_assert_eq!(
        incremental,
        scanned,
        "incrementally maintained parent lists diverge from a full scan"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rebuild_restores_invariants(ops in workload()) {
        let (mut egraph, ids) = apply(&ops);
        egraph.rebuild();
        prop_assert!(egraph.check_invariants().is_ok(), "{:?}", egraph.check_invariants());
        // find() of every id stays within the graph and is canonical.
        for &id in &ids {
            let root = egraph.find(id);
            prop_assert_eq!(egraph.find(root), root);
            prop_assert!(egraph.get_class(root).is_some());
        }
        assert_parent_index_agrees(&egraph)?;
    }

    /// Randomized saturation runs: the invariants (and the parent-list /
    /// full-scan agreement) must hold after *every* rebuild, not only at the
    /// end of the run.
    #[test]
    fn invariants_hold_after_every_rebuild_during_saturation(
        depth in 1usize..5,
        seed in 0u64..500,
        iters in 1usize..5,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
        fn gen(depth: usize, next: &mut impl FnMut() -> u64, out: &mut String) {
            if depth == 0 || next().is_multiple_of(3) {
                out.push_str(match next() % 4 { 0 => "a", 1 => "b", 2 => "0", _ => "1" });
            } else {
                let op = if next().is_multiple_of(2) { "&" } else { "|" };
                out.push_str(&format!("({op} "));
                gen(depth - 1, next, out);
                out.push(' ');
                gen(depth - 1, next, out);
                out.push(')');
            }
        }
        let mut text = String::new();
        gen(depth, &mut next, &mut text);
        let expr: RecExpr<SymbolLang> = text.parse().unwrap();
        // A Boolean-flavored rule set over the logic operators.
        let rules = vec![
            Rewrite::parse("comm-and", "(& ?x ?y)", "(& ?y ?x)").unwrap(),
            Rewrite::parse("comm-or", "(| ?x ?y)", "(| ?y ?x)").unwrap(),
            Rewrite::parse("and-one", "(& ?x 1)", "?x").unwrap(),
            Rewrite::parse("or-zero", "(| ?x 0)", "?x").unwrap(),
            Rewrite::parse("and-zero", "(& ?x 0)", "0").unwrap(),
            Rewrite::parse("or-one", "(| ?x 1)", "1").unwrap(),
            Rewrite::parse("idem-and", "(& ?x ?x)", "?x").unwrap(),
            Rewrite::parse("absorb", "(& ?x (| ?x ?y))", "?x").unwrap(),
        ];
        let mut egraph: EGraph<SymbolLang> = EGraph::new();
        egraph.add_expr(&expr);
        egraph.rebuild();
        egraph.check_invariants().map_err(TestCaseError)?;
        for _ in 0..iters {
            for rule in &rules {
                rule.run(&mut egraph, 200);
                egraph.rebuild();
                egraph.check_invariants().map_err(TestCaseError)?;
            }
            assert_parent_index_agrees(&egraph)?;
        }
    }

    #[test]
    fn rebuild_is_idempotent(ops in workload()) {
        let (mut egraph, _) = apply(&ops);
        egraph.rebuild();
        let classes = egraph.num_classes();
        let nodes = egraph.total_nodes();
        let extra = egraph.rebuild();
        prop_assert_eq!(extra, 0);
        prop_assert_eq!(egraph.num_classes(), classes);
        prop_assert_eq!(egraph.total_nodes(), nodes);
    }

    #[test]
    fn congruence_is_maintained(ops in workload()) {
        let (mut egraph, ids) = apply(&ops);
        egraph.rebuild();
        // For every pair of equivalent ids, wrapping both in the same operator
        // must produce equivalent results after rebuilding.
        let a = ids[0];
        let b = *ids.last().unwrap();
        let fa = egraph.add(SymbolLang::new("wrap", vec![a]));
        let fb = egraph.add(SymbolLang::new("wrap", vec![b]));
        if egraph.same(a, b) {
            egraph.rebuild();
            prop_assert!(egraph.same(fa, fb));
        }
    }

    #[test]
    fn extraction_cost_never_exceeds_original_size(
        depth in 1usize..5,
        seed in 0u64..500,
    ) {
        // Build a random expression, saturate with commutativity/identity
        // rules, and check the extracted term is never larger than the input.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
        fn gen(depth: usize, next: &mut impl FnMut() -> u64, out: &mut String) {
            if depth == 0 || next().is_multiple_of(3) {
                out.push_str(match next() % 4 { 0 => "a", 1 => "b", 2 => "0", _ => "1" });
            } else {
                let op = if next().is_multiple_of(2) { "+" } else { "*" };
                out.push_str(&format!("({op} "));
                gen(depth - 1, next, out);
                out.push(' ');
                gen(depth - 1, next, out);
                out.push(')');
            }
        }
        let mut text = String::new();
        gen(depth, &mut next, &mut text);
        let expr: RecExpr<SymbolLang> = text.parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm-add", "(+ ?x ?y)", "(+ ?y ?x)").unwrap(),
            Rewrite::parse("comm-mul", "(* ?x ?y)", "(* ?y ?x)").unwrap(),
            Rewrite::parse("add-zero", "(+ ?x 0)", "?x").unwrap(),
            Rewrite::parse("mul-one", "(* ?x 1)", "?x").unwrap(),
            Rewrite::parse("mul-zero", "(* ?x 0)", "0").unwrap(),
        ];
        let original_size = expr.len() as u64;
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(6)
            .with_node_limit(5_000)
            .run(&rules);
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = extractor.find_best(runner.roots[0]);
        prop_assert!(cost <= original_size, "extracted {best} cost {cost} > original {original_size}");
        runner.egraph.check_invariants().unwrap();
    }
}
