//! Round-trip property tests of the serialize layer: for random e-graphs,
//! `to_serialized` → JSON → `from_serialized` must preserve the class
//! partition, the canonical (cheapest) forms, and the root equivalences —
//! all checked against an independent reference rebuild that materializes
//! nodes by brute-force fixpoint scanning (the obviously-correct, slow
//! oracle the linear Kahn-style reconstruction replaced).

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use egraph::serialize::{
    from_serialized, from_serialized_with_stats, to_serialized, SerializedEGraph,
};
use egraph::{AstSize, EGraph, Extractor, FromOp, FxHashMap, FxHashSet, Id, SymbolLang};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Leaf(u8),
    Node(u8, usize, usize),
    Union(usize, usize),
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..6).prop_map(Op::Leaf),
        (0u8..4, 0usize..1000, 0usize..1000).prop_map(|(o, a, b)| Op::Node(o, a, b)),
        (0usize..1000, 0usize..1000).prop_map(|(a, b)| Op::Union(a, b)),
    ];
    proptest::collection::vec(op, 5..60)
}

fn apply(ops: &[Op]) -> (EGraph<SymbolLang>, Vec<Id>) {
    let mut egraph: EGraph<SymbolLang> = EGraph::new();
    let mut ids: Vec<Id> = vec![egraph.add(SymbolLang::leaf("seed"))];
    for op in ops {
        match op {
            Op::Leaf(l) => ids.push(egraph.add(SymbolLang::leaf(format!("v{l}")))),
            Op::Node(o, a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                ids.push(egraph.add(SymbolLang::new(format!("f{o}"), vec![a, b])));
            }
            Op::Union(a, b) => {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                egraph.union(a, b);
            }
        }
    }
    egraph.rebuild();
    (egraph, ids)
}

/// Reference reconstruction: scan every remaining (class, node) pair over
/// and over, materializing any node whose children are all available, until
/// a full pass makes no progress. Quadratic and obviously correct — the
/// oracle the production Kahn-style scheduler must agree with.
fn reference_rebuild(data: &SerializedEGraph) -> Option<(EGraph<SymbolLang>, FxHashMap<u32, Id>)> {
    let mut egraph: EGraph<SymbolLang> = EGraph::new();
    let mut map: FxHashMap<u32, Id> = FxHashMap::default();
    let mut done: FxHashSet<(u32, usize)> = FxHashSet::default();
    let mut progress = true;
    while progress {
        progress = false;
        for (&cid, class) in &data.classes {
            for (i, node) in class.nodes.iter().enumerate() {
                if done.contains(&(cid, i)) || !node.children.iter().all(|c| map.contains_key(c)) {
                    continue;
                }
                let children: Vec<Id> = node.children.iter().map(|c| map[c]).collect();
                let lang_node = SymbolLang::from_op(&node.op, children).ok()?;
                let id = egraph.add(lang_node);
                match map.get(&cid) {
                    Some(&existing) => {
                        egraph.union(existing, id);
                    }
                    None => {
                        map.insert(cid, id);
                    }
                }
                done.insert((cid, i));
                progress = true;
            }
            egraph.rebuild();
        }
    }
    (done.len() == data.num_nodes()).then_some((egraph, map))
}

/// The equivalence relation induced over a set of serialized class ids by
/// an id map into an e-graph: which pairs land in the same class.
fn partition_pairs(
    egraph: &EGraph<SymbolLang>,
    map: &FxHashMap<u32, Id>,
    cids: &[u32],
) -> Vec<bool> {
    let mut pairs = Vec::with_capacity(cids.len() * cids.len());
    for &a in cids {
        for &b in cids {
            pairs.push(egraph.find(map[&a]) == egraph.find(map[&b]));
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `to_serialized` → JSON text → `from_json` is the identity on the
    /// serialized form, and the parsed snapshot passes validation.
    #[test]
    fn json_round_trip_is_identity(ops in workload()) {
        let (egraph, ids) = apply(&ops);
        let roots = vec![ids[0], *ids.last().unwrap()];
        let ser = to_serialized(&egraph, &roots);
        let parsed = SerializedEGraph::from_json(&ser.to_json()).unwrap();
        prop_assert_eq!(&parsed, &ser);
    }

    /// The production reconstruction and the brute-force reference rebuild
    /// induce the same class partition, and both agree with the source
    /// e-graph on every tracked-id equivalence (including the roots).
    #[test]
    fn reconstruction_matches_reference_oracle(ops in workload()) {
        let (egraph, ids) = apply(&ops);
        let roots: Vec<Id> = ids.iter().step_by(7).copied().collect();
        let ser = to_serialized(&egraph, &roots);

        let ((fast, fast_map, fast_roots), stats) =
            from_serialized_with_stats::<SymbolLang>(&ser).unwrap();
        let (slow, slow_map) = reference_rebuild(&ser).expect("oracle rebuild failed");

        // Every serialized node is materialized exactly once (the linearity
        // the Kahn scheduler guarantees).
        prop_assert_eq!(stats.node_attempts, ser.num_nodes());

        // Same number of classes as the source and as the oracle.
        prop_assert_eq!(fast.num_classes(), egraph.num_classes());
        prop_assert_eq!(slow.num_classes(), egraph.num_classes());

        // Identical partition over every serialized class id.
        let cids: Vec<u32> = ser.classes.keys().copied().collect();
        prop_assert_eq!(
            partition_pairs(&fast, &fast_map, &cids),
            partition_pairs(&slow, &slow_map, &cids)
        );

        // Tracked ids: equivalence in the source iff equivalence after the
        // round trip. Serialized class ids are the source's canonical ids,
        // so `find(id).0` indexes both maps.
        for &a in &ids {
            for &b in &ids {
                let source = egraph.find(a) == egraph.find(b);
                let restored =
                    fast.find(fast_map[&egraph.find(a).0]) == fast.find(fast_map[&egraph.find(b).0]);
                prop_assert_eq!(source, restored);
            }
        }

        // Root equivalences survive in order.
        prop_assert_eq!(fast_roots.len(), roots.len());
        for (i, &ra) in roots.iter().enumerate() {
            for (j, &rb) in roots.iter().enumerate() {
                let source = egraph.find(ra) == egraph.find(rb);
                let restored = fast.find(fast_roots[i]) == fast.find(fast_roots[j]);
                prop_assert_eq!(source, restored);
            }
        }
    }

    /// Canonical forms: the cheapest term extractable from every class is
    /// equally cheap before and after the round trip (the restored graph
    /// lost no node and invented none).
    #[test]
    fn extraction_costs_survive_round_trip(ops in workload()) {
        let (egraph, ids) = apply(&ops);
        let roots: Vec<Id> = ids.iter().step_by(5).copied().collect();
        let ser = to_serialized(&egraph, &roots);
        let json = ser.to_json();
        let parsed = SerializedEGraph::from_json(&json).unwrap();
        let (restored, map, _roots) = from_serialized::<SymbolLang>(&parsed).unwrap();

        let before = Extractor::new(&egraph, AstSize);
        let after = Extractor::new(&restored, AstSize);
        for class in egraph.classes() {
            let (cost_before, term_before) = before.find_best(class.id);
            let (cost_after, term_after) = after.find_best(map[&class.id.0]);
            prop_assert_eq!(
                cost_before,
                cost_after,
                "class {} extracts {} before but {} after",
                class.id.0,
                term_before,
                term_after
            );
        }
    }
}
