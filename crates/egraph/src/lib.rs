//! A from-scratch e-graph / equality-saturation engine.
//!
//! This crate replaces the `egg` library that the E-morphic paper builds on.
//! It provides the same conceptual API surface:
//!
//! * [`Language`] / [`FromOp`] — the term language an e-graph is built over,
//!   plus [`RecExpr`] terms and s-expression parsing/printing.
//! * [`EGraph`] — the e-graph itself: hash-consed e-nodes grouped into
//!   e-classes, with union-find and *incremental*, worklist-driven
//!   congruence-closure rebuilding (egg-style deferred parent repair), plus
//!   an operator index that prunes pattern search.
//! * [`Pattern`] / [`Rewrite`] — syntactic rewrite rules applied by
//!   e-matching; rewriting is non-destructive (it only adds equalities).
//! * [`Runner`] — the equality-saturation loop with node/iteration/time
//!   limits and match-throttling schedulers.
//! * [`Extractor`] with pluggable [`CostFunction`]s — greedy bottom-up
//!   extraction of a best term per the chosen cost.
//! * [`serialize`] — a JSON-serializable snapshot of an e-graph, the basis of
//!   E-morphic's intermediate DSL (paper Fig. 7).
//!
//! # Example
//!
//! ```
//! use egraph::{EGraph, Pattern, RecExpr, Rewrite, Runner, SymbolLang, Extractor, AstSize};
//!
//! // (/ (* a 2) 2)  ==>  a, via commutativity and cancellation
//! let rules = vec![
//!     Rewrite::parse("comm-mul", "(* ?x ?y)", "(* ?y ?x)").unwrap(),
//!     Rewrite::parse("cancel", "(/ (* ?x ?y) ?y)", "?x").unwrap(),
//! ];
//! let expr: RecExpr<SymbolLang> = "(/ (* 2 a) 2)".parse().unwrap();
//! let runner = Runner::default().with_expr(&expr).run(&rules);
//! let extractor = Extractor::new(&runner.egraph, AstSize);
//! let (cost, best) = extractor.find_best(runner.roots[0]);
//! assert_eq!(best.to_string(), "a");
//! assert_eq!(cost, 1);
//! ```

#![warn(missing_docs)]

mod egraph;
mod extract;
mod id;
mod language;
mod pattern;
mod rewrite;
mod runner;
pub mod serialize;
mod unionfind;

pub use egraph::{EClass, EGraph};
pub use extract::{AstDepth, AstSize, CostFunction, DagSelection, Extractor, SelectionError};
pub use fxhash::{FxHashMap, FxHashSet};
pub use id::Id;
pub use language::{op_key_of, FromOp, Language, RecExpr, SymbolLang};
pub use pattern::{ENodeOrVar, Pattern, SearchMatches, Subst, Var};
pub use rewrite::Rewrite;
pub use runner::{IterationReport, Runner, RunnerLimits, Scheduler, StopReason};
pub use unionfind::UnionFind;

/// Errors produced while parsing terms, patterns or rewrite rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}
