//! JSON-serializable snapshots of an e-graph.
//!
//! This is the generic machinery behind E-morphic's intermediate DSL
//! (paper Fig. 7): every e-class is stored under its id, with its e-nodes
//! given as an operator string plus child class ids, and a redundant
//! `parents` list to make bottom-up traversals cheap after deserialization.

use crate::{EGraph, FromOp, Id, Language, ParseError};
use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// A structural defect in a serialized snapshot, found by
/// [`SerializedEGraph::validate`].
///
/// Every variant names the offending ids so rejection tests (and users
/// debugging hand-edited snapshots) can match on the exact failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The JSON `classes` object contains the same key more than once; a
    /// plain map deserialization would silently keep only one entry.
    DuplicateClassKey(String),
    /// A `classes` map key disagrees with the embedded `SerializedClass.id`.
    KeyMismatch {
        /// The map key.
        key: u32,
        /// The id stored inside the class.
        id: u32,
    },
    /// A class has no e-nodes (unreconstructible: nothing defines it).
    EmptyClass(u32),
    /// A node child references a class id that does not exist.
    MissingChild {
        /// The class containing the dangling reference.
        class: u32,
        /// The referenced, undefined class id.
        child: u32,
    },
    /// A parent entry references a class id that does not exist.
    MissingParent {
        /// The class containing the dangling reference.
        class: u32,
        /// The referenced, undefined class id.
        parent: u32,
    },
    /// A root references a class id that does not exist.
    MissingRoot(u32),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DuplicateClassKey(key) => {
                write!(f, "duplicate class key {key:?} in snapshot")
            }
            ValidationError::KeyMismatch { key, id } => {
                write!(f, "class key {key} disagrees with embedded id {id}")
            }
            ValidationError::EmptyClass(id) => write!(f, "class {id} has no nodes"),
            ValidationError::MissingChild { class, child } => {
                write!(f, "class {class} references undefined child class {child}")
            }
            ValidationError::MissingParent { class, parent } => {
                write!(
                    f,
                    "class {class} references undefined parent class {parent}"
                )
            }
            ValidationError::MissingRoot(id) => write!(f, "root class {id} is not defined"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ValidationError> for ParseError {
    fn from(e: ValidationError) -> Self {
        ParseError(format!("invalid snapshot: {e}"))
    }
}

/// One e-node in serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerializedNode {
    /// Operator spelling (as produced by [`Language::op_str`]).
    pub op: String,
    /// Child e-class ids.
    pub children: Vec<u32>,
}

/// One e-class in serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerializedClass {
    /// Class id (canonical in the source e-graph).
    pub id: u32,
    /// The e-nodes of the class.
    pub nodes: Vec<SerializedNode>,
    /// Ids of classes containing at least one node that references this class.
    pub parents: Vec<u32>,
}

/// A whole e-graph in serialized form, plus the root classes of interest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SerializedEGraph {
    /// Classes keyed by id (ordered for stable output).
    pub classes: BTreeMap<u32, SerializedClass>,
    /// Root class ids (e.g. the circuit outputs).
    pub roots: Vec<u32>,
}

impl SerializedEGraph {
    /// Total number of e-nodes.
    pub fn num_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Serializes to a pretty JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|_| unreachable!("serialization cannot fail"))
    }

    /// Parses from JSON and validates the snapshot's referential integrity.
    ///
    /// Duplicate `classes` keys are rejected (a plain map deserialization
    /// would silently drop all but one), as is any key that disagrees with
    /// the embedded class id.
    ///
    /// # Errors
    /// Returns a [`ParseError`] describing malformed JSON or (via
    /// [`ValidationError`]) a structurally invalid snapshot.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        // The vendored JSON parser preserves duplicate object keys at the
        // `Value` level; typed deserialization into a `BTreeMap` would drop
        // them, so check before converting.
        let value = serde_json::parse_value_text(text).map_err(|e| ParseError(e.to_string()))?;
        if let serde::value::Value::Object(entries) = &value {
            for (key, field) in entries {
                if key != "classes" {
                    continue;
                }
                if let serde::value::Value::Object(classes) = field {
                    let mut seen: std::collections::BTreeSet<&str> =
                        std::collections::BTreeSet::new();
                    for (class_key, _) in classes {
                        if !seen.insert(class_key.as_str()) {
                            return Err(
                                ValidationError::DuplicateClassKey(class_key.clone()).into()
                            );
                        }
                    }
                }
            }
        }
        let parsed: Self =
            serde::Deserialize::from_value(&value).map_err(|e| ParseError(e.to_string()))?;
        parsed.validate()?;
        Ok(parsed)
    }

    /// Checks the snapshot's referential integrity: every map key equals the
    /// embedded class id, every class has at least one node, and every
    /// child / parent / root reference names a defined class.
    ///
    /// # Errors
    /// Returns the first [`ValidationError`] found (classes are visited in
    /// ascending id order).
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (&key, class) in &self.classes {
            if key != class.id {
                return Err(ValidationError::KeyMismatch { key, id: class.id });
            }
            if class.nodes.is_empty() {
                return Err(ValidationError::EmptyClass(key));
            }
            for node in &class.nodes {
                for &child in &node.children {
                    if !self.classes.contains_key(&child) {
                        return Err(ValidationError::MissingChild { class: key, child });
                    }
                }
            }
            for &parent in &class.parents {
                if !self.classes.contains_key(&parent) {
                    return Err(ValidationError::MissingParent { class: key, parent });
                }
            }
        }
        for &root in &self.roots {
            if !self.classes.contains_key(&root) {
                return Err(ValidationError::MissingRoot(root));
            }
        }
        Ok(())
    }
}

/// Captures a snapshot of `egraph` (which must be rebuilt/clean).
pub fn to_serialized<L: Language>(egraph: &EGraph<L>, roots: &[Id]) -> SerializedEGraph {
    let mut classes: BTreeMap<u32, SerializedClass> = BTreeMap::new();
    for class in egraph.classes() {
        let nodes = class
            .nodes
            .iter()
            .map(|n| SerializedNode {
                op: n.op_str(),
                children: n.children().iter().map(|c| egraph.find(*c).0).collect(),
            })
            .collect();
        // The parent classes come straight from the e-graph's incrementally
        // maintained parent lists (entries may be stale; canonicalize).
        let mut parents: Vec<u32> = class
            .parents()
            .map(|(_, pclass)| egraph.find(pclass).0)
            .collect();
        parents.sort_unstable();
        parents.dedup();
        classes.insert(
            class.id.0,
            SerializedClass {
                id: class.id.0,
                nodes,
                parents,
            },
        );
    }
    SerializedEGraph {
        classes,
        roots: roots.iter().map(|r| egraph.find(*r).0).collect(),
    }
}

/// The result of [`from_serialized`]: the reconstructed e-graph, a mapping
/// from serialized ids to new class ids, and the translated roots.
pub type Deserialized<L> = (EGraph<L>, FxHashMap<u32, Id>, Vec<Id>);

/// Work accounting for [`from_serialized_with_stats`].
///
/// The reconstruction is linear: every serialized e-node is materialized
/// exactly once, so `node_attempts == SerializedEGraph::num_nodes()`. The
/// deep-chain regression test pins this (the previous worklist algorithm
/// re-attempted every remaining node on every pass, which was quadratic in
/// depth on chain-shaped graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconstructionStats {
    /// Number of e-node materialization attempts (`egraph.add` calls).
    pub node_attempts: usize,
}

/// Reconstructs an e-graph from a serialized snapshot.
///
/// Returns the e-graph plus a mapping from serialized ids to new class ids
/// and the translated roots.
///
/// # Errors
/// Returns a [`ParseError`] if the snapshot fails [`SerializedEGraph::validate`],
/// if an operator cannot be parsed by `L`, or if classes are cyclically
/// defined with no base case.
pub fn from_serialized<L: FromOp>(data: &SerializedEGraph) -> Result<Deserialized<L>, ParseError> {
    from_serialized_with_stats(data).map(|(d, _)| d)
}

/// [`from_serialized`], also returning work-accounting statistics.
///
/// Scheduling is Kahn-style: each serialized node carries a count of child
/// classes not yet materialized, classes keep a waiter list of the nodes
/// blocked on them, and a ready queue drains nodes whose children are all
/// available. Every node and every child edge is processed exactly once, so
/// reconstruction is linear in snapshot size regardless of graph depth.
///
/// # Errors
/// Same conditions as [`from_serialized`].
pub fn from_serialized_with_stats<L: FromOp>(
    data: &SerializedEGraph,
) -> Result<(Deserialized<L>, ReconstructionStats), ParseError> {
    data.validate()?;
    let mut egraph: EGraph<L> = EGraph::new();
    let mut id_map: FxHashMap<u32, Id> = FxHashMap::default();

    // Flatten (class, node) pairs in deterministic order: ascending class id
    // (BTreeMap iteration), then node index.
    let flat: Vec<(u32, &SerializedNode)> = data
        .classes
        .iter()
        .flat_map(|(&cid, class)| class.nodes.iter().map(move |n| (cid, n)))
        .collect();

    // Per flattened node: number of child references whose class has not yet
    // been materialized. Duplicate references to the same child class are
    // counted (and later decremented) once per occurrence, which keeps the
    // bookkeeping a plain counter.
    let mut missing: Vec<usize> = vec![0; flat.len()];
    let mut waiters: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    let mut ready: VecDeque<usize> = VecDeque::new();
    for (fi, (_, node)) in flat.iter().enumerate() {
        let mut count = 0usize;
        for &child in &node.children {
            if !id_map.contains_key(&child) {
                count += 1;
                waiters.entry(child).or_default().push(fi);
            }
        }
        missing[fi] = count;
        if count == 0 {
            ready.push_back(fi);
        }
    }

    let mut stats = ReconstructionStats::default();
    while let Some(fi) = ready.pop_front() {
        let (cid, node) = flat[fi];
        stats.node_attempts += 1;
        let children: Vec<Id> = node
            .children
            .iter()
            .map(|c| {
                id_map.get(c).copied().ok_or_else(|| {
                    ParseError(format!("class {c} scheduled before materialization"))
                })
            })
            .collect::<Result<_, _>>()?;
        let enode = L::from_op(&node.op, children)?;
        let new_id = egraph.add(enode);
        match id_map.get(&cid).copied() {
            Some(existing) => {
                egraph.union(existing, new_id);
            }
            None => {
                id_map.insert(cid, new_id);
                // The class just became available: release every node that
                // was blocked on it.
                if let Some(blocked) = waiters.remove(&cid) {
                    for w in blocked {
                        missing[w] -= 1;
                        if missing[w] == 0 {
                            ready.push_back(w);
                        }
                    }
                }
            }
        }
    }

    if stats.node_attempts < flat.len() {
        return Err(ParseError(format!(
            "serialized e-graph has {} nodes that could not be reconstructed (cyclic without base case?)",
            flat.len() - stats.node_attempts
        )));
    }
    egraph.rebuild();
    let roots: Vec<Id> = data
        .roots
        .iter()
        .map(|r| {
            id_map
                .get(r)
                .copied()
                .map(|id| egraph.find(id))
                .ok_or_else(|| ParseError(format!("root class {r} missing")))
        })
        .collect::<Result<_, _>>()?;
    Ok(((egraph, id_map, roots), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecExpr, SymbolLang};

    fn sample_egraph() -> (EGraph<SymbolLang>, Id) {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let e1: RecExpr<SymbolLang> = "(* x (+ y z))".parse().unwrap();
        let e2: RecExpr<SymbolLang> = "(+ (* x y) (* x z))".parse().unwrap();
        let r1 = eg.add_expr(&e1);
        let r2 = eg.add_expr(&e2);
        eg.union(r1, r2);
        eg.rebuild();
        (eg, r1)
    }

    #[test]
    fn snapshot_counts_match() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        assert_eq!(ser.num_classes(), eg.num_classes());
        assert_eq!(ser.num_nodes(), eg.total_nodes());
        assert_eq!(ser.roots.len(), 1);
    }

    #[test]
    fn parents_are_populated() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        // The class of `x` must have parents (it feeds two products).
        let x_class = ser
            .classes
            .values()
            .find(|c| c.nodes.iter().any(|n| n.op == "x"))
            .unwrap();
        assert!(!x_class.parents.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        let json = ser.to_json();
        let back = SerializedEGraph::from_json(&json).unwrap();
        assert_eq!(ser, back);
        assert!(SerializedEGraph::from_json("{not json").is_err());
    }

    #[test]
    fn reconstruction_preserves_equivalences() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        let (eg2, _map, roots2) = from_serialized::<SymbolLang>(&ser).unwrap();
        assert_eq!(eg2.num_classes(), eg.num_classes());
        assert_eq!(eg2.total_nodes(), eg.total_nodes());
        // Both forms of the distributed expression must be in the root class.
        let f1: RecExpr<SymbolLang> = "(* x (+ y z))".parse().unwrap();
        let f2: RecExpr<SymbolLang> = "(+ (* x y) (* x z))".parse().unwrap();
        let mut eg2 = eg2;
        let a = eg2.add_expr(&f1);
        let b = eg2.add_expr(&f2);
        assert_eq!(eg2.find(a), eg2.find(roots2[0]));
        assert_eq!(eg2.find(b), eg2.find(roots2[0]));
    }

    #[test]
    fn missing_root_is_an_error() {
        let (eg, root) = sample_egraph();
        let mut ser = to_serialized(&eg, &[root]);
        ser.roots = vec![9999];
        assert!(from_serialized::<SymbolLang>(&ser).is_err());
        assert_eq!(ser.validate(), Err(ValidationError::MissingRoot(9999)));
    }

    /// Regression for the quadratic worklist reconstruction: on an n-deep
    /// chain the old algorithm re-attempted every remaining node on every
    /// pass (O(n^2) adds); the Kahn-style scheduler materializes each node
    /// exactly once.
    #[test]
    fn deep_chain_reconstruction_is_linear() {
        let depth = 3000usize;
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let mut id = eg.add(SymbolLang::leaf("x"));
        for _ in 0..depth {
            id = eg.add(SymbolLang::new("f", vec![id]));
        }
        eg.rebuild();
        let ser = to_serialized(&eg, &[id]);
        assert_eq!(ser.num_nodes(), depth + 1);

        let start = std::time::Instant::now();
        let ((eg2, _map, roots), stats) = from_serialized_with_stats::<SymbolLang>(&ser).unwrap();
        let elapsed = start.elapsed();

        // Exactly one materialization attempt per serialized node — the
        // pre-fix code performed ~depth^2/2 attempts on this shape.
        assert_eq!(stats.node_attempts, ser.num_nodes());
        assert_eq!(eg2.num_classes(), eg.num_classes());
        assert_eq!(roots.len(), 1);
        // Generous wall-clock ceiling: linear reconstruction of 3001 nodes
        // is milliseconds; the quadratic version took seconds.
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "reconstruction took {elapsed:?} — quadratic regression?"
        );
    }

    #[test]
    fn validate_rejects_key_id_mismatch() {
        let (eg, root) = sample_egraph();
        let mut ser = to_serialized(&eg, &[root]);
        let (&key, _) = ser.classes.iter().next().unwrap();
        ser.classes.get_mut(&key).unwrap().id = key + 1000;
        assert_eq!(
            ser.validate(),
            Err(ValidationError::KeyMismatch {
                key,
                id: key + 1000
            })
        );
        assert!(from_serialized::<SymbolLang>(&ser).is_err());
        // The mismatch must also be caught on the JSON path.
        assert!(SerializedEGraph::from_json(&ser.to_json()).is_err());
    }

    #[test]
    fn validate_rejects_empty_class() {
        let (eg, root) = sample_egraph();
        let mut ser = to_serialized(&eg, &[root]);
        let (&key, _) = ser.classes.iter().next().unwrap();
        ser.classes.get_mut(&key).unwrap().nodes.clear();
        assert_eq!(ser.validate(), Err(ValidationError::EmptyClass(key)));
        assert!(from_serialized::<SymbolLang>(&ser).is_err());
    }

    #[test]
    fn validate_rejects_dangling_child_and_parent() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);

        let mut bad_child = ser.clone();
        let class = bad_child
            .classes
            .values_mut()
            .find(|c| c.nodes.iter().any(|n| !n.children.is_empty()))
            .unwrap();
        let cid = class.id;
        class
            .nodes
            .iter_mut()
            .find(|n| !n.children.is_empty())
            .unwrap()
            .children[0] = 4242;
        assert_eq!(
            bad_child.validate(),
            Err(ValidationError::MissingChild {
                class: cid,
                child: 4242
            })
        );
        assert!(from_serialized::<SymbolLang>(&bad_child).is_err());

        let mut bad_parent = ser.clone();
        let (&key, _) = bad_parent.classes.iter().next().unwrap();
        bad_parent.classes.get_mut(&key).unwrap().parents.push(4242);
        assert_eq!(
            bad_parent.validate(),
            Err(ValidationError::MissingParent {
                class: key,
                parent: 4242
            })
        );
    }

    #[test]
    fn from_json_rejects_duplicate_class_keys() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        let json = ser.to_json();
        // Duplicate the first class entry inside the "classes" object. The
        // snapshot text stays syntactically valid JSON; a plain map parse
        // would silently drop one copy.
        let (&key, class) = ser.classes.iter().next().unwrap();
        let entry = serde_json::to_string(class).unwrap();
        let needle = format!("\"{key}\":");
        let pos = json.find(&needle).unwrap();
        let mut dup = json.clone();
        dup.insert_str(pos, &format!("\"{key}\": {entry}, "));
        let err = SerializedEGraph::from_json(&dup).unwrap_err();
        assert!(err.0.contains("duplicate class key"), "got: {}", err.0);
        // The original parses fine.
        assert!(SerializedEGraph::from_json(&json).is_ok());
    }
}
