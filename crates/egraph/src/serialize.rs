//! JSON-serializable snapshots of an e-graph.
//!
//! This is the generic machinery behind E-morphic's intermediate DSL
//! (paper Fig. 7): every e-class is stored under its id, with its e-nodes
//! given as an operator string plus child class ids, and a redundant
//! `parents` list to make bottom-up traversals cheap after deserialization.

use crate::{EGraph, FromOp, Id, Language, ParseError};
use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One e-node in serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerializedNode {
    /// Operator spelling (as produced by [`Language::op_str`]).
    pub op: String,
    /// Child e-class ids.
    pub children: Vec<u32>,
}

/// One e-class in serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerializedClass {
    /// Class id (canonical in the source e-graph).
    pub id: u32,
    /// The e-nodes of the class.
    pub nodes: Vec<SerializedNode>,
    /// Ids of classes containing at least one node that references this class.
    pub parents: Vec<u32>,
}

/// A whole e-graph in serialized form, plus the root classes of interest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SerializedEGraph {
    /// Classes keyed by id (ordered for stable output).
    pub classes: BTreeMap<u32, SerializedClass>,
    /// Root class ids (e.g. the circuit outputs).
    pub roots: Vec<u32>,
}

impl SerializedEGraph {
    /// Total number of e-nodes.
    pub fn num_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Serializes to a pretty JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|_| unreachable!("serialization cannot fail"))
    }

    /// Parses from JSON.
    ///
    /// # Errors
    /// Returns a [`ParseError`] describing the malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        serde_json::from_str(text).map_err(|e| ParseError(e.to_string()))
    }
}

/// Captures a snapshot of `egraph` (which must be rebuilt/clean).
pub fn to_serialized<L: Language>(egraph: &EGraph<L>, roots: &[Id]) -> SerializedEGraph {
    let mut classes: BTreeMap<u32, SerializedClass> = BTreeMap::new();
    for class in egraph.classes() {
        let nodes = class
            .nodes
            .iter()
            .map(|n| SerializedNode {
                op: n.op_str(),
                children: n.children().iter().map(|c| egraph.find(*c).0).collect(),
            })
            .collect();
        // The parent classes come straight from the e-graph's incrementally
        // maintained parent lists (entries may be stale; canonicalize).
        let mut parents: Vec<u32> = class
            .parents()
            .map(|(_, pclass)| egraph.find(pclass).0)
            .collect();
        parents.sort_unstable();
        parents.dedup();
        classes.insert(
            class.id.0,
            SerializedClass {
                id: class.id.0,
                nodes,
                parents,
            },
        );
    }
    SerializedEGraph {
        classes,
        roots: roots.iter().map(|r| egraph.find(*r).0).collect(),
    }
}

/// The result of [`from_serialized`]: the reconstructed e-graph, a mapping
/// from serialized ids to new class ids, and the translated roots.
pub type Deserialized<L> = (EGraph<L>, FxHashMap<u32, Id>, Vec<Id>);

/// Reconstructs an e-graph from a serialized snapshot.
///
/// Returns the e-graph plus a mapping from serialized ids to new class ids
/// and the translated roots.
///
/// # Errors
/// Returns a [`ParseError`] if an operator cannot be parsed by `L` or if the
/// snapshot references undefined classes.
pub fn from_serialized<L: FromOp>(data: &SerializedEGraph) -> Result<Deserialized<L>, ParseError> {
    let mut egraph: EGraph<L> = EGraph::new();
    let mut id_map: FxHashMap<u32, Id> = FxHashMap::default();

    // Iterate until every class has been materialized: a class can only be
    // created once at least one of its nodes has all children available.
    let mut remaining: Vec<u32> = data.classes.keys().copied().collect();
    let mut progress = true;
    while !remaining.is_empty() && progress {
        progress = false;
        let mut still: Vec<u32> = Vec::new();
        for cid in remaining {
            let class = &data.classes[&cid];
            // Try to add every node whose children are all mapped.
            let mut class_new_id: Option<Id> = id_map.get(&cid).copied();
            let mut added_any = false;
            for node in &class.nodes {
                let children: Option<Vec<Id>> = node
                    .children
                    .iter()
                    .map(|c| id_map.get(c).copied())
                    .collect();
                let Some(children) = children else { continue };
                let enode = L::from_op(&node.op, children)?;
                let new_id = egraph.add(enode);
                match class_new_id {
                    Some(existing) => {
                        egraph.union(existing, new_id);
                    }
                    None => {
                        class_new_id = Some(new_id);
                        id_map.insert(cid, new_id);
                    }
                }
                added_any = true;
            }
            if added_any {
                progress = true;
            }
            // A class stays on the worklist until all of its nodes are in; we
            // conservatively keep it if any node might still be missing.
            let fully_done = class.nodes.iter().all(|n| {
                n.children.iter().all(|c| id_map.contains_key(c)) && id_map.contains_key(&cid)
            });
            if !fully_done {
                still.push(cid);
            }
        }
        remaining = still;
    }
    if !remaining.is_empty() {
        return Err(ParseError(format!(
            "serialized e-graph has {} classes that could not be reconstructed (cyclic without base case?)",
            remaining.len()
        )));
    }
    egraph.rebuild();
    let roots: Vec<Id> = data
        .roots
        .iter()
        .map(|r| {
            id_map
                .get(r)
                .copied()
                .map(|id| egraph.find(id))
                .ok_or_else(|| ParseError(format!("root class {r} missing")))
        })
        .collect::<Result<_, _>>()?;
    Ok((egraph, id_map, roots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecExpr, SymbolLang};

    fn sample_egraph() -> (EGraph<SymbolLang>, Id) {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let e1: RecExpr<SymbolLang> = "(* x (+ y z))".parse().unwrap();
        let e2: RecExpr<SymbolLang> = "(+ (* x y) (* x z))".parse().unwrap();
        let r1 = eg.add_expr(&e1);
        let r2 = eg.add_expr(&e2);
        eg.union(r1, r2);
        eg.rebuild();
        (eg, r1)
    }

    #[test]
    fn snapshot_counts_match() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        assert_eq!(ser.num_classes(), eg.num_classes());
        assert_eq!(ser.num_nodes(), eg.total_nodes());
        assert_eq!(ser.roots.len(), 1);
    }

    #[test]
    fn parents_are_populated() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        // The class of `x` must have parents (it feeds two products).
        let x_class = ser
            .classes
            .values()
            .find(|c| c.nodes.iter().any(|n| n.op == "x"))
            .unwrap();
        assert!(!x_class.parents.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        let json = ser.to_json();
        let back = SerializedEGraph::from_json(&json).unwrap();
        assert_eq!(ser, back);
        assert!(SerializedEGraph::from_json("{not json").is_err());
    }

    #[test]
    fn reconstruction_preserves_equivalences() {
        let (eg, root) = sample_egraph();
        let ser = to_serialized(&eg, &[root]);
        let (eg2, _map, roots2) = from_serialized::<SymbolLang>(&ser).unwrap();
        assert_eq!(eg2.num_classes(), eg.num_classes());
        assert_eq!(eg2.total_nodes(), eg.total_nodes());
        // Both forms of the distributed expression must be in the root class.
        let f1: RecExpr<SymbolLang> = "(* x (+ y z))".parse().unwrap();
        let f2: RecExpr<SymbolLang> = "(+ (* x y) (* x z))".parse().unwrap();
        let mut eg2 = eg2;
        let a = eg2.add_expr(&f1);
        let b = eg2.add_expr(&f2);
        assert_eq!(eg2.find(a), eg2.find(roots2[0]));
        assert_eq!(eg2.find(b), eg2.find(roots2[0]));
    }

    #[test]
    fn missing_root_is_an_error() {
        let (eg, root) = sample_egraph();
        let mut ser = to_serialized(&eg, &[root]);
        ser.roots = vec![9999];
        assert!(from_serialized::<SymbolLang>(&ser).is_err());
    }
}
