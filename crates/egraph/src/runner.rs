//! The equality-saturation loop: repeatedly search and apply rewrites until
//! the e-graph saturates or a resource limit is hit.

use crate::fxhash::FxHashMap;
use crate::{EGraph, Id, Language, RecExpr, Rewrite};
use std::time::{Duration, Instant};

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite produced any new equality — the e-graph is saturated.
    Saturated,
    /// The configured iteration limit was reached.
    IterationLimit,
    /// The configured e-node limit was reached.
    NodeLimit,
    /// The configured wall-clock limit was reached.
    TimeLimit,
}

/// Resource limits for a saturation run.
#[derive(Debug, Clone)]
pub struct RunnerLimits {
    /// Maximum number of rewrite iterations.
    pub iter_limit: usize,
    /// Maximum number of e-nodes before stopping.
    pub node_limit: usize,
    /// Maximum wall-clock time.
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 1_000_000,
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Match-throttling strategy applied per rule per iteration.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Apply every match of every rule each iteration.
    Simple,
    /// Cap matches per rule and temporarily ban rules that exceed the cap,
    /// doubling the ban length on repeated offences (egg's backoff scheduler).
    Backoff {
        /// Maximum matches a rule may apply in one iteration before it is banned.
        match_limit: usize,
        /// Base number of iterations a banned rule sits out.
        ban_length: usize,
    },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::Backoff {
            match_limit: 1_000,
            ban_length: 2,
        }
    }
}

/// Statistics of one saturation iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Number of e-nodes after the iteration.
    pub egraph_nodes: usize,
    /// Number of e-classes after the iteration.
    pub egraph_classes: usize,
    /// Per-rule number of unions that changed the e-graph.
    pub applied: Vec<(String, usize)>,
    /// Unions added by congruence during rebuild.
    pub rebuild_unions: usize,
    /// Wall-clock time of the iteration.
    pub elapsed: Duration,
    /// Wall-clock time spent inside [`EGraph::rebuild`] this iteration.
    /// With incremental rebuilding this tracks the *changed region* of the
    /// graph rather than its total size.
    pub rebuild_time: Duration,
    /// `true` when every rule was searched over all of its candidate classes
    /// this iteration (no budget exhaustion, no banned rules); only then can
    /// an all-zero iteration be read as saturation.
    pub search_complete: bool,
}

#[derive(Debug, Clone, Default)]
struct RuleStats {
    bans: usize,
    banned_until: usize,
}

/// Drives equality saturation over an [`EGraph`].
#[derive(Debug, Clone)]
pub struct Runner<L: Language> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L>,
    /// Classes of the expressions registered with [`Runner::with_expr`].
    pub roots: Vec<Id>,
    /// Per-iteration statistics, filled in by [`Runner::run`].
    pub iterations: Vec<IterationReport>,
    /// Why the run stopped (`None` before [`Runner::run`]).
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Scheduler,
}

impl<L: Language> Default for Runner<L> {
    fn default() -> Self {
        Runner {
            egraph: EGraph::new(),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Scheduler::default(),
        }
    }
}

impl<L: Language> Runner<L> {
    /// Creates a runner around an existing e-graph (used by E-morphic's
    /// DAG-to-DAG conversion, which builds the initial e-graph directly).
    pub fn with_egraph(egraph: EGraph<L>) -> Self {
        Runner {
            egraph,
            ..Runner::default()
        }
    }

    /// Adds an expression to the e-graph and registers its class as a root.
    #[must_use]
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.egraph.rebuild();
        self.roots.push(id);
        self
    }

    /// Registers an existing class as a root.
    #[must_use]
    pub fn with_root(mut self, id: Id) -> Self {
        self.roots.push(id);
        self
    }

    /// Sets the iteration limit.
    #[must_use]
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Sets the wall-clock limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = limit;
        self
    }

    /// Sets the match scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns the configured limits.
    pub fn limits(&self) -> &RunnerLimits {
        &self.limits
    }

    /// Runs equality saturation with the given rewrites until saturation or a
    /// limit is reached. Consumes and returns the runner so results can be
    /// inspected fluently.
    #[must_use]
    pub fn run(mut self, rewrites: &[Rewrite<L>]) -> Self {
        let start = Instant::now();
        let mut rule_stats: FxHashMap<usize, RuleStats> = FxHashMap::default();
        if self.egraph.is_dirty() {
            self.egraph.rebuild();
        }

        for iteration in 0..self.limits.iter_limit {
            let iter_start = Instant::now();
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                break;
            }

            let match_limit = match self.scheduler {
                Scheduler::Simple => usize::MAX,
                Scheduler::Backoff { match_limit, .. } => match_limit,
            };

            // Search phase: collect matches for all non-banned rules before
            // applying anything, so the search sees a consistent e-graph.
            // `match_limit` is a *per-rule total* budget enforced inside
            // `Pattern::search_rotated`; the scan start rotates by a fixed
            // odd-prime stride each iteration (staggered per rule) so the
            // budget sweeps the whole e-graph over time instead of
            // re-finding the same matches in the earliest classes forever.
            // The stride must not be derived from `match_limit` or the class
            // count: if the class count divided the stride, every iteration
            // would restart the scan at the same class.
            const ROTATION_STRIDE: usize = 9973;
            let mut all_matches = Vec::with_capacity(rewrites.len());
            let mut search_incomplete = false;
            for (ri, rw) in rewrites.iter().enumerate() {
                let stats = rule_stats.entry(ri).or_default();
                if stats.banned_until > iteration {
                    search_incomplete = true;
                    all_matches.push(Vec::new());
                    continue;
                }
                let rotation = iteration
                    .wrapping_mul(ROTATION_STRIDE)
                    .wrapping_add(ri * 17);
                let (matches, complete) = rw.search_rotated(&self.egraph, match_limit, rotation);
                if !complete {
                    search_incomplete = true;
                }
                let total: usize = matches.iter().map(|m| m.substs.len()).sum();
                if let Scheduler::Backoff {
                    match_limit,
                    ban_length,
                } = self.scheduler
                {
                    if total >= match_limit {
                        stats.bans += 1;
                        stats.banned_until = iteration + 1 + (ban_length << stats.bans);
                    }
                }
                all_matches.push(matches);
                if start.elapsed() > self.limits.time_limit {
                    // Remaining rules go unsearched this iteration.
                    search_incomplete = true;
                    break;
                }
            }

            // Apply phase. Node/time limits are re-checked after every rule
            // so one explosive iteration cannot run unbounded; the e-graph
            // is rebuilt below regardless of where the loop stops.
            let mut applied = Vec::with_capacity(rewrites.len());
            let mut total_changed = 0;
            let mut hit_limit = None;
            for (rw, matches) in rewrites.iter().zip(&all_matches) {
                let changed = rw.apply(&mut self.egraph, matches);
                total_changed += changed;
                applied.push((rw.name.clone(), changed));
                if self.egraph.total_nodes() > self.limits.node_limit {
                    hit_limit = Some(StopReason::NodeLimit);
                    break;
                }
                if start.elapsed() > self.limits.time_limit {
                    hit_limit = Some(StopReason::TimeLimit);
                    break;
                }
            }
            let rebuild_start = Instant::now();
            let rebuild_unions = self.egraph.rebuild();
            let rebuild_time = rebuild_start.elapsed();

            self.iterations.push(IterationReport {
                iteration,
                egraph_nodes: self.egraph.total_nodes(),
                egraph_classes: self.egraph.num_classes(),
                applied,
                rebuild_unions,
                elapsed: iter_start.elapsed(),
                rebuild_time,
                search_complete: !search_incomplete,
            });

            if let Some(reason) = hit_limit {
                self.stop_reason = Some(reason);
                break;
            }
            // Saturation can only be claimed when every rule was searched
            // exhaustively this iteration: a banned rule or a capped search
            // may be hiding pending matches.
            if total_changed == 0 && rebuild_unions == 0 && !search_incomplete {
                self.stop_reason = Some(StopReason::Saturated);
                break;
            }
            if self.egraph.total_nodes() > self.limits.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit);
                break;
            }
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                break;
            }
        }

        if self.stop_reason.is_none() {
            self.stop_reason = Some(StopReason::IterationLimit);
        }
        // Canonicalize roots for downstream extraction.
        for root in &mut self.roots {
            *root = self.egraph.find(*root);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstSize, Extractor, SymbolLang};

    fn arith_rules() -> Vec<Rewrite<SymbolLang>> {
        vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::parse("add-zero", "(+ ?a 0)", "?a").unwrap(),
            Rewrite::parse("mul-one", "(* ?a 1)", "?a").unwrap(),
            Rewrite::parse("mul-zero", "(* ?a 0)", "0").unwrap(),
        ]
    }

    #[test]
    fn simplifies_to_symbol() {
        let expr: RecExpr<SymbolLang> = "(+ 0 (* 1 foo))".parse().unwrap();
        let runner = Runner::default().with_expr(&expr).run(&arith_rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::Saturated) | Some(StopReason::IterationLimit)
        ));
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = extractor.find_best(runner.roots[0]);
        assert_eq!(best.to_string(), "foo");
        assert_eq!(cost, 1);
    }

    #[test]
    fn saturation_detected_on_fixed_point() {
        let expr: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        let rules = vec![Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let runner = Runner::default().with_expr(&expr).run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        // Commutativity of a 2-leaf sum saturates after a couple of iterations.
        assert!(runner.iterations.len() <= 3);
    }

    #[test]
    fn node_limit_stops_explosion() {
        // Associativity+commutativity over a chain explodes; the node limit
        // must stop it.
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("assoc2", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_node_limit(500)
            .with_iter_limit(100)
            .with_scheduler(Scheduler::Simple)
            .run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::NodeLimit));
        assert!(runner.egraph.total_nodes() > 500);
    }

    #[test]
    fn iteration_limit_respected() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(2)
            .run(&rules);
        assert!(runner.iterations.len() <= 2);
        assert_eq!(runner.stop_reason, Some(StopReason::IterationLimit));
    }

    #[test]
    fn reports_track_growth() {
        let expr: RecExpr<SymbolLang> = "(* (+ a b) c)".parse().unwrap();
        let rules =
            vec![
                Rewrite::parse("distribute", "(* (+ ?a ?b) ?c)", "(+ (* ?a ?c) (* ?b ?c))")
                    .unwrap(),
            ];
        let runner = Runner::default().with_expr(&expr).run(&rules);
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert!(first.egraph_nodes >= 5);
        assert_eq!(first.applied.len(), 1);
        assert!(first.applied[0].1 >= 1);
    }

    #[test]
    fn with_egraph_preserves_contents() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let runner = Runner::with_egraph(eg).with_root(root).run(&arith_rules());
        assert!(runner.egraph.num_classes() >= 3);
        assert_eq!(runner.roots.len(), 1);
    }
}
