//! The equality-saturation loop: repeatedly search and apply rewrites until
//! the e-graph saturates or a resource limit is hit.

use crate::{EGraph, Id, Language, RecExpr, Rewrite, SearchMatches};
use fxhash::FxHashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite produced any new equality — the e-graph is saturated.
    Saturated,
    /// The configured iteration limit was reached.
    IterationLimit,
    /// The configured e-node limit was reached.
    NodeLimit,
    /// The configured wall-clock limit was reached.
    TimeLimit,
    /// The cooperative interrupt flag ([`Runner::with_interrupt`]) was set,
    /// e.g. by a job-server cancellation. Checked at the same points as the
    /// wall-clock limit, so the e-graph is left rebuilt and consistent.
    Interrupted,
}

/// Resource limits for a saturation run.
#[derive(Debug, Clone)]
pub struct RunnerLimits {
    /// Maximum number of rewrite iterations.
    pub iter_limit: usize,
    /// Maximum number of e-nodes before stopping.
    pub node_limit: usize,
    /// Maximum wall-clock time.
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 1_000_000,
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Match-throttling strategy applied per rule per iteration.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Apply every match of every rule each iteration.
    Simple,
    /// Cap matches per rule and temporarily ban rules that exceed the cap,
    /// doubling the ban length on repeated offences (egg's backoff scheduler).
    Backoff {
        /// Maximum matches a rule may apply in one iteration before it is banned.
        match_limit: usize,
        /// Base number of iterations a banned rule sits out.
        ban_length: usize,
    },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::Backoff {
            match_limit: 1_000,
            ban_length: 2,
        }
    }
}

/// Statistics of one saturation iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Number of e-nodes after the iteration.
    pub egraph_nodes: usize,
    /// Number of e-classes after the iteration.
    pub egraph_classes: usize,
    /// Per-rule number of unions that changed the e-graph.
    pub applied: Vec<(String, usize)>,
    /// Unions added by congruence during rebuild.
    pub rebuild_unions: usize,
    /// Wall-clock time of the iteration.
    pub elapsed: Duration,
    /// Wall-clock time spent inside [`EGraph::rebuild`] this iteration.
    /// With incremental rebuilding this tracks the *changed region* of the
    /// graph rather than its total size.
    pub rebuild_time: Duration,
    /// Wall-clock time of the (possibly parallel) search phase this
    /// iteration.
    pub search_time: Duration,
    /// `true` when every rule was searched over all of its candidate classes
    /// this iteration (no budget exhaustion, no banned rules); only then can
    /// an all-zero iteration be read as saturation.
    pub search_complete: bool,
}

#[derive(Debug, Clone, Default)]
struct RuleStats {
    bans: usize,
    banned_until: usize,
}

/// Iteration index until which a rule is banned after its `bans`-th offence:
/// `iteration + 1 + ban_length * 2^bans` (egg's exponential backoff), with
/// the exponent capped and all arithmetic saturating. The uncapped shift
/// `ban_length << bans` overflows — and panics in debug builds — once a rule
/// has been banned about 60 times, which a long run with a short `ban_length`
/// reaches easily.
fn backoff_ban_until(iteration: usize, ban_length: usize, bans: usize) -> usize {
    // Cap at the word size so the shift itself stays defined on every
    // target; saturating_mul/add absorb the resulting huge factors.
    const MAX_BAN_SHIFT: usize = usize::BITS as usize - 1;
    let factor = 1usize << bans.min(MAX_BAN_SHIFT);
    iteration
        .saturating_add(1)
        .saturating_add(ban_length.saturating_mul(factor))
}

/// Number of contiguous candidate-class shards each rule's search is split
/// into. Deliberately a constant — never derived from the worker-thread
/// count — so the shard decomposition, and with it every shard's match
/// budget, is identical no matter how many threads execute the shards. That
/// is what makes parallel search bit-identical to serial search.
const SHARDS_PER_RULE: usize = 8;

/// One `(rule × candidate-class-range)` work item of the search phase.
struct SearchJob<'a> {
    rule: usize,
    classes: &'a [Id],
    quota: usize,
}

/// A shard's search result: its matches and whether the scan was complete.
type ShardResult = (Vec<SearchMatches>, bool);

/// Scalar inputs of one iteration's search phase.
struct SearchParams {
    match_limit: usize,
    iteration: usize,
    threads: usize,
    start: Instant,
    time_limit: Duration,
    interrupt: Option<Arc<AtomicBool>>,
}

/// The merged outcome of one iteration's search phase.
struct SearchOutcome {
    /// Matches per rule, concatenated in shard order (= rotated class order).
    all_matches: Vec<Vec<SearchMatches>>,
    /// Total substitutions found per rule (sums of the per-shard counts).
    totals: Vec<usize>,
    /// `true` when some rule was banned, some shard exhausted its budget, or
    /// the deadline cut shards off — i.e. an all-zero iteration must not be
    /// read as saturation.
    incomplete: bool,
}

/// Searches all non-banned rules over the (immutable) e-graph, sharded into
/// `(rule × class-range)` work items that run inline or on a scoped worker
/// pool, and merges the results in deterministic `(rule index, shard index)`
/// order.
///
/// Each rule's per-iteration match budget is split across its shards before
/// any searching starts (quotas sum exactly to `match_limit`), so every
/// shard's result is a pure function of the e-graph and the job — thread
/// scheduling cannot change it. The shared atomic counters only *accumulate*
/// the per-shard match counts (addition commutes, so the totals are
/// deterministic too); they cannot be used to stop other shards early, since
/// a rule's total can only reach its budget after every one of its shards
/// has already used its full quota.
fn search_phase<L: Language>(
    egraph: &EGraph<L>,
    rewrites: &[Rewrite<L>],
    banned: &[bool],
    params: SearchParams,
) -> SearchOutcome {
    let SearchParams {
        match_limit,
        iteration,
        threads,
        start,
        time_limit,
        interrupt,
    } = params;
    // The scan start rotates by a fixed odd-prime stride each iteration
    // (staggered per rule) so finite budgets sweep the whole e-graph over
    // time instead of re-finding the same matches in the earliest classes
    // forever. The stride must not be derived from `match_limit` or the
    // class count: if the class count divided the stride, every iteration
    // would restart the scan at the same class.
    const ROTATION_STRIDE: usize = 9973;

    // Rotated candidate-class lists per rule (empty for banned rules).
    let candidates: Vec<Vec<Id>> = rewrites
        .iter()
        .enumerate()
        .map(|(ri, rw)| {
            if banned[ri] {
                return Vec::new();
            }
            let ids = rw.candidate_classes(egraph);
            if ids.is_empty() {
                return Vec::new();
            }
            let rotation = iteration
                .wrapping_mul(ROTATION_STRIDE)
                .wrapping_add(ri * 17);
            let split = rotation % ids.len();
            let mut rotated = Vec::with_capacity(ids.len());
            rotated.extend_from_slice(&ids[split..]);
            rotated.extend_from_slice(&ids[..split]);
            rotated
        })
        .collect();

    // Contiguous class-range shards with deterministically split budgets.
    // Never create more shards than the match budget: a quota-0 shard can
    // scan nothing, so it would report an incomplete search on every
    // iteration and make saturation permanently undetectable for small
    // budgets. (`match_limit.max(1)` keeps the degenerate budget-0 case a
    // single — honestly incomplete — shard.)
    let mut jobs: Vec<SearchJob> = Vec::new();
    for (ri, classes) in candidates.iter().enumerate() {
        if classes.is_empty() {
            continue;
        }
        let shards = SHARDS_PER_RULE.min(classes.len()).min(match_limit.max(1));
        let class_base = classes.len() / shards;
        let class_rem = classes.len() % shards;
        let quota_base = match_limit / shards;
        let quota_rem = match_limit % shards;
        let mut offset = 0;
        for shard in 0..shards {
            let len = class_base + usize::from(shard < class_rem);
            jobs.push(SearchJob {
                rule: ri,
                classes: &classes[offset..offset + len],
                quota: quota_base + usize::from(shard < quota_rem),
            });
            offset += len;
        }
    }

    // Per-rule match totals, accumulated atomically as shards finish.
    let totals: Vec<AtomicUsize> = (0..rewrites.len()).map(|_| AtomicUsize::new(0)).collect();
    let run_job = |job: &SearchJob| -> ShardResult {
        let (matches, complete) = rewrites[job.rule].search_classes(egraph, job.classes, job.quota);
        let found: usize = matches.iter().map(|m| m.substs.len()).sum();
        totals[job.rule].fetch_add(found, Ordering::Relaxed);
        (matches, complete)
    };
    let over_deadline = || {
        start.elapsed() > time_limit
            || interrupt
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    };

    // Execute: inline in job order for one thread, otherwise scoped workers
    // pulling jobs off a shared atomic index. A job skipped because the
    // deadline passed leaves its slot `None`, marking the rule incomplete.
    let mut outputs: Vec<Option<ShardResult>> = Vec::new();
    outputs.resize_with(jobs.len(), || None);
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        for (slot, job) in outputs.iter_mut().zip(&jobs) {
            if over_deadline() {
                break;
            }
            *slot = Some(run_job(job));
        }
    } else {
        let next = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, ShardResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() || over_deadline() {
                                break;
                            }
                            local.push((i, run_job(&jobs[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for worker_results in collected {
            for (i, out) in worker_results {
                outputs[i] = Some(out);
            }
        }
    }

    // Deterministic merge: jobs were created in (rule, shard) order, so one
    // stable pass reassembles each rule's matches exactly as a serial scan
    // of the same sharded budgets would produce them.
    let mut all_matches: Vec<Vec<SearchMatches>> =
        (0..rewrites.len()).map(|_| Vec::new()).collect();
    let mut rule_complete = vec![true; rewrites.len()];
    for (job, output) in jobs.iter().zip(outputs) {
        match output {
            Some((matches, complete)) => {
                rule_complete[job.rule] &= complete;
                all_matches[job.rule].extend(matches);
            }
            None => rule_complete[job.rule] = false,
        }
    }
    let incomplete = banned.iter().any(|&b| b) || rule_complete.iter().any(|&c| !c);
    SearchOutcome {
        all_matches,
        totals: totals.into_iter().map(AtomicUsize::into_inner).collect(),
        incomplete,
    }
}

/// Drives equality saturation over an [`EGraph`].
#[derive(Debug, Clone)]
pub struct Runner<L: Language> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L>,
    /// Classes of the expressions registered with [`Runner::with_expr`].
    pub roots: Vec<Id>,
    /// Per-iteration statistics, filled in by [`Runner::run`].
    pub iterations: Vec<IterationReport>,
    /// Why the run stopped (`None` before [`Runner::run`]).
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Scheduler,
    search_threads: usize,
    interrupt: Option<Arc<AtomicBool>>,
}

impl<L: Language> Default for Runner<L> {
    fn default() -> Self {
        Runner {
            egraph: EGraph::new(),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Scheduler::default(),
            search_threads: 1,
            interrupt: None,
        }
    }
}

impl<L: Language> Runner<L> {
    /// Creates a runner around an existing e-graph (used by E-morphic's
    /// DAG-to-DAG conversion, which builds the initial e-graph directly).
    pub fn with_egraph(egraph: EGraph<L>) -> Self {
        Runner {
            egraph,
            ..Runner::default()
        }
    }

    /// Adds an expression to the e-graph and registers its class as a root.
    #[must_use]
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.egraph.rebuild();
        self.roots.push(id);
        self
    }

    /// Registers an existing class as a root.
    #[must_use]
    pub fn with_root(mut self, id: Id) -> Self {
        self.roots.push(id);
        self
    }

    /// Sets the iteration limit.
    #[must_use]
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Sets the wall-clock limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = limit;
        self
    }

    /// Sets the match scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the number of worker threads for the search phase (`0` and `1`
    /// both mean serial). The search results are bit-identical for every
    /// thread count: sharding and budget splitting never depend on it, only
    /// which thread executes which shard does. The one exception is a run
    /// that crosses its wall-clock limit *mid-search*: which shards the
    /// deadline cuts off depends on timing, as with any wall-clock limit.
    #[must_use]
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads.max(1);
        self
    }

    /// Installs a cooperative interrupt flag. Setting the flag (from any
    /// thread) stops the run at the next limit checkpoint — between search
    /// shards, between rule applications, and between iterations — with
    /// [`StopReason::Interrupted`]. Like the wall-clock limit, the e-graph
    /// is rebuilt before the runner returns, so a preempted run is still
    /// structurally consistent (just not saturated).
    #[must_use]
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Returns the configured limits.
    pub fn limits(&self) -> &RunnerLimits {
        &self.limits
    }

    /// Runs equality saturation with the given rewrites until saturation or a
    /// limit is reached. Consumes and returns the runner so results can be
    /// inspected fluently.
    #[must_use]
    pub fn run(mut self, rewrites: &[Rewrite<L>]) -> Self {
        let start = Instant::now();
        let mut rule_stats: FxHashMap<usize, RuleStats> = FxHashMap::default();
        if self.egraph.is_dirty() {
            self.egraph.rebuild();
        }
        let interrupt = self.interrupt.clone();
        let interrupted = || {
            interrupt
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
        };

        for iteration in 0..self.limits.iter_limit {
            let iter_start = Instant::now();
            if interrupted() {
                self.stop_reason = Some(StopReason::Interrupted);
                break;
            }
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                break;
            }

            let match_limit = match self.scheduler {
                Scheduler::Simple => usize::MAX,
                Scheduler::Backoff { match_limit, .. } => match_limit,
            };

            // Search phase: collect matches for all non-banned rules before
            // applying anything, so the search sees a consistent e-graph.
            // `match_limit` is a *per-rule total* budget, split across the
            // rule's candidate-class shards; `search_phase` runs the shards
            // on `search_threads` workers and merges deterministically.
            let banned: Vec<bool> = (0..rewrites.len())
                .map(|ri| rule_stats.entry(ri).or_default().banned_until > iteration)
                .collect();
            let search_start = Instant::now();
            let outcome = search_phase(
                &self.egraph,
                rewrites,
                &banned,
                SearchParams {
                    match_limit,
                    iteration,
                    threads: self.search_threads,
                    start,
                    time_limit: self.limits.time_limit,
                    interrupt: interrupt.clone(),
                },
            );
            let search_time = search_start.elapsed();
            let all_matches = outcome.all_matches;
            let search_incomplete = outcome.incomplete;
            // Backoff banning from the deterministic per-rule match totals.
            if let Scheduler::Backoff {
                match_limit,
                ban_length,
            } = self.scheduler
            {
                for (ri, &total) in outcome.totals.iter().enumerate() {
                    if !banned[ri] && total >= match_limit {
                        let stats = rule_stats.entry(ri).or_default();
                        stats.bans += 1;
                        stats.banned_until = backoff_ban_until(iteration, ban_length, stats.bans);
                    }
                }
            }

            // Apply phase. Node/time limits are re-checked after every rule
            // so one explosive iteration cannot run unbounded; the e-graph
            // is rebuilt below regardless of where the loop stops.
            let mut applied = Vec::with_capacity(rewrites.len());
            let mut total_changed = 0;
            let mut hit_limit = None;
            for (rw, matches) in rewrites.iter().zip(&all_matches) {
                let changed = rw.apply(&mut self.egraph, matches);
                total_changed += changed;
                applied.push((rw.name.clone(), changed));
                if self.egraph.total_nodes() > self.limits.node_limit {
                    hit_limit = Some(StopReason::NodeLimit);
                    break;
                }
                if interrupted() {
                    hit_limit = Some(StopReason::Interrupted);
                    break;
                }
                if start.elapsed() > self.limits.time_limit {
                    hit_limit = Some(StopReason::TimeLimit);
                    break;
                }
            }
            let rebuild_start = Instant::now();
            let rebuild_unions = self.egraph.rebuild();
            let rebuild_time = rebuild_start.elapsed();

            self.iterations.push(IterationReport {
                iteration,
                egraph_nodes: self.egraph.total_nodes(),
                egraph_classes: self.egraph.num_classes(),
                applied,
                rebuild_unions,
                elapsed: iter_start.elapsed(),
                rebuild_time,
                search_time,
                search_complete: !search_incomplete,
            });

            if let Some(reason) = hit_limit {
                self.stop_reason = Some(reason);
                break;
            }
            // Saturation can only be claimed when every rule was searched
            // exhaustively this iteration: a banned rule or a capped search
            // may be hiding pending matches.
            if total_changed == 0 && rebuild_unions == 0 && !search_incomplete {
                self.stop_reason = Some(StopReason::Saturated);
                break;
            }
            if self.egraph.total_nodes() > self.limits.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit);
                break;
            }
            if interrupted() {
                self.stop_reason = Some(StopReason::Interrupted);
                break;
            }
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                break;
            }
        }

        if self.stop_reason.is_none() {
            self.stop_reason = Some(StopReason::IterationLimit);
        }
        // Canonicalize roots for downstream extraction.
        for root in &mut self.roots {
            *root = self.egraph.find(*root);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstSize, Extractor, SymbolLang};

    fn arith_rules() -> Vec<Rewrite<SymbolLang>> {
        vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::parse("add-zero", "(+ ?a 0)", "?a").unwrap(),
            Rewrite::parse("mul-one", "(* ?a 1)", "?a").unwrap(),
            Rewrite::parse("mul-zero", "(* ?a 0)", "0").unwrap(),
        ]
    }

    #[test]
    fn simplifies_to_symbol() {
        let expr: RecExpr<SymbolLang> = "(+ 0 (* 1 foo))".parse().unwrap();
        let runner = Runner::default().with_expr(&expr).run(&arith_rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::Saturated) | Some(StopReason::IterationLimit)
        ));
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = extractor.find_best(runner.roots[0]);
        assert_eq!(best.to_string(), "foo");
        assert_eq!(cost, 1);
    }

    #[test]
    fn saturation_detected_on_fixed_point() {
        let expr: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        let rules = vec![Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let runner = Runner::default().with_expr(&expr).run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        // Commutativity of a 2-leaf sum saturates after a couple of iterations.
        assert!(runner.iterations.len() <= 3);
    }

    #[test]
    fn node_limit_stops_explosion() {
        // Associativity+commutativity over a chain explodes; the node limit
        // must stop it.
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("assoc2", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_node_limit(500)
            .with_iter_limit(100)
            .with_scheduler(Scheduler::Simple)
            .run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::NodeLimit));
        assert!(runner.egraph.total_nodes() > 500);
    }

    #[test]
    fn iteration_limit_respected() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(2)
            .run(&rules);
        assert!(runner.iterations.len() <= 2);
        assert_eq!(runner.stop_reason, Some(StopReason::IterationLimit));
    }

    #[test]
    fn reports_track_growth() {
        let expr: RecExpr<SymbolLang> = "(* (+ a b) c)".parse().unwrap();
        let rules =
            vec![
                Rewrite::parse("distribute", "(* (+ ?a ?b) ?c)", "(+ (* ?a ?c) (* ?b ?c))")
                    .unwrap(),
            ];
        let runner = Runner::default().with_expr(&expr).run(&rules);
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert!(first.egraph_nodes >= 5);
        assert_eq!(first.applied.len(), 1);
        assert!(first.applied[0].1 >= 1);
    }

    #[test]
    fn saturation_detected_with_budget_smaller_than_shard_count() {
        // Six `*` candidate classes but a match budget of 4 (less than
        // SHARDS_PER_RULE): budget splitting must not create quota-0 shards,
        // which could scan nothing, would report every search incomplete,
        // and would make saturation permanently undetectable.
        let expr: RecExpr<SymbolLang> =
            "(+ (* a b) (+ (* c d) (+ (* e f) (+ (* g h) (+ (* i j) (* k l))))))"
                .parse()
                .unwrap();
        // The pattern's root operator exists (6 candidate classes) but the
        // nested structure never matches, so the e-graph is saturated from
        // the start — provided every shard can actually scan its classes.
        let rules = vec![Rewrite::parse("no-match", "(* (* ?x ?x) ?y)", "?x").unwrap()];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(10)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 4,
                ban_length: 2,
            })
            .run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        assert_eq!(runner.iterations.len(), 1);
    }

    #[test]
    fn backoff_shift_saturates_instead_of_overflowing() {
        // Monotone in the ban count, and capped: past the shift cap the ban
        // length stops growing instead of overflowing (the old `<<` panicked
        // in debug builds around 60 bans).
        let mut prev = 0;
        for bans in 0..200 {
            let until = backoff_ban_until(10, 2, bans);
            assert!(until >= prev, "ban schedule must be monotone");
            prev = until;
        }
        assert_eq!(
            backoff_ban_until(10, 2, 500),
            backoff_ban_until(10, 2, usize::BITS as usize - 1)
        );
        // Saturating arithmetic near the top of the range.
        assert_eq!(backoff_ban_until(usize::MAX, usize::MAX, 1), usize::MAX);
    }

    #[test]
    fn repeated_bans_past_the_shift_cap_do_not_panic() {
        // `ban_length: 0` makes every ban expire immediately, so a rule that
        // keeps matching is re-banned on every iteration and its ban count
        // sails past the former shift-overflow point (~60) within 100
        // iterations.
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(100)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 1,
                ban_length: 0,
            })
            .run(&rules);
        assert_eq!(runner.iterations.len(), 100);
        assert_eq!(runner.stop_reason, Some(StopReason::IterationLimit));
    }

    /// Runs the same saturation twice and asserts every observable outcome
    /// matches: per-iteration reports (modulo wall-clock times), stop reason,
    /// and final e-graph statistics.
    fn assert_runs_identical(threads_a: usize, threads_b: usize) {
        let expr: RecExpr<SymbolLang> = "(* (+ a (+ b c)) (+ d (* e (+ f g))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))").unwrap(),
        ];
        let run = |threads: usize| {
            Runner::default()
                .with_expr(&expr)
                .with_iter_limit(5)
                .with_node_limit(5_000)
                .with_scheduler(Scheduler::Backoff {
                    match_limit: 40,
                    ban_length: 2,
                })
                .with_search_threads(threads)
                .run(&rules)
        };
        let a = run(threads_a);
        let b = run(threads_b);
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(a.iterations.len(), b.iterations.len());
        for (ia, ib) in a.iterations.iter().zip(&b.iterations) {
            assert_eq!(ia.egraph_nodes, ib.egraph_nodes);
            assert_eq!(ia.egraph_classes, ib.egraph_classes);
            assert_eq!(ia.applied, ib.applied);
            assert_eq!(ia.rebuild_unions, ib.rebuild_unions);
            assert_eq!(ia.search_complete, ib.search_complete);
        }
        assert_eq!(a.egraph.total_nodes(), b.egraph.total_nodes());
        assert_eq!(a.egraph.num_classes(), b.egraph.num_classes());
        assert_eq!(a.egraph.num_unions(), b.egraph.num_unions());
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        assert_runs_identical(1, 2);
        assert_runs_identical(1, 4);
        // More workers than jobs is clamped, not an error.
        assert_runs_identical(1, 64);
    }

    #[test]
    fn preset_interrupt_stops_before_first_iteration() {
        let flag = Arc::new(AtomicBool::new(true));
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e (+ f g))))))".parse().unwrap();
        let rules = vec![
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_interrupt(flag)
            .run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Interrupted));
        assert!(runner.iterations.is_empty());
        // The e-graph is still consistent: the original expression survives.
        assert!(runner.egraph.num_classes() >= 7);
    }

    #[test]
    fn unset_interrupt_flag_changes_nothing() {
        let flag = Arc::new(AtomicBool::new(false));
        let expr: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        let rules = vec![Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_interrupt(flag)
            .run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
    }

    #[test]
    fn with_egraph_preserves_contents() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let runner = Runner::with_egraph(eg).with_root(root).run(&arith_rules());
        assert!(runner.egraph.num_classes() >= 3);
        assert_eq!(runner.roots.len(), 1);
    }
}
