//! Cost-based extraction of a best term from an e-graph.
//!
//! The [`Extractor`] implements the standard greedy bottom-up algorithm: it
//! computes, for every e-class, the cheapest e-node whose children already
//! have known costs, iterating to a fixpoint. E-morphic replaces this with a
//! simulated-annealing extractor (in the `emorphic` crate) but uses this
//! greedy pass to produce initial solutions.

use crate::{EGraph, Id, Language, RecExpr};
use fxhash::{FxHashMap, FxHashSet};
use std::fmt::Debug;

/// A cost function over e-nodes.
///
/// `costs` gives access to the (already computed) cost of each child class.
pub trait CostFunction<L: Language> {
    /// The cost type; must be totally ordered for the classes being compared.
    type Cost: PartialOrd + Clone + Debug;

    /// Computes the cost of `enode` given a lookup for child-class costs.
    fn cost<C>(&mut self, enode: &L, costs: C) -> Self::Cost
    where
        C: FnMut(Id) -> Self::Cost;
}

/// Term size (number of nodes, counting shared nodes once per use).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    type Cost = u64;

    fn cost<C>(&mut self, enode: &L, mut costs: C) -> u64
    where
        C: FnMut(Id) -> u64,
    {
        enode
            .children()
            .iter()
            .fold(1u64, |acc, &c| acc.saturating_add(costs(c)))
    }
}

/// Term depth (longest path from the root to a leaf).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language> CostFunction<L> for AstDepth {
    type Cost = u64;

    fn cost<C>(&mut self, enode: &L, mut costs: C) -> u64
    where
        C: FnMut(Id) -> u64,
    {
        1 + enode
            .children()
            .iter()
            .map(|&c| costs(c))
            .max()
            .unwrap_or(0)
    }
}

/// Errors produced while materializing a [`DagSelection`] into a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// A class reachable from the requested root has no selected node.
    Missing(Id),
    /// The selection is cyclic: following it from the given class never
    /// reaches the leaves.
    Cyclic(Id),
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::Missing(id) => write!(f, "no selection for class {id}"),
            SelectionError::Cyclic(id) => {
                write!(f, "cyclic selection detected at class {id}")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// A concrete choice of one e-node per e-class — the result of extraction in
/// DAG form, which E-morphic converts directly back into a circuit.
#[derive(Debug, Clone)]
pub struct DagSelection<L> {
    /// Chosen representative e-node for each (canonical) class id.
    pub choices: FxHashMap<Id, L>,
}

impl<L: Language> DagSelection<L> {
    /// Returns the chosen node for a class, if any.
    pub fn node(&self, id: Id) -> Option<&L> {
        self.choices.get(&id)
    }

    /// Overrides the chosen node for a class.
    pub fn set(&mut self, id: Id, node: L) {
        self.choices.insert(id, node);
    }

    /// Builds the term rooted at `root` following the selection.
    ///
    /// # Panics
    /// Panics if a reachable class has no selection or the selection is
    /// cyclic; [`DagSelection::try_to_recexpr`] reports the same conditions
    /// as a typed [`SelectionError`] instead.
    // The panic is the documented contract; `try_to_recexpr` is the
    // non-panicking form.
    #[allow(clippy::panic)]
    pub fn to_recexpr(&self, egraph: &EGraph<L>, root: Id) -> RecExpr<L> {
        self.try_to_recexpr(egraph, root)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the term rooted at `root`, reporting missing or cyclic
    /// selections as a typed error instead of panicking.
    ///
    /// # Errors
    /// Returns a [`SelectionError`] if a reachable class has no selected
    /// node or the selection is cyclic.
    pub fn try_to_recexpr(
        &self,
        egraph: &EGraph<L>,
        root: Id,
    ) -> Result<RecExpr<L>, SelectionError> {
        let mut expr = RecExpr::default();
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        self.build(egraph, egraph.find(root), &mut expr, &mut cache, 0)?;
        Ok(expr)
    }

    fn build(
        &self,
        egraph: &EGraph<L>,
        id: Id,
        expr: &mut RecExpr<L>,
        cache: &mut FxHashMap<Id, Id>,
        depth: usize,
    ) -> Result<Id, SelectionError> {
        if let Some(&done) = cache.get(&id) {
            return Ok(done);
        }
        if depth > egraph.num_classes() {
            return Err(SelectionError::Cyclic(id));
        }
        let node = self
            .choices
            .get(&id)
            .ok_or(SelectionError::Missing(id))?
            .clone();
        let mut failed = None;
        let node = node.map_children(|c| {
            match self.build(egraph, egraph.find(c), expr, cache, depth + 1) {
                Ok(done) => done,
                Err(e) => {
                    failed.get_or_insert(e);
                    c
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        let out = expr.add(node);
        cache.insert(id, out);
        Ok(out)
    }

    /// Number of distinct classes reachable from `roots` under the selection
    /// (the DAG size of the extracted circuit).
    ///
    /// Debug builds assert that every reachable class has a selected node; in
    /// release builds an unselected class silently contributes size 1 and is
    /// not traversed (the historical permissive behavior). Use
    /// [`DagSelection::try_dag_size`] to surface incomplete selections as a
    /// typed error instead.
    pub fn dag_size(&self, egraph: &EGraph<L>, roots: &[Id]) -> usize {
        let mut seen: FxHashSet<Id> = FxHashSet::default();
        let mut stack: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            debug_assert!(
                self.choices.contains_key(&id),
                "dag_size over an incomplete selection: class {id} has no node"
            );
            if let Some(node) = self.choices.get(&id) {
                for &c in node.children() {
                    stack.push(egraph.find(c));
                }
            }
        }
        seen.len()
    }

    /// Like [`DagSelection::dag_size`], but reports a reachable class without
    /// a selected node as a typed [`SelectionError`] instead of silently
    /// treating it as a zero-cost leaf (which lets an engine bug masquerade
    /// as an excellent extraction).
    ///
    /// # Errors
    /// Returns [`SelectionError::Missing`] if a class reachable from the
    /// roots has no selected node.
    pub fn try_dag_size(&self, egraph: &EGraph<L>, roots: &[Id]) -> Result<usize, SelectionError> {
        let mut seen: FxHashSet<Id> = FxHashSet::default();
        let mut stack: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = self.choices.get(&id).ok_or(SelectionError::Missing(id))?;
            for &c in node.children() {
                stack.push(egraph.find(c));
            }
        }
        Ok(seen.len())
    }

    /// Longest path (in chosen nodes) from any root to a leaf.
    ///
    /// Debug builds assert the selection is complete over the reachable
    /// classes; release builds keep the historical permissive behavior
    /// (missing classes count as depth 0). Use [`DagSelection::try_depth`]
    /// for the typed-error variant.
    pub fn depth(&self, egraph: &EGraph<L>, roots: &[Id]) -> usize {
        let mut memo: FxHashMap<Id, usize> = FxHashMap::default();
        fn rec<L: Language>(
            sel: &DagSelection<L>,
            egraph: &EGraph<L>,
            id: Id,
            memo: &mut FxHashMap<Id, usize>,
        ) -> usize {
            if let Some(&d) = memo.get(&id) {
                return d;
            }
            memo.insert(id, 0); // guard against cycles
            debug_assert!(
                sel.choices.contains_key(&id),
                "depth over an incomplete selection: class {id} has no node"
            );
            let d = match sel.choices.get(&id) {
                Some(node) => {
                    1 + node
                        .children()
                        .iter()
                        .map(|&c| rec(sel, egraph, egraph.find(c), memo))
                        .max()
                        .unwrap_or(0)
                }
                None => 0,
            };
            memo.insert(id, d);
            d
        }
        roots
            .iter()
            .map(|&r| rec(self, egraph, egraph.find(r), &mut memo))
            .max()
            .unwrap_or(0)
    }

    /// Like [`DagSelection::depth`], but reports incomplete and cyclic
    /// selections as typed [`SelectionError`]s instead of folding them into
    /// a too-small depth.
    ///
    /// # Errors
    /// Returns [`SelectionError::Missing`] if a reachable class has no
    /// selected node, or [`SelectionError::Cyclic`] if the selection loops.
    pub fn try_depth(&self, egraph: &EGraph<L>, roots: &[Id]) -> Result<usize, SelectionError> {
        // Two-color DFS: `None` in `memo` marks an in-progress class, so a
        // back edge is detected as a cycle instead of reading the guard 0.
        let mut memo: FxHashMap<Id, Option<usize>> = FxHashMap::default();
        fn rec<L: Language>(
            sel: &DagSelection<L>,
            egraph: &EGraph<L>,
            id: Id,
            memo: &mut FxHashMap<Id, Option<usize>>,
        ) -> Result<usize, SelectionError> {
            match memo.get(&id) {
                Some(Some(d)) => return Ok(*d),
                Some(None) => return Err(SelectionError::Cyclic(id)),
                None => {}
            }
            memo.insert(id, None);
            let node = sel.choices.get(&id).ok_or(SelectionError::Missing(id))?;
            let mut max_child = 0usize;
            for &c in node.children() {
                max_child = max_child.max(rec(sel, egraph, egraph.find(c), memo)?);
            }
            let d = 1 + max_child;
            memo.insert(id, Some(d));
            Ok(d)
        }
        let mut best = 0usize;
        for &r in roots {
            best = best.max(rec(self, egraph, egraph.find(r), &mut memo)?);
        }
        Ok(best)
    }
}

/// Greedy bottom-up extractor: computes the cheapest representative of every
/// e-class under a [`CostFunction`].
pub struct Extractor<'a, L: Language, CF: CostFunction<L>> {
    egraph: &'a EGraph<L>,
    costs: FxHashMap<Id, (CF::Cost, L)>,
}

impl<'a, L: Language, CF: CostFunction<L>> Extractor<'a, L, CF> {
    /// Computes best costs for every class of a (rebuilt) e-graph.
    pub fn new(egraph: &'a EGraph<L>, mut cost_fn: CF) -> Self {
        let mut costs: FxHashMap<Id, (CF::Cost, L)> = FxHashMap::default();
        // Fixpoint: keep sweeping until no class improves. Each sweep only
        // evaluates nodes whose children all have costs.
        let mut changed = true;
        while changed {
            changed = false;
            for class in egraph.classes() {
                for node in &class.nodes {
                    let ready = node
                        .children()
                        .iter()
                        .all(|&c| costs.contains_key(&egraph.find(c)));
                    if !ready {
                        continue;
                    }
                    let cost = cost_fn.cost(node, |c| costs[&egraph.find(c)].0.clone());
                    match costs.get(&class.id) {
                        Some((best, _)) if *best <= cost => {}
                        _ => {
                            costs.insert(class.id, (cost, node.clone()));
                            changed = true;
                        }
                    }
                }
            }
        }
        Extractor { egraph, costs }
    }

    /// Returns the best cost of a class, if one was computed.
    pub fn find_best_cost(&self, id: Id) -> Option<CF::Cost> {
        self.costs
            .get(&self.egraph.find(id))
            .map(|(c, _)| c.clone())
    }

    /// Returns the chosen (cheapest) node of a class.
    ///
    /// # Panics
    /// Panics if the class is unreachable from any leaf (no finite cost).
    pub fn find_best_node(&self, id: Id) -> &L {
        &self.costs[&self.egraph.find(id)].1
    }

    /// Extracts the best term rooted at `root`.
    ///
    /// # Panics
    /// Panics if no finite-cost term exists for `root`.
    pub fn find_best(&self, root: Id) -> (CF::Cost, RecExpr<L>) {
        let root = self.egraph.find(root);
        let cost = self.costs[&root].0.clone();
        let expr = self.selection().to_recexpr(self.egraph, root);
        (cost, expr)
    }

    /// Returns the whole per-class selection (for DAG-style reconstruction).
    pub fn selection(&self) -> DagSelection<L> {
        let choices = self
            .costs
            .iter()
            .map(|(&id, (_, node))| (id, node.clone()))
            .collect();
        DagSelection { choices }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rewrite, Runner, SymbolLang};

    #[test]
    fn ast_size_picks_smallest_equivalent() {
        let expr: RecExpr<SymbolLang> = "(+ (* a 1) 0)".parse().unwrap();
        let rules = vec![
            Rewrite::parse("mul-one", "(* ?x 1)", "?x").unwrap(),
            Rewrite::parse("add-zero", "(+ ?x 0)", "?x").unwrap(),
        ];
        let runner = Runner::default().with_expr(&expr).run(&rules);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(runner.roots[0]);
        assert_eq!(best.to_string(), "a");
        assert_eq!(cost, 1);
    }

    #[test]
    fn ast_depth_prefers_balanced_form() {
        // (+ (+ (+ a b) c) d) can be rebalanced to depth 3 via associativity.
        let expr: RecExpr<SymbolLang> = "(+ (+ (+ a b) c) d)".parse().unwrap();
        let rules = vec![
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("assoc-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)").unwrap(),
            Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        ];
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(6)
            .run(&rules);
        let size_before: u64 = {
            let ex = Extractor::new(&runner.egraph, AstDepth);
            ex.find_best_cost(runner.roots[0]).unwrap()
        };
        // Depth 4 flat chain must improve to at most... the balanced tree has
        // depth 3 (leaves count as depth 1).
        assert!(size_before <= 4);
        assert!(size_before >= 3);
    }

    #[test]
    fn extractor_covers_all_reachable_classes() {
        let expr: RecExpr<SymbolLang> = "(f (g a) (h b c))".parse().unwrap();
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        for id in eg.class_ids() {
            assert!(ex.find_best_cost(id).is_some(), "class {id} missing cost");
        }
        let (cost, best) = ex.find_best(root);
        assert_eq!(cost, 6);
        assert_eq!(best.to_string(), "(f (g a) (h b c))");
    }

    #[test]
    fn selection_builds_dag_metrics() {
        let expr: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let sel = ex.selection();
        // Classes: a, b, (* a b), (+ ..): 4 distinct.
        assert_eq!(sel.dag_size(&eg, &[root]), 4);
        assert_eq!(sel.depth(&eg, &[root]), 3);
        let expr_back = sel.to_recexpr(&eg, root);
        assert_eq!(expr_back.to_string(), "(+ (* a b) (* a b))");
    }

    #[test]
    fn missing_selection_is_a_typed_error() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = eg.add(SymbolLang::leaf("a"));
        let f = eg.add(SymbolLang::new("f", vec![a]));
        eg.rebuild();
        let root = eg.find(f);
        let mut choices = FxHashMap::default();
        choices.insert(root, SymbolLang::new("f", vec![a]));
        // The child class `a` has no selection.
        let sel = DagSelection { choices };
        let err = sel.try_to_recexpr(&eg, root).unwrap_err();
        assert_eq!(err, SelectionError::Missing(eg.find(a)));
    }

    #[test]
    fn cyclic_selection_is_a_typed_error() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = eg.add(SymbolLang::leaf("a"));
        let f = eg.add(SymbolLang::new("f", vec![a]));
        eg.union(a, f);
        eg.rebuild();
        let root = eg.find(f);
        // Select the `f`-node for its own (merged) class: f = f(f(...)).
        let mut choices = FxHashMap::default();
        choices.insert(root, SymbolLang::new("f", vec![root]));
        let sel = DagSelection { choices };
        let err = sel.try_to_recexpr(&eg, root).unwrap_err();
        assert!(matches!(err, SelectionError::Cyclic(_)));
    }

    #[test]
    fn selection_override_changes_result() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        eg.union(a, b);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let mut sel = ex.selection();
        let class = eg.find(a);
        sel.set(class, SymbolLang::leaf("b"));
        let expr = sel.to_recexpr(&eg, class);
        assert_eq!(expr.to_string(), "b");
    }
}
