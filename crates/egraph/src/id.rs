//! E-class identifiers.

use serde::{Deserialize, Serialize};

/// An opaque identifier of an e-class inside an [`crate::EGraph`].
///
/// Ids are only meaningful relative to the e-graph that produced them and may
/// become non-canonical after unions; use [`crate::EGraph::find`] to
/// canonicalize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Id(pub u32);

impl Id {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(value: usize) -> Self {
        Id(value as u32)
    }
}

impl From<u32> for Id {
    fn from(value: u32) -> Self {
        Id(value)
    }
}

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Id::from(3usize).index(), 3);
        assert_eq!(Id::from(7u32), Id(7));
        assert_eq!(Id(5).to_string(), "5");
    }
}
