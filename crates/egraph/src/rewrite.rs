//! Rewrite rules: a named left-hand-side pattern and a right-hand-side
//! pattern, applied non-destructively by adding equalities to the e-graph.

use crate::{EGraph, FromOp, Id, Language, ParseError, Pattern, SearchMatches};

/// A rewrite rule `lhs => rhs`.
///
/// Applying a rewrite never removes information: for every match of `lhs`,
/// the instantiated `rhs` is added to the e-graph and unioned with the
/// matched class (the essence of equality saturation).
#[derive(Debug, Clone)]
pub struct Rewrite<L> {
    /// Human-readable rule name (used in reports).
    pub name: String,
    /// The pattern to search for.
    pub lhs: Pattern<L>,
    /// The pattern to instantiate and union with each match.
    pub rhs: Pattern<L>,
}

impl<L: FromOp> Rewrite<L> {
    /// Parses a rewrite from s-expression pattern strings.
    ///
    /// # Errors
    /// Returns a [`ParseError`] if either side fails to parse or if the
    /// right-hand side uses a variable not bound on the left-hand side.
    pub fn parse(name: impl Into<String>, lhs: &str, rhs: &str) -> Result<Self, ParseError> {
        let name = name.into();
        let lhs: Pattern<L> = lhs.parse()?;
        let rhs: Pattern<L> = rhs.parse()?;
        let bound = lhs.vars();
        for var in rhs.vars() {
            if !bound.contains(&var) {
                return Err(ParseError(format!(
                    "rewrite '{name}': rhs variable {var} is not bound by the lhs"
                )));
            }
        }
        Ok(Rewrite { name, lhs, rhs })
    }
}

impl<L: Language> Rewrite<L> {
    /// Searches the left-hand side over the whole e-graph.
    pub fn search(&self, egraph: &EGraph<L>, match_limit: usize) -> Vec<SearchMatches> {
        self.lhs.search(egraph, match_limit)
    }

    /// Searches with a rotated class-scan start, also reporting whether the
    /// scan was complete; see [`Pattern::search_rotated`].
    pub fn search_rotated(
        &self,
        egraph: &EGraph<L>,
        match_limit: usize,
        rotation: usize,
    ) -> (Vec<SearchMatches>, bool) {
        self.lhs.search_rotated(egraph, match_limit, rotation)
    }

    /// Candidate classes of the left-hand side, in deterministic order; see
    /// [`Pattern::candidate_classes`].
    pub fn candidate_classes(&self, egraph: &EGraph<L>) -> Vec<Id> {
        self.lhs.candidate_classes(egraph)
    }

    /// Searches the left-hand side over one contiguous shard of candidate
    /// classes under its own budget; see [`Pattern::search_classes`].
    pub fn search_classes(
        &self,
        egraph: &EGraph<L>,
        classes: &[Id],
        match_limit: usize,
    ) -> (Vec<SearchMatches>, bool) {
        self.lhs.search_classes(egraph, classes, match_limit)
    }

    /// Applies the rewrite to previously found matches. Returns the number of
    /// unions that actually changed the e-graph.
    pub fn apply(&self, egraph: &mut EGraph<L>, matches: &[SearchMatches]) -> usize {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                let new_id = self.rhs.apply_one(egraph, subst);
                let (_, did) = egraph.union(m.eclass, new_id);
                if did {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Convenience: search then apply in one step.
    pub fn run(&self, egraph: &mut EGraph<L>, match_limit: usize) -> usize {
        let matches = self.search(egraph, match_limit);
        self.apply(egraph, &matches)
    }
}

#[cfg(test)]
#[allow(deprecated)] // legacy string-typed check_invariants shim is still exercised here
mod tests {
    use super::*;
    use crate::{RecExpr, SymbolLang};

    #[test]
    fn parse_checks_rhs_variables() {
        assert!(Rewrite::<SymbolLang>::parse("ok", "(+ ?a ?b)", "(+ ?b ?a)").is_ok());
        assert!(Rewrite::<SymbolLang>::parse("bad", "(+ ?a ?b)", "(+ ?a ?c)").is_err());
        assert!(Rewrite::<SymbolLang>::parse("bad-lhs", "(+ ?a", "(+ ?a ?a)").is_err());
    }

    #[test]
    fn commutativity_merges_classes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let ab: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        let ba: RecExpr<SymbolLang> = "(+ b a)".parse().unwrap();
        let r_ab = eg.add_expr(&ab);
        let r_ba = eg.add_expr(&ba);
        eg.rebuild();
        assert!(!eg.same(r_ab, r_ba));

        let comm = Rewrite::<SymbolLang>::parse("comm", "(+ ?x ?y)", "(+ ?y ?x)").unwrap();
        comm.run(&mut eg, usize::MAX);
        eg.rebuild();
        assert!(eg.same(r_ab, r_ba));
        eg.check_invariants().unwrap();
    }

    #[test]
    fn rewriting_is_non_destructive() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(* a 1)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let nodes_before = eg.total_nodes();
        let identity = Rewrite::<SymbolLang>::parse("mul-one", "(* ?x 1)", "?x").unwrap();
        identity.run(&mut eg, usize::MAX);
        eg.rebuild();
        // The original (* a 1) node is still present...
        assert!(eg.total_nodes() >= nodes_before - 1);
        // ...and the root class now also contains the leaf `a`.
        let a = eg.lookup(&SymbolLang::leaf("a")).unwrap();
        assert!(eg.same(root, a));
    }

    #[test]
    fn apply_reports_zero_when_saturated() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        eg.add_expr(&expr);
        eg.rebuild();
        let comm = Rewrite::<SymbolLang>::parse("comm", "(+ ?x ?y)", "(+ ?y ?x)").unwrap();
        assert!(comm.run(&mut eg, usize::MAX) > 0);
        eg.rebuild();
        // Second application discovers nothing new.
        assert_eq!(comm.run(&mut eg, usize::MAX), 0);
    }
}
