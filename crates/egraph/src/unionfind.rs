//! Union-find (disjoint set) over e-class ids with union-by-size and path
//! compression.

use crate::Id;

/// A union-find structure mapping every [`Id`] to its canonical representative.
///
/// [`UnionFind::union`] merges by set size (the smaller set's root is
/// re-parented under the larger set's root; ties keep the first argument's
/// root), and [`UnionFind::find_mut`] compresses paths, so a sequence of `m`
/// operations over `n` ids costs O(m α(n)) — effectively constant per
/// operation.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
    /// Set sizes, meaningful only at root indices.
    sizes: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty union-find.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh set containing only the returned id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        self.sizes.push(1);
        id
    }

    /// Number of ids ever created (not the number of distinct sets).
    #[inline]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` if no ids have been created.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Finds the canonical representative without mutating (no compression).
    #[inline]
    pub fn find(&self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            id = self.parents[id.index()];
        }
        id
    }

    /// Finds the canonical representative, compressing paths along the way.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        let mut root = id;
        while self.parents[root.index()] != root {
            root = self.parents[root.index()];
        }
        // Path compression.
        while self.parents[id.index()] != root {
            let next = self.parents[id.index()];
            self.parents[id.index()] = root;
            id = next;
        }
        root
    }

    /// Number of ids in the set containing `id`.
    pub fn set_size(&self, id: Id) -> usize {
        self.sizes[self.find(id).index()] as usize
    }

    /// Merges the sets of `a` and `b` by size: the smaller set's root is
    /// re-parented under the larger set's root (ties keep `a`'s root).
    /// Returns the surviving root.
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let ra = self.find_mut(a);
        let rb = self.find_mut(b);
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.sizes[ra.index()] >= self.sizes[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parents[loser.index()] = winner;
        self.sizes[winner.index()] += self.sizes[loser.index()];
        winner
    }

    /// Returns `true` if two ids are currently in the same set.
    #[inline]
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// The raw parent slot of `id` (one step, no root chase, no
    /// compression). The `audit` crate's union-find checker walks parent
    /// chains with a step budget through this, so it can diagnose a
    /// corrupted structure on which [`UnionFind::find`] would not terminate.
    #[inline]
    pub fn parent(&self, id: Id) -> Id {
        self.parents[id.index()]
    }

    /// Raw stored size slot of `id` (meaningful only at roots), without the
    /// root chase of [`UnionFind::set_size`].
    #[inline]
    pub fn raw_size(&self, id: Id) -> u32 {
        self.sizes[id.index()]
    }

    /// Corruption hook for the `audit` crate's mutation tests; never call
    /// from production code.
    #[doc(hidden)]
    pub fn tamper_set_size(&mut self, id: Id, size: u32) {
        self.sizes[id.index()] = size;
    }

    /// Corruption hook for the `audit` crate's mutation tests: overwrites a
    /// raw parent slot, which can introduce cycles (on which [`Self::find`]
    /// would not terminate) or out-of-range parents. Never call from
    /// production code.
    #[doc(hidden)]
    pub fn tamper_set_parent(&mut self, id: Id, parent: Id) {
        self.parents[id.index()] = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_distinct() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        assert_ne!(uf.find(a), uf.find(b));
        assert_ne!(uf.find(b), uf.find(c));
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn union_merges_and_keeps_first_root() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let root = uf.union(a, b);
        assert_eq!(root, a);
        assert!(uf.same(a, b));
        assert_eq!(uf.find(b), a);
    }

    #[test]
    fn union_by_size_keeps_larger_root() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        // {a, b} has size 2; unioning with the singleton {c} keeps a's root
        // even when c is the first argument.
        uf.union(a, b);
        let root = uf.union(c, a);
        assert_eq!(root, a);
        assert_eq!(uf.set_size(c), 3);
    }

    #[test]
    fn transitive_unions() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        for pair in ids.chunks(2) {
            uf.union(pair[0], pair[1]);
        }
        uf.union(ids[0], ids[2]);
        uf.union(ids[2], ids[4]);
        assert!(uf.same(ids[1], ids[5]));
        assert!(!uf.same(ids[0], ids[6]));
    }

    #[test]
    fn path_compression_preserves_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..100).map(|_| uf.make_set()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        let root = uf.find(ids[0]);
        for &id in &ids {
            assert_eq!(uf.find_mut(id), root);
        }
    }

    #[test]
    fn sizes_track_set_cardinality() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..8).map(|_| uf.make_set()).collect();
        assert_eq!(uf.set_size(ids[0]), 1);
        uf.union(ids[0], ids[1]);
        uf.union(ids[2], ids[3]);
        uf.union(ids[0], ids[2]);
        assert_eq!(uf.set_size(ids[3]), 4);
        assert_eq!(uf.set_size(ids[7]), 1);
    }
}
