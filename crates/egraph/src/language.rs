//! The term language an e-graph operates over, plus [`RecExpr`] terms and
//! s-expression parsing/printing.

use crate::{Id, ParseError};
use std::fmt::Debug;
use std::hash::Hash;
use std::str::FromStr;

/// An operator applied to child e-classes — one node of a term language.
///
/// Implementors are plain enums/structs whose children are [`Id`]s. Two nodes
/// *match* when they have the same operator and arity, regardless of the
/// specific children; this is the notion the e-graph's congruence closure and
/// the pattern matcher rely on.
///
/// `Send + Sync` are supertraits so that a shared `&EGraph<L>` can be
/// searched from the [`crate::Runner`]'s parallel worker threads; languages
/// are plain value types (operators plus `Id` children), so the bounds are
/// free in practice.
pub trait Language: Debug + Clone + Eq + Ord + Hash + Send + Sync {
    /// Returns the child e-class ids of this node.
    fn children(&self) -> &[Id];

    /// Returns the child e-class ids mutably.
    fn children_mut(&mut self) -> &mut [Id];

    /// Returns `true` if `self` and `other` have the same operator and arity.
    fn matches(&self, other: &Self) -> bool;

    /// Returns the operator as a display string (used for s-expressions and
    /// serialization).
    fn op_str(&self) -> String;

    /// A 64-bit discriminator key grouping nodes that could [`Language::matches`]
    /// each other, used by the e-graph's operator index to prune pattern
    /// search.
    ///
    /// **Contract:** `a.matches(b)` implies `a.op_key() == b.op_key()`.
    /// Collisions in the other direction are sound (the matcher re-checks
    /// `matches`), they only reduce pruning. The default hashes
    /// `(op_str, arity)`; implementors should override it when `op_str`
    /// allocates (see [`op_key_of`]).
    fn op_key(&self) -> u64 {
        op_key_of(&self.op_str(), self.children().len())
    }

    /// Returns `true` if this node has no children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Applies `f` to every child id, producing an updated copy.
    fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> Self {
        let mut node = self.clone();
        for child in node.children_mut() {
            *child = f(*child);
        }
        node
    }

    /// Applies `f` to every child id in place.
    fn update_children(&mut self, mut f: impl FnMut(Id) -> Id) {
        for child in self.children_mut() {
            *child = f(*child);
        }
    }

    /// Calls `f` on every child id.
    fn for_each_child(&self, mut f: impl FnMut(Id)) {
        for &child in self.children() {
            f(child);
        }
    }
}

/// Hashes an operator spelling and arity into a [`Language::op_key`]
/// discriminator, so custom languages can implement the key without
/// allocating the `op_str` string on the hot path.
pub fn op_key_of(op: &str, arity: usize) -> u64 {
    use std::hash::Hasher;
    let mut hasher = fxhash::FxHasher::default();
    hasher.write(op.as_bytes());
    hasher.write_usize(arity);
    hasher.finish()
}

/// Construction of language nodes from an operator string and children, used
/// for parsing terms, patterns and serialized e-graphs.
pub trait FromOp: Language {
    /// Builds a node from its operator spelling and child ids.
    ///
    /// # Errors
    /// Returns an error if the operator is unknown or the arity is wrong.
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, ParseError>;
}

/// A generic language where every node is an arbitrary operator symbol with
/// any number of children — the analogue of egg's `SymbolLang`.
///
/// Useful for tests and for quick experiments where a typed language is
/// unnecessary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolLang {
    /// Operator name.
    pub op: String,
    /// Child e-classes.
    pub children: Vec<Id>,
}

impl SymbolLang {
    /// Creates a leaf node.
    pub fn leaf(op: impl Into<String>) -> Self {
        SymbolLang {
            op: op.into(),
            children: Vec::new(),
        }
    }

    /// Creates a node with children.
    pub fn new(op: impl Into<String>, children: Vec<Id>) -> Self {
        SymbolLang {
            op: op.into(),
            children,
        }
    }
}

impl Language for SymbolLang {
    fn children(&self) -> &[Id] {
        &self.children
    }

    fn children_mut(&mut self) -> &mut [Id] {
        &mut self.children
    }

    fn matches(&self, other: &Self) -> bool {
        self.op == other.op && self.children.len() == other.children.len()
    }

    fn op_str(&self) -> String {
        self.op.clone()
    }

    fn op_key(&self) -> u64 {
        op_key_of(&self.op, self.children.len())
    }
}

impl FromOp for SymbolLang {
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, ParseError> {
        Ok(SymbolLang::new(op, children))
    }
}

/// A term: a DAG of language nodes stored in topological order (children
/// always precede parents). The last node is the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Adds a node whose children must already be present, returning its id.
    pub fn add(&mut self, node: L) -> Id {
        debug_assert!(
            node.children().iter().all(|c| c.index() < self.nodes.len()),
            "a RecExpr node's children must be added before the node itself"
        );
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    /// Returns the nodes in topological order.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }

    /// Returns the root id (the last node).
    ///
    /// # Panics
    /// Panics if the expression is empty.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from(self.nodes.len() - 1)
    }

    /// Number of nodes (DAG size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the expression has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Computes the *tree* size of the expression (with sharing expanded),
    /// saturating at `u64::MAX`. This is the size an S-expression printout
    /// would have and is what makes flattened representations blow up.
    pub fn tree_size(&self) -> u64 {
        let mut sizes = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut size = 1u64;
            for child in node.children() {
                size = size.saturating_add(sizes[child.index()]);
            }
            sizes[i] = size;
        }
        sizes.last().copied().unwrap_or(0)
    }

    /// Computes the depth of the expression (leaves have depth 1).
    pub fn depth(&self) -> u64 {
        let mut depths = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let child_max = node
                .children()
                .iter()
                .map(|c| depths[c.index()])
                .max()
                .unwrap_or(0);
            depths[i] = 1 + child_max;
        }
        depths.last().copied().unwrap_or(0)
    }

    fn fmt_sexpr(&self, id: Id, out: &mut String) {
        let node = self.node(id);
        if node.is_leaf() {
            out.push_str(&node.op_str());
        } else {
            out.push('(');
            out.push_str(&node.op_str());
            for &child in node.children() {
                out.push(' ');
                self.fmt_sexpr(child, out);
            }
            out.push(')');
        }
    }
}

impl<L> AsRef<[L]> for RecExpr<L> {
    fn as_ref(&self) -> &[L] {
        &self.nodes
    }
}

impl<L: Language> std::fmt::Display for RecExpr<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "()");
        }
        let mut out = String::new();
        self.fmt_sexpr(self.root(), &mut out);
        write!(f, "{out}")
    }
}

/// S-expression tokens and parsing shared by [`RecExpr`] and patterns.
pub(crate) fn parse_sexpr_into<L, F>(text: &str, mut make: F) -> Result<Vec<L>, ParseError>
where
    F: FnMut(&str, Vec<Id>, &mut Vec<L>) -> Result<Id, ParseError>,
{
    #[derive(Debug)]
    enum Tok {
        Open,
        Close,
        Atom(String),
    }
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(Tok::Atom(std::mem::take(&mut cur)));
                }
                tokens.push(if ch == '(' { Tok::Open } else { Tok::Close });
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(Tok::Atom(std::mem::take(&mut cur)));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(Tok::Atom(cur));
    }
    if tokens.is_empty() {
        return Err(ParseError("empty s-expression".into()));
    }

    // Recursive descent over the token stream.
    struct P<'a> {
        tokens: &'a [Tok],
        pos: usize,
    }
    type MakeNode<'f, L> = dyn FnMut(&str, Vec<Id>, &mut Vec<L>) -> Result<Id, ParseError> + 'f;
    fn parse_node<L>(
        p: &mut P,
        nodes: &mut Vec<L>,
        make: &mut MakeNode<'_, L>,
    ) -> Result<Id, ParseError> {
        match p.tokens.get(p.pos) {
            Some(Tok::Atom(op)) => {
                p.pos += 1;
                make(op, Vec::new(), nodes)
            }
            Some(Tok::Open) => {
                p.pos += 1;
                let op = match p.tokens.get(p.pos) {
                    Some(Tok::Atom(op)) => op.clone(),
                    _ => return Err(ParseError("expected operator after '('".into())),
                };
                p.pos += 1;
                let mut children = Vec::new();
                loop {
                    match p.tokens.get(p.pos) {
                        Some(Tok::Close) => {
                            p.pos += 1;
                            break;
                        }
                        Some(_) => children.push(parse_node(p, nodes, make)?),
                        None => return Err(ParseError("unclosed '('".into())),
                    }
                }
                make(&op, children, nodes)
            }
            Some(Tok::Close) => Err(ParseError("unexpected ')'".into())),
            None => Err(ParseError("unexpected end of input".into())),
        }
    }

    let mut p = P {
        tokens: &tokens,
        pos: 0,
    };
    let mut nodes = Vec::new();
    let mut make_dyn = |op: &str, children: Vec<Id>, nodes: &mut Vec<L>| make(op, children, nodes);
    parse_node(&mut p, &mut nodes, &mut make_dyn)?;
    if p.pos != tokens.len() {
        return Err(ParseError("trailing tokens after s-expression".into()));
    }
    Ok(nodes)
}

impl<L: FromOp> FromStr for RecExpr<L> {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let nodes = parse_sexpr_into::<L, _>(s, |op, children, nodes| {
            let node = L::from_op(op, children)?;
            nodes.push(node);
            Ok(Id::from(nodes.len() - 1))
        })?;
        Ok(RecExpr { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let expr: RecExpr<SymbolLang> = "(+ (* a b) c)".parse().unwrap();
        assert_eq!(expr.to_string(), "(+ (* a b) c)");
        assert_eq!(expr.len(), 5);
        assert_eq!(expr.depth(), 3);
    }

    #[test]
    fn parse_single_atom() {
        let expr: RecExpr<SymbolLang> = "x".parse().unwrap();
        assert_eq!(expr.to_string(), "x");
        assert_eq!(expr.len(), 1);
        assert!(expr.node(expr.root()).is_leaf());
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(+ a".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(+ a) b".parse::<RecExpr<SymbolLang>>().is_err());
        assert!(")".parse::<RecExpr<SymbolLang>>().is_err());
    }

    #[test]
    fn tree_size_counts_duplication() {
        // (+ (* a b) (* a b)) as a tree counts the shared product twice when
        // built syntactically (the parser does not hash-cons).
        let expr: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
        assert_eq!(expr.tree_size(), 7);
    }

    #[test]
    fn matches_ignores_children() {
        let a = SymbolLang::new("+", vec![Id(0), Id(1)]);
        let b = SymbolLang::new("+", vec![Id(5), Id(9)]);
        let c = SymbolLang::new("*", vec![Id(0), Id(1)]);
        let d = SymbolLang::new("+", vec![Id(0)]);
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        assert!(!a.matches(&d));
    }

    #[test]
    fn map_children_updates_ids() {
        let node = SymbolLang::new("+", vec![Id(0), Id(1)]);
        let shifted = node.map_children(|id| Id(id.0 + 10));
        assert_eq!(shifted.children(), &[Id(10), Id(11)]);
        assert_eq!(node.children(), &[Id(0), Id(1)]);
    }
}
