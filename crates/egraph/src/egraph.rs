//! The e-graph: hash-consed e-nodes grouped into e-classes with deferred
//! congruence-closure maintenance ("rebuilding").

use crate::fxhash::FxHashMap;
use crate::{Id, Language, RecExpr, UnionFind};

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L> {
    /// Canonical id of this class.
    pub id: Id,
    /// The e-nodes belonging to this class. After [`EGraph::rebuild`] the
    /// children of every node are canonical and the list is deduplicated.
    pub nodes: Vec<L>,
}

impl<L: Language> EClass<L> {
    /// Number of e-nodes in the class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the class has no nodes (never the case in a
    /// well-formed e-graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes of this class.
    pub fn iter(&self) -> impl Iterator<Item = &L> {
        self.nodes.iter()
    }
}

/// An e-graph over language `L`.
///
/// The e-graph maintains a congruence relation over its e-classes: if two
/// classes are merged, any two nodes that become structurally identical up to
/// class equivalence are merged as well. Following egg, congruence repair is
/// *deferred*: callers perform any number of [`EGraph::add`] / [`EGraph::union`]
/// operations and then call [`EGraph::rebuild`] once, which restores the
/// invariants in bulk. This crate implements rebuilding as whole-graph
/// canonicalization passes, which is simpler than egg's incremental parent
/// repair and fast enough for the few rewrite iterations E-morphic uses.
#[derive(Debug, Clone, Default)]
pub struct EGraph<L: Language> {
    unionfind: UnionFind,
    memo: FxHashMap<L, Id>,
    classes: FxHashMap<Id, EClass<L>>,
    dirty: bool,
    n_unions: usize,
}

impl<L: Language> EGraph<L> {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        EGraph {
            unionfind: UnionFind::new(),
            memo: FxHashMap::default(),
            classes: FxHashMap::default(),
            dirty: false,
            n_unions: 0,
        }
    }

    /// Canonicalizes an e-class id.
    #[inline]
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Returns the canonical form of an e-node (children canonicalized).
    pub fn canonicalize(&self, node: &L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// Looks up an e-node, returning its class if it is already represented.
    pub fn lookup(&self, node: &L) -> Option<Id> {
        let node = self.canonicalize(node);
        self.memo.get(&node).map(|&id| self.find(id))
    }

    /// Adds an e-node (hash-consed); returns the id of its e-class.
    pub fn add(&mut self, node: L) -> Id {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = self.unionfind.make_set();
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![node.clone()],
            },
        );
        self.memo.insert(node, id);
        id
    }

    /// Adds every node of a [`RecExpr`], returning the class of its root.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.as_ref() {
            let node = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(node));
        }
        *ids.last().expect("cannot add an empty expression")
    }

    /// Merges two e-classes. Returns the surviving canonical id and whether
    /// anything changed. Congruence is restored lazily by [`EGraph::rebuild`].
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        let root = self.unionfind.union(a, b);
        let loser = if root == a { b } else { a };
        let loser_class = self.classes.remove(&loser).expect("loser class must exist");
        self.classes
            .get_mut(&root)
            .expect("winner class must exist")
            .nodes
            .extend(loser_class.nodes);
        self.n_unions += 1;
        self.dirty = true;
        (root, true)
    }

    /// Returns `true` if the two ids refer to the same e-class.
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Restores the congruence and hash-consing invariants after a batch of
    /// unions. Returns the number of additional unions performed by
    /// congruence propagation.
    pub fn rebuild(&mut self) -> usize {
        let mut congruence_unions = 0;
        loop {
            // Detect congruent nodes across classes under the current
            // union-find and merge their classes.
            let mut seen: FxHashMap<L, Id> = FxHashMap::default();
            let mut to_union: Vec<(Id, Id)> = Vec::new();
            for (&id, class) in &self.classes {
                for node in &class.nodes {
                    let canon = node.map_children(|c| self.unionfind.find(c));
                    match seen.get(&canon) {
                        Some(&other) => {
                            if self.unionfind.find(other) != self.unionfind.find(id) {
                                to_union.push((other, id));
                            }
                        }
                        None => {
                            seen.insert(canon, id);
                        }
                    }
                }
            }
            if to_union.is_empty() {
                break;
            }
            for (a, b) in to_union {
                let (_, merged) = self.union(a, b);
                if merged {
                    congruence_unions += 1;
                }
            }
        }
        // Canonicalize the node lists and rebuild the hashcons.
        let uf = &self.unionfind;
        let mut memo: FxHashMap<L, Id> = FxHashMap::default();
        for (&id, class) in self.classes.iter_mut() {
            class.id = id;
            for node in &mut class.nodes {
                node.update_children(|c| uf.find(c));
            }
            class.nodes.sort();
            class.nodes.dedup();
            for node in &class.nodes {
                memo.insert(node.clone(), id);
            }
        }
        self.memo = memo;
        self.dirty = false;
        congruence_unions
    }

    /// Returns `true` if unions have been performed since the last rebuild.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across all classes.
    pub fn total_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Total number of unions performed (including congruence-induced ones).
    pub fn num_unions(&self) -> usize {
        self.n_unions
    }

    /// Returns the e-class with the given id (canonicalized).
    ///
    /// # Panics
    /// Panics if the id does not refer to an existing class.
    pub fn class(&self, id: Id) -> &EClass<L> {
        let id = self.find(id);
        &self.classes[&id]
    }

    /// Returns the e-class with the given id, if it exists.
    pub fn get_class(&self, id: Id) -> Option<&EClass<L>> {
        let id = self.find(id);
        self.classes.get(&id)
    }

    /// Iterates over all e-classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L>> {
        self.classes.values()
    }

    /// Iterates over all canonical class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.classes.keys().copied()
    }

    /// Builds, for every class, the list of `(parent class, parent node)`
    /// pairs that reference it. The e-graph must be clean (rebuilt).
    pub fn parent_index(&self) -> FxHashMap<Id, Vec<(Id, L)>> {
        debug_assert!(!self.dirty, "parent_index requires a rebuilt e-graph");
        let mut parents: FxHashMap<Id, Vec<(Id, L)>> = FxHashMap::default();
        for class in self.classes.values() {
            for node in &class.nodes {
                for &child in node.children() {
                    parents
                        .entry(self.find(child))
                        .or_default()
                        .push((class.id, node.clone()));
                }
            }
        }
        parents
    }

    /// Checks internal invariants (used by tests and property tests):
    /// every class key is canonical, every node's children are canonical,
    /// and no two distinct classes contain the same canonical node.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.dirty {
            return Err("e-graph is dirty; call rebuild() first".into());
        }
        let mut seen: FxHashMap<&L, Id> = FxHashMap::default();
        for (&id, class) in &self.classes {
            if self.find(id) != id {
                return Err(format!("class key {id} is not canonical"));
            }
            if class.nodes.is_empty() {
                return Err(format!("class {id} is empty"));
            }
            for node in &class.nodes {
                for &child in node.children() {
                    if self.find(child) != child {
                        return Err(format!(
                            "node {node:?} in class {id} has non-canonical child {child}"
                        ));
                    }
                }
                if let Some(&other) = seen.get(node) {
                    if other != id {
                        return Err(format!(
                            "congruence violated: {node:?} appears in classes {other} and {id}"
                        ));
                    }
                }
                seen.insert(node, id);
                match self.memo.get(node) {
                    Some(&m) if self.find(m) == id => {}
                    Some(&m) => {
                        return Err(format!(
                            "hashcons points {node:?} to {m} but it lives in {id}"
                        ))
                    }
                    None => return Err(format!("node {node:?} missing from hashcons")),
                }
            }
        }
        Ok(())
    }

    /// Extracts an arbitrary concrete term from a class (smallest node first),
    /// mainly for debugging. Use [`crate::Extractor`] for cost-aware extraction.
    pub fn id_to_expr(&self, root: Id) -> RecExpr<L> {
        let mut expr = RecExpr::default();
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        self.id_to_expr_rec(self.find(root), &mut expr, &mut cache, 0);
        expr
    }

    fn id_to_expr_rec(
        &self,
        id: Id,
        expr: &mut RecExpr<L>,
        cache: &mut FxHashMap<Id, Id>,
        depth: usize,
    ) -> Id {
        if let Some(&done) = cache.get(&id) {
            return done;
        }
        assert!(
            depth < 10_000,
            "id_to_expr recursion too deep (cyclic choice?)"
        );
        let class = self.class(id);
        // Prefer leaves to avoid infinite recursion through cyclic classes.
        let node = class
            .nodes
            .iter()
            .min_by_key(|n| n.children().len())
            .expect("non-empty class");
        let node = node.map_children(|c| self.id_to_expr_rec(self.find(c), expr, cache, depth + 1));
        let out = expr.add(node);
        cache.insert(id, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    fn leaf(egraph: &mut EGraph<SymbolLang>, name: &str) -> Id {
        egraph.add(SymbolLang::leaf(name))
    }

    #[test]
    fn hashconsing_deduplicates() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a1 = leaf(&mut eg, "a");
        let a2 = leaf(&mut eg, "a");
        assert_eq!(a1, a2);
        assert_eq!(eg.num_classes(), 1);
        let f1 = eg.add(SymbolLang::new("f", vec![a1]));
        let f2 = eg.add(SymbolLang::new("f", vec![a2]));
        assert_eq!(f1, f2);
        assert_eq!(eg.num_classes(), 2);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        assert!(!eg.same(a, b));
        let (_, changed) = eg.union(a, b);
        assert!(changed);
        eg.rebuild();
        assert!(eg.same(a, b));
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.class(a).len(), 2);
        let (_, changed_again) = eg.union(a, b);
        assert!(!changed_again);
    }

    #[test]
    fn congruence_propagates_upward() {
        // f(a), f(b): after union(a, b) and rebuild, f(a) == f(b).
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        assert!(!eg.same(fa, fb));
        eg.union(a, b);
        let extra = eg.rebuild();
        assert!(extra >= 1);
        assert!(eg.same(fa, fb));
        eg.check_invariants().unwrap();
    }

    #[test]
    fn congruence_propagates_transitively() {
        // g(f(a)), g(f(b)): one union at the leaves collapses two levels.
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        let gfa = eg.add(SymbolLang::new("g", vec![fa]));
        let gfb = eg.add(SymbolLang::new("g", vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.same(gfa, gfb));
        eg.check_invariants().unwrap();
    }

    #[test]
    fn add_expr_builds_dag() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
        let root = eg.add_expr(&expr);
        // Shared sub-expressions are hash-consed: a, b, (* a b), (+ _ _).
        assert_eq!(eg.num_classes(), 4);
        assert_eq!(eg.find(root), root);
        eg.rebuild();
        eg.check_invariants().unwrap();
    }

    #[test]
    fn id_to_expr_roundtrip() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ (* a b) c)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let back = eg.id_to_expr(root);
        assert_eq!(back.to_string(), "(+ (* a b) c)");
    }

    #[test]
    fn lookup_finds_canonical_nodes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        eg.union(a, b);
        eg.rebuild();
        // Looking up f(b) must find the same class as f(a).
        let found = eg.lookup(&SymbolLang::new("f", vec![b]));
        assert_eq!(found, Some(eg.find(fa)));
        assert_eq!(eg.lookup(&SymbolLang::leaf("zzz")), None);
    }

    #[test]
    fn parent_index_lists_users() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let f = eg.add(SymbolLang::new("f", vec![a, b]));
        eg.rebuild();
        let parents = eg.parent_index();
        let pa = &parents[&eg.find(a)];
        assert_eq!(pa.len(), 1);
        assert_eq!(pa[0].0, eg.find(f));
        assert!(!parents.contains_key(&eg.find(f)));
    }

    #[test]
    fn total_nodes_counts_all_enode_variants() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.total_nodes(), 2);
        assert_eq!(eg.num_unions(), 1);
    }
}
