//! The e-graph: hash-consed e-nodes grouped into e-classes with deferred,
//! *incremental* congruence-closure maintenance ("rebuilding").
//!
//! # The worklist algorithm
//!
//! Following egg (Willsey et al., POPL 2021), congruence repair is deferred
//! and worklist-driven rather than implemented as whole-graph
//! canonicalization passes:
//!
//! * Every e-class carries a **parent list**: the `(e-node, class)` pairs
//!   that reference it as a child. [`EGraph::add`] appends to the lists of
//!   the new node's children; [`EGraph::union`] concatenates the loser's
//!   list onto the winner's.
//! * [`EGraph::union`] only updates the union-find (which merges by set size)
//!   and moves the loser's nodes/parents into the winner — it does *not*
//!   restore congruence. Instead the winner is pushed onto a **dirty-class
//!   worklist**.
//! * [`EGraph::rebuild`] drains the worklist: for each dirty class it
//!   re-canonicalizes the parent entries, re-keys the hashcons, and unions
//!   any two parents that collapse to the same canonical e-node (upward
//!   congruence propagation). Unions performed during repair push new dirty
//!   classes, so the loop runs to a fixpoint.
//! * Only classes whose nodes could have gone stale (parents of dirty
//!   classes and union winners) have their node lists re-canonicalized and
//!   deduplicated at the end of a rebuild.
//!
//! The cost of a `rebuild` is therefore proportional to the **changed region
//! of the graph** — the classes touched by unions and their immediate
//! parents — not to the total graph size. A rebuild with an empty worklist
//! is O(1). The previous pass-based implementation is retained as
//! [`EGraph::rebuild_reference`] so property tests can diff the two.
//!
//! The e-graph also maintains an **operator discriminator index** mapping
//! [`Language::op_key`] values to the classes containing a node with that
//! operator; [`crate::Pattern`] uses it so a rule only visits classes whose
//! nodes can match its root symbol.

use crate::{Id, Language, RecExpr, UnionFind};
use fxhash::{FxHashMap, FxHashSet};

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L> {
    /// Canonical id of this class.
    pub id: Id,
    /// The e-nodes belonging to this class. After [`EGraph::rebuild`] the
    /// children of every node are canonical and the list is deduplicated.
    pub nodes: Vec<L>,
    /// The `(e-node, class)` pairs that reference this class as a child.
    /// Entries may be stale between rebuilds (non-canonical child ids or
    /// class ids); canonicalize through [`EGraph::find`] before use.
    pub(crate) parents: Vec<(L, Id)>,
}

impl<L: Language> EClass<L> {
    /// Number of e-nodes in the class.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the class has no nodes (never the case in a
    /// well-formed e-graph).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes of this class.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &L> {
        self.nodes.iter()
    }

    /// Iterates over the incrementally maintained `(parent e-node, parent
    /// class)` pairs of this class.
    ///
    /// Entries are maintained by [`EGraph::add`]/[`EGraph::union`] and
    /// repaired lazily: a pair's node form or class id may be stale (merged
    /// away) even on a clean graph. Map node children and the class id
    /// through [`EGraph::find`] before comparing; [`EGraph::parent_index`]
    /// does exactly that.
    #[inline]
    pub fn parents(&self) -> impl Iterator<Item = (&L, Id)> {
        self.parents.iter().map(|(node, id)| (node, *id))
    }
}

/// An e-graph over language `L`.
///
/// The e-graph maintains a congruence relation over its e-classes: if two
/// classes are merged, any two nodes that become structurally identical up to
/// class equivalence are merged as well. Following egg, congruence repair is
/// *deferred*: callers perform any number of [`EGraph::add`] / [`EGraph::union`]
/// operations and then call [`EGraph::rebuild`] once, which restores the
/// invariants by draining a dirty-class worklist (see the module docs for the
/// algorithm and its complexity model).
#[derive(Debug, Clone, Default)]
pub struct EGraph<L: Language> {
    unionfind: UnionFind,
    memo: FxHashMap<L, Id>,
    classes: FxHashMap<Id, EClass<L>>,
    /// Operator discriminator index: `op_key` → classes that were created
    /// holding a node with that operator. Ids may be stale (canonicalize on
    /// read); `add` only appends, and rebuild compacts the index alongside
    /// the hashcons once stale entries outnumber live nodes.
    classes_by_op: FxHashMap<u64, Vec<Id>>,
    /// Dirty classes whose parents must be repaired by the next rebuild.
    pending: Vec<Id>,
    /// Classes whose `nodes` lists may hold stale child ids or duplicates.
    stale_nodes: FxHashSet<Id>,
    /// Sum of `nodes.len()` over all classes, maintained incrementally.
    live_nodes: usize,
    n_unions: usize,
}

impl<L: Language> EGraph<L> {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        EGraph {
            unionfind: UnionFind::new(),
            memo: FxHashMap::default(),
            classes: FxHashMap::default(),
            classes_by_op: FxHashMap::default(),
            pending: Vec::new(),
            stale_nodes: FxHashSet::default(),
            live_nodes: 0,
            n_unions: 0,
        }
    }

    /// Canonicalizes an e-class id.
    #[inline]
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Returns the canonical form of an e-node (children canonicalized).
    #[inline]
    pub fn canonicalize(&self, node: &L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// Looks up an e-node, returning its class if it is already represented.
    pub fn lookup(&self, node: &L) -> Option<Id> {
        let node = self.canonicalize(node);
        self.memo.get(&node).map(|&id| self.find(id))
    }

    /// Adds an e-node (hash-consed); returns the id of its e-class.
    pub fn add(&mut self, node: L) -> Id {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = self.unionfind.make_set();
        for &child in node.children() {
            self.classes
                .get_mut(&child)
                .unwrap_or_else(|| unreachable!("canonical child class must exist"))
                .parents
                .push((node.clone(), id));
        }
        self.classes_by_op
            .entry(node.op_key())
            .or_default()
            .push(id);
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![node.clone()],
                parents: Vec::new(),
            },
        );
        self.memo.insert(node, id);
        self.live_nodes += 1;
        id
    }

    /// Adds every node of a [`RecExpr`], returning the class of its root.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.as_ref() {
            let node = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(node));
        }
        match ids.last() {
            Some(&root) => root,
            None => unreachable!("cannot add an empty expression"),
        }
    }

    /// Merges two e-classes. Returns the surviving canonical id and whether
    /// anything changed. Congruence is restored lazily by [`EGraph::rebuild`]:
    /// this only merges the union-find sets (by size), concatenates the node
    /// and parent lists, and enqueues the winner on the dirty worklist.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        let root = self.unionfind.union(a, b);
        let loser = if root == a { b } else { a };
        let loser_class = self
            .classes
            .remove(&loser)
            .unwrap_or_else(|| unreachable!("loser class must exist"));
        let winner = self
            .classes
            .get_mut(&root)
            .unwrap_or_else(|| unreachable!("winner class must exist"));
        winner.nodes.extend(loser_class.nodes);
        winner.parents.extend(loser_class.parents);
        self.n_unions += 1;
        self.pending.push(root);
        self.stale_nodes.insert(root);
        (root, true)
    }

    /// Returns `true` if the two ids refer to the same e-class.
    #[inline]
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Restores the congruence and hash-consing invariants after a batch of
    /// unions by draining the dirty-class worklist (see the module docs).
    /// Returns the number of additional unions performed by congruence
    /// propagation. On an already-clean graph this is O(1).
    pub fn rebuild(&mut self) -> usize {
        let mut congruence_unions = 0;
        while let Some(class) = self.pending.pop() {
            congruence_unions += self.repair(class);
        }
        self.repair_node_lists();
        self.compact_indexes_if_bloated();
        congruence_unions
    }

    /// Repairs the parents of one dirty class: re-canonicalize each parent
    /// entry, re-key the hashcons, and union parents that collapse to the
    /// same canonical e-node. Returns the number of congruence unions.
    fn repair(&mut self, class: Id) -> usize {
        let class = self.unionfind.find_mut(class);
        let mut parents = match self.classes.get_mut(&class) {
            Some(c) => std::mem::take(&mut c.parents),
            None => return 0,
        };
        for (node, pclass) in &mut parents {
            let mut changed = false;
            self.memo.remove(node);
            node.update_children(|c| {
                let root = self.unionfind.find_mut(c);
                changed |= root != c;
                root
            });
            let proot = self.unionfind.find_mut(*pclass);
            changed |= proot != *pclass;
            *pclass = proot;
            if changed {
                // The parent class's node list holds the same (stale) form.
                self.stale_nodes.insert(proot);
            }
        }
        parents.sort_unstable();
        parents.dedup();

        let mut unions = 0;
        for (node, pclass) in &parents {
            if let Some(other) = self.memo.insert(node.clone(), *pclass) {
                if self.find(other) != self.find(*pclass) {
                    let (root, merged) = self.union(other, *pclass);
                    if merged {
                        unions += 1;
                    }
                    self.memo.insert(node.clone(), root);
                }
            }
        }
        // A congruence union above may have merged `class` itself away;
        // reattach the repaired parent entries to the surviving class.
        let owner = self.unionfind.find_mut(class);
        let owner_class = self
            .classes
            .get_mut(&owner)
            .unwrap_or_else(|| unreachable!("canonical class must exist"));
        if owner_class.parents.is_empty() {
            owner_class.parents = parents;
        } else {
            owner_class.parents.extend(parents);
        }
        unions
    }

    /// Re-canonicalizes, sorts and deduplicates the node lists of the classes
    /// marked stale during unions and parent repair.
    fn repair_node_lists(&mut self) {
        let mut stale: Vec<Id> = self
            .stale_nodes
            .drain()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| self.unionfind.find_mut(id))
            .collect();
        stale.sort_unstable();
        stale.dedup();
        let uf = &self.unionfind;
        for id in stale {
            if let Some(class) = self.classes.get_mut(&id) {
                let before = class.nodes.len();
                for node in &mut class.nodes {
                    node.update_children(|c| uf.find(c));
                }
                class.nodes.sort_unstable();
                class.nodes.dedup();
                self.live_nodes -= before - class.nodes.len();
            }
        }
    }

    /// Rebuilds the hashcons and the operator index from the (canonical)
    /// class node lists when stale entries — memo keys left behind by repair,
    /// or op-index ids pointing at merged-away classes — outnumber the live
    /// nodes. Amortized O(1): compaction is linear but only triggers after
    /// linear growth, and both structures shrink back to O(live nodes).
    fn compact_indexes_if_bloated(&mut self) {
        let budget = self.live_nodes.saturating_mul(2);
        let memo_bloated = self.memo.len() > budget;
        let index_bloated = self.classes_by_op.values().map(Vec::len).sum::<usize>() > budget;
        if !memo_bloated && !index_bloated {
            return;
        }
        self.memo.clear();
        self.classes_by_op.clear();
        for class in self.classes.values() {
            for node in &class.nodes {
                self.memo.insert(node.clone(), class.id);
                let ids = self.classes_by_op.entry(node.op_key()).or_default();
                if ids.last() != Some(&class.id) {
                    ids.push(class.id);
                }
            }
        }
        for ids in self.classes_by_op.values_mut() {
            ids.sort_unstable();
            ids.dedup();
        }
    }

    /// The whole-graph canonicalization rebuild this crate used before the
    /// worklist algorithm, retained as a reference implementation ("oracle")
    /// for differential property tests and debugging. Semantically equivalent
    /// to [`EGraph::rebuild`] but O(total graph size) per pass.
    pub fn rebuild_reference(&mut self) -> usize {
        let mut congruence_unions = 0;
        loop {
            // Detect congruent nodes across classes under the current
            // union-find and merge their classes.
            let mut seen: FxHashMap<L, Id> = FxHashMap::default();
            let mut to_union: Vec<(Id, Id)> = Vec::new();
            for (&id, class) in &self.classes {
                for node in &class.nodes {
                    let canon = node.map_children(|c| self.unionfind.find(c));
                    match seen.get(&canon) {
                        Some(&other) => {
                            if self.unionfind.find(other) != self.unionfind.find(id) {
                                to_union.push((other, id));
                            }
                        }
                        None => {
                            seen.insert(canon, id);
                        }
                    }
                }
            }
            if to_union.is_empty() {
                break;
            }
            for (a, b) in to_union {
                let (_, merged) = self.union(a, b);
                if merged {
                    congruence_unions += 1;
                }
            }
        }
        // Canonicalize node and parent lists and rebuild the hashcons from
        // scratch.
        let uf = &self.unionfind;
        let mut memo: FxHashMap<L, Id> = FxHashMap::default();
        let mut live = 0;
        for (&id, class) in self.classes.iter_mut() {
            class.id = id;
            for node in &mut class.nodes {
                node.update_children(|c| uf.find(c));
            }
            class.nodes.sort_unstable();
            class.nodes.dedup();
            live += class.nodes.len();
            for node in &class.nodes {
                memo.insert(node.clone(), id);
            }
            for (node, pclass) in &mut class.parents {
                node.update_children(|c| uf.find(c));
                *pclass = uf.find(*pclass);
            }
            class.parents.sort_unstable();
            class.parents.dedup();
        }
        self.memo = memo;
        self.live_nodes = live;
        self.pending.clear();
        self.stale_nodes.clear();
        self.compact_indexes_if_bloated();
        congruence_unions
    }

    /// Returns `true` if unions have been performed since the last rebuild.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.pending.is_empty() || !self.stale_nodes.is_empty()
    }

    #[inline]
    fn debug_assert_clean(&self, what: &str) {
        debug_assert!(
            !self.is_dirty(),
            "{what} requires a clean e-graph; call rebuild() after union()"
        );
    }

    /// Number of e-classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across all classes. On a dirty graph this
    /// counts not-yet-deduplicated nodes, exactly like summing
    /// [`EClass::len`] over all classes.
    #[inline]
    pub fn total_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Total number of unions performed (including congruence-induced ones).
    #[inline]
    pub fn num_unions(&self) -> usize {
        self.n_unions
    }

    /// Returns the e-class with the given id (canonicalized).
    ///
    /// The graph must be clean (rebuilt): on a dirty graph node lists may
    /// hold stale duplicates, which silently breaks consumers that treat the
    /// list as canonical (debug-asserted).
    ///
    /// # Panics
    /// Panics if the id does not refer to an existing class.
    pub fn class(&self, id: Id) -> &EClass<L> {
        self.debug_assert_clean("class()");
        let id = self.find(id);
        &self.classes[&id]
    }

    /// Returns the e-class with the given id, if it exists. Like
    /// [`EGraph::class`], debug-asserts a clean graph.
    pub fn get_class(&self, id: Id) -> Option<&EClass<L>> {
        self.debug_assert_clean("get_class()");
        let id = self.find(id);
        self.classes.get(&id)
    }

    /// Iterates over all e-classes. Debug-asserts a clean graph.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L>> {
        self.debug_assert_clean("classes()");
        self.classes.values()
    }

    /// Iterates over all canonical class ids. Debug-asserts a clean graph.
    pub fn class_ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.debug_assert_clean("class_ids()");
        self.classes.keys().copied()
    }

    /// Canonical class ids in ascending order. Consumers whose output must
    /// not depend on hash-map iteration order (e.g. the choice-network
    /// exporter, which assigns circuit node ids per class) should enumerate
    /// classes through this instead of [`EGraph::classes`]. Debug-asserts a
    /// clean graph.
    pub fn class_ids_sorted(&self) -> Vec<Id> {
        self.debug_assert_clean("class_ids_sorted()");
        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Returns the canonical ids of the classes containing at least one node
    /// whose [`Language::op_key`] equals `key`, deduplicated, in a
    /// deterministic order. Classes not returned are guaranteed not to
    /// contain a matching node, so pattern search can skip them.
    pub fn classes_for_op(&self, key: u64) -> Vec<Id> {
        self.debug_assert_clean("classes_for_op()");
        let mut out = Vec::new();
        if let Some(ids) = self.classes_by_op.get(&key) {
            let mut seen: FxHashSet<Id> = FxHashSet::default();
            for &id in ids {
                let canon = self.find(id);
                if seen.insert(canon) {
                    out.push(canon);
                }
            }
        }
        out
    }

    /// Builds, for every class, the list of `(parent class, parent node)`
    /// pairs that reference it, from the incrementally maintained per-class
    /// parent lists (canonicalized and deduplicated). The e-graph must be
    /// clean (rebuilt).
    pub fn parent_index(&self) -> FxHashMap<Id, Vec<(Id, L)>> {
        self.debug_assert_clean("parent_index()");
        let mut parents: FxHashMap<Id, Vec<(Id, L)>> = FxHashMap::default();
        for class in self.classes.values() {
            if class.parents.is_empty() {
                continue;
            }
            let mut list: Vec<(Id, L)> = class
                .parents
                .iter()
                .map(|(node, pclass)| (self.find(*pclass), self.canonicalize(node)))
                .collect();
            list.sort_unstable();
            list.dedup();
            parents.insert(class.id, list);
        }
        parents
    }

    // ------------------------------------------------------------------
    // Audit surface
    //
    // Raw read accessors for the `audit` crate's typed invariant checkers.
    // Unlike `classes()`/`class()` these never debug-assert a clean graph,
    // so an auditor can inspect a dirty or deliberately corrupted graph
    // without tripping assertions on the way to its diagnosis.
    // ------------------------------------------------------------------

    /// Iterates the raw hashcons entries `(node, class-at-insert-time)`.
    /// Keys may be stale (non-canonical) forms awaiting compaction; readers
    /// must canonicalize.
    pub fn memo_entries(&self) -> impl Iterator<Item = (&L, Id)> {
        self.memo.iter().map(|(node, &id)| (node, id))
    }

    /// Iterates `(map key, class)` pairs without the clean-graph debug
    /// assertion of [`EGraph::classes`].
    pub fn raw_classes(&self) -> impl Iterator<Item = (Id, &EClass<L>)> {
        self.classes.iter().map(|(&id, class)| (id, class))
    }

    /// Returns the class stored under exactly this key (no canonicalization,
    /// no clean-graph assertion).
    pub fn raw_class(&self, id: Id) -> Option<&EClass<L>> {
        self.classes.get(&id)
    }

    /// The union-find over e-class ids.
    pub fn unionfind(&self) -> &UnionFind {
        &self.unionfind
    }

    /// Iterates the operator-discriminator index entries; listed ids may be
    /// stale (canonicalize on read).
    pub fn op_index_entries(&self) -> impl Iterator<Item = (u64, &[Id])> {
        self.classes_by_op
            .iter()
            .map(|(&key, ids)| (key, ids.as_slice()))
    }

    // ------------------------------------------------------------------
    // Corruption hooks for the `audit` crate's mutation tests. Each one
    // deliberately breaks a single structure so a test can prove the
    // corresponding audit rule detects it. Never call from production code.
    // ------------------------------------------------------------------

    #[doc(hidden)]
    pub fn tamper_memo_insert(&mut self, node: L, id: Id) {
        self.memo.insert(node, id);
    }

    #[doc(hidden)]
    pub fn tamper_memo_remove(&mut self, node: &L) {
        self.memo.remove(node);
    }

    #[doc(hidden)]
    pub fn tamper_class_nodes_mut(&mut self, id: Id) -> Option<&mut Vec<L>> {
        self.classes.get_mut(&id).map(|class| &mut class.nodes)
    }

    #[doc(hidden)]
    pub fn tamper_parents_mut(&mut self, id: Id) -> Option<&mut Vec<(L, Id)>> {
        self.classes.get_mut(&id).map(|class| &mut class.parents)
    }

    #[doc(hidden)]
    pub fn tamper_set_live_nodes(&mut self, n: usize) {
        self.live_nodes = n;
    }

    #[doc(hidden)]
    pub fn tamper_pending_push(&mut self, id: Id) {
        self.pending.push(id);
    }

    #[doc(hidden)]
    pub fn tamper_op_index_clear(&mut self) {
        self.classes_by_op.clear();
    }

    #[doc(hidden)]
    pub fn tamper_unionfind_mut(&mut self) -> &mut UnionFind {
        &mut self.unionfind
    }

    /// Checks internal invariants (used by tests and property tests):
    /// every class key is canonical, every node's children are canonical,
    /// no two distinct classes contain the same canonical node, the node
    /// counter matches the class lists, every canonical hashcons entry points
    /// to the class holding its node, and every child edge is covered by the
    /// child's parent list.
    #[deprecated(note = "use `audit::audit_egraph` for typed per-rule diagnostics; \
                this stringly-typed shim is kept for legacy call sites")]
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.is_dirty() {
            return Err("e-graph is dirty; call rebuild() first".into());
        }
        // Canonicalized views built once so the per-node checks below stay
        // O(1): the parent relation and the operator index.
        let mut parent_sets: FxHashMap<Id, FxHashSet<(L, Id)>> = FxHashMap::default();
        for (&id, class) in &self.classes {
            let set = class
                .parents
                .iter()
                .map(|(node, pclass)| (self.canonicalize(node), self.find(*pclass)))
                .collect();
            parent_sets.insert(id, set);
        }
        let mut op_sets: FxHashMap<u64, FxHashSet<Id>> = FxHashMap::default();
        for (&key, ids) in &self.classes_by_op {
            op_sets.insert(key, ids.iter().map(|&i| self.find(i)).collect());
        }
        let mut seen: FxHashMap<&L, Id> = FxHashMap::default();
        let mut counted = 0usize;
        for (&id, class) in &self.classes {
            if self.find(id) != id {
                return Err(format!("class key {id} is not canonical"));
            }
            if class.id != id {
                return Err(format!("class {id} carries wrong id {}", class.id));
            }
            if class.nodes.is_empty() {
                return Err(format!("class {id} is empty"));
            }
            counted += class.nodes.len();
            for node in &class.nodes {
                for &child in node.children() {
                    if self.find(child) != child {
                        return Err(format!(
                            "node {node:?} in class {id} has non-canonical child {child}"
                        ));
                    }
                }
                if let Some(&other) = seen.get(node) {
                    if other != id {
                        return Err(format!(
                            "congruence violated: {node:?} appears in classes {other} and {id}"
                        ));
                    }
                }
                seen.insert(node, id);
                match self.memo.get(node) {
                    Some(&m) if self.find(m) == id => {}
                    Some(&m) => {
                        return Err(format!(
                            "hashcons points {node:?} to {m} but it lives in {id}"
                        ))
                    }
                    None => return Err(format!("node {node:?} missing from hashcons")),
                }
                // Every child edge must be covered by the child's parent
                // list (entries may be stale; compare canonicalized).
                for &child in node.children() {
                    let covered = parent_sets
                        .get(&child)
                        .is_some_and(|set| set.contains(&(node.clone(), id)));
                    if !covered {
                        return Err(format!(
                            "parent list of class {child} misses parent {node:?} (class {id})"
                        ));
                    }
                }
                // The operator index must cover the class under this node's key.
                let indexed = op_sets
                    .get(&node.op_key())
                    .is_some_and(|ids| ids.contains(&id));
                if !indexed {
                    return Err(format!("op index misses class {id} for node {node:?}"));
                }
            }
        }
        if counted != self.live_nodes {
            return Err(format!(
                "node counter {} disagrees with class lists {counted}",
                self.live_nodes
            ));
        }
        // Canonical hashcons entries must point into the graph consistently;
        // entries keyed under stale forms are unreachable garbage awaiting
        // compaction and are exempt.
        for (node, &id) in &self.memo {
            let canonical = node.children().iter().all(|&c| self.find(c) == c);
            if !canonical {
                continue;
            }
            let class = self.find(id);
            if !self.classes[&class].nodes.iter().any(|n| n == node) {
                return Err(format!(
                    "hashcons entry {node:?} -> {id} not present in class {class}"
                ));
            }
        }
        Ok(())
    }

    /// Extracts an arbitrary concrete term from a class (smallest node first),
    /// mainly for debugging. Use [`crate::Extractor`] for cost-aware extraction.
    pub fn id_to_expr(&self, root: Id) -> RecExpr<L> {
        let mut expr = RecExpr::default();
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        self.id_to_expr_rec(self.find(root), &mut expr, &mut cache, 0);
        expr
    }

    fn id_to_expr_rec(
        &self,
        id: Id,
        expr: &mut RecExpr<L>,
        cache: &mut FxHashMap<Id, Id>,
        depth: usize,
    ) -> Id {
        if let Some(&done) = cache.get(&id) {
            return done;
        }
        assert!(
            depth < 10_000,
            "id_to_expr recursion too deep (cyclic choice?)"
        );
        let class = self.class(id);
        // Prefer leaves to avoid infinite recursion through cyclic classes.
        let node = class
            .nodes
            .iter()
            .min_by_key(|n| n.children().len())
            .unwrap_or_else(|| unreachable!("non-empty class"));
        let node = node.map_children(|c| self.id_to_expr_rec(self.find(c), expr, cache, depth + 1));
        let out = expr.add(node);
        cache.insert(id, out);
        out
    }
}

#[cfg(test)]
#[allow(deprecated)] // legacy string-typed check_invariants shim is still exercised here
mod tests {
    use super::*;
    use crate::SymbolLang;

    fn leaf(egraph: &mut EGraph<SymbolLang>, name: &str) -> Id {
        egraph.add(SymbolLang::leaf(name))
    }

    #[test]
    fn hashconsing_deduplicates() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a1 = leaf(&mut eg, "a");
        let a2 = leaf(&mut eg, "a");
        assert_eq!(a1, a2);
        assert_eq!(eg.num_classes(), 1);
        let f1 = eg.add(SymbolLang::new("f", vec![a1]));
        let f2 = eg.add(SymbolLang::new("f", vec![a2]));
        assert_eq!(f1, f2);
        assert_eq!(eg.num_classes(), 2);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        assert!(!eg.same(a, b));
        let (_, changed) = eg.union(a, b);
        assert!(changed);
        eg.rebuild();
        assert!(eg.same(a, b));
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.class(a).len(), 2);
        let (_, changed_again) = eg.union(a, b);
        assert!(!changed_again);
    }

    #[test]
    fn congruence_propagates_upward() {
        // f(a), f(b): after union(a, b) and rebuild, f(a) == f(b).
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        assert!(!eg.same(fa, fb));
        eg.union(a, b);
        let extra = eg.rebuild();
        assert!(extra >= 1);
        assert!(eg.same(fa, fb));
        eg.check_invariants().unwrap();
    }

    #[test]
    fn congruence_propagates_transitively() {
        // g(f(a)), g(f(b)): one union at the leaves collapses two levels.
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        let gfa = eg.add(SymbolLang::new("g", vec![fa]));
        let gfb = eg.add(SymbolLang::new("g", vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.same(gfa, gfb));
        eg.check_invariants().unwrap();
    }

    #[test]
    fn add_expr_builds_dag() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
        let root = eg.add_expr(&expr);
        // Shared sub-expressions are hash-consed: a, b, (* a b), (+ _ _).
        assert_eq!(eg.num_classes(), 4);
        assert_eq!(eg.find(root), root);
        eg.rebuild();
        eg.check_invariants().unwrap();
    }

    #[test]
    fn id_to_expr_roundtrip() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let expr: RecExpr<SymbolLang> = "(+ (* a b) c)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let back = eg.id_to_expr(root);
        assert_eq!(back.to_string(), "(+ (* a b) c)");
    }

    #[test]
    fn lookup_finds_canonical_nodes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        eg.union(a, b);
        eg.rebuild();
        // Looking up f(b) must find the same class as f(a).
        let found = eg.lookup(&SymbolLang::new("f", vec![b]));
        assert_eq!(found, Some(eg.find(fa)));
        assert_eq!(eg.lookup(&SymbolLang::leaf("zzz")), None);
    }

    #[test]
    fn parent_index_lists_users() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let f = eg.add(SymbolLang::new("f", vec![a, b]));
        eg.rebuild();
        let parents = eg.parent_index();
        let pa = &parents[&eg.find(a)];
        assert_eq!(pa.len(), 1);
        assert_eq!(pa[0].0, eg.find(f));
        assert!(!parents.contains_key(&eg.find(f)));
    }

    #[test]
    fn total_nodes_counts_all_enode_variants() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.total_nodes(), 2);
        assert_eq!(eg.num_unions(), 1);
    }

    #[test]
    fn op_index_prunes_to_matching_classes() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let f = eg.add(SymbolLang::new("f", vec![a, b]));
        let g = eg.add(SymbolLang::new("g", vec![a]));
        eg.rebuild();
        let fs = eg.classes_for_op(SymbolLang::new("f", vec![a, b]).op_key());
        assert_eq!(fs, vec![eg.find(f)]);
        let gs = eg.classes_for_op(SymbolLang::new("g", vec![a]).op_key());
        assert_eq!(gs, vec![eg.find(g)]);
        assert!(eg
            .classes_for_op(SymbolLang::leaf("nosuch").op_key())
            .is_empty());
    }

    #[test]
    fn op_index_canonicalizes_after_unions() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        eg.union(a, b);
        eg.rebuild();
        // f(a) and f(b) merged by congruence: one canonical class, no dupes.
        let fs = eg.classes_for_op(SymbolLang::new("f", vec![a]).op_key());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0], eg.find(fa));
        assert_eq!(eg.find(fa), eg.find(fb));
    }

    #[test]
    fn incremental_and_reference_rebuild_agree() {
        // Drive two graphs through the same workload; rebuild one
        // incrementally and one with the whole-graph reference passes.
        let build = |_reference: bool| -> EGraph<SymbolLang> { EGraph::new() };
        let mut inc = build(false);
        let mut refe = build(true);
        for eg in [&mut inc, &mut refe] {
            let a = leaf(eg, "a");
            let b = leaf(eg, "b");
            let fa = eg.add(SymbolLang::new("f", vec![a]));
            let fb = eg.add(SymbolLang::new("f", vec![b]));
            let _g = eg.add(SymbolLang::new("g", vec![fa, fb]));
            eg.union(a, b);
        }
        let u1 = inc.rebuild();
        let u2 = refe.rebuild_reference();
        assert_eq!(u1, u2);
        assert_eq!(inc.num_classes(), refe.num_classes());
        assert_eq!(inc.total_nodes(), refe.total_nodes());
        assert_eq!(inc.num_unions(), refe.num_unions());
        inc.check_invariants().unwrap();
        refe.check_invariants().unwrap();
    }

    #[test]
    fn egraph_is_send_and_sync() {
        // The Runner's parallel search shares `&EGraph` across scoped worker
        // threads; `find` is compression-free on `&self`, so the whole graph
        // is `Sync` as long as the language is.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EGraph<SymbolLang>>();
        assert_send_sync::<crate::Rewrite<SymbolLang>>();
    }

    #[test]
    fn parents_survive_merges() {
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let _fa = eg.add(SymbolLang::new("f", vec![a]));
        let _gb = eg.add(SymbolLang::new("g", vec![b]));
        eg.union(a, b);
        eg.rebuild();
        // The merged leaf class lists both f and g as parents.
        let parents = eg.parent_index();
        let merged = eg.find(a);
        assert_eq!(parents[&merged].len(), 2);
        eg.check_invariants().unwrap();
    }
}
