//! Patterns and e-matching.
//!
//! A [`Pattern`] is a term over the language extended with pattern variables
//! (`?x`, `?y`, ...). Searching a pattern against an [`EGraph`] produces, for
//! each e-class, the set of variable [`Subst`]itutions under which the
//! pattern matches some term represented by that class.

use crate::language::parse_sexpr_into;
use crate::{EGraph, FromOp, Id, Language, ParseError, RecExpr};
use std::str::FromStr;

/// A pattern variable such as `?x`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub String);

impl Var {
    /// Creates a variable from its name (without the leading `?`).
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A node of a pattern: either a concrete language node or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENodeOrVar<L> {
    /// A concrete operator applied to child pattern nodes.
    ENode(L),
    /// A pattern variable.
    Var(Var),
}

impl<L: Language> Language for ENodeOrVar<L> {
    fn children(&self) -> &[Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children(),
            ENodeOrVar::Var(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children_mut(),
            ENodeOrVar::Var(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (ENodeOrVar::ENode(a), ENodeOrVar::ENode(b)) => a.matches(b),
            (ENodeOrVar::Var(a), ENodeOrVar::Var(b)) => a == b,
            _ => false,
        }
    }

    fn op_str(&self) -> String {
        match self {
            ENodeOrVar::ENode(n) => n.op_str(),
            ENodeOrVar::Var(v) => v.to_string(),
        }
    }

    fn op_key(&self) -> u64 {
        match self {
            // Forward to the inner language so a pattern node's key agrees
            // with the e-graph's operator index over `L`.
            ENodeOrVar::ENode(n) => n.op_key(),
            ENodeOrVar::Var(v) => crate::language::op_key_of(&v.to_string(), 0),
        }
    }
}

/// A variable binding produced by e-matching: maps pattern variables to
/// e-class ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    bindings: Vec<(Var, Id)>,
}

impl Subst {
    /// Returns the class bound to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<Id> {
        self.bindings
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, id)| *id)
    }

    /// Binds `var` to `id`, returning `false` if it is already bound to a
    /// different class.
    pub fn insert(&mut self, var: Var, id: Id) -> bool {
        match self.get(&var) {
            Some(existing) => existing == id,
            None => {
                self.bindings.push((var, id));
                true
            }
        }
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Id)> {
        self.bindings.iter().map(|(v, id)| (v, *id))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// All matches of a pattern inside one e-class.
#[derive(Debug, Clone)]
pub struct SearchMatches {
    /// The e-class in which the pattern matched.
    pub eclass: Id,
    /// The substitutions under which it matched.
    pub substs: Vec<Subst>,
}

/// A syntactic pattern over language `L` with variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern<L> {
    /// The pattern term; the last node is the root.
    pub ast: RecExpr<ENodeOrVar<L>>,
}

impl<L: Language> std::fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.ast)
    }
}

impl<L: FromOp> FromStr for Pattern<L> {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let nodes = parse_sexpr_into::<ENodeOrVar<L>, _>(s, |op, children, nodes| {
            let node = if let Some(name) = op.strip_prefix('?') {
                if !children.is_empty() {
                    return Err(ParseError(format!(
                        "pattern variable ?{name} cannot have children"
                    )));
                }
                ENodeOrVar::Var(Var::new(name))
            } else {
                ENodeOrVar::ENode(L::from_op(op, children)?)
            };
            nodes.push(node);
            Ok(Id::from(nodes.len() - 1))
        })?;
        let mut ast = RecExpr::default();
        for node in nodes {
            ast.add(node);
        }
        Ok(Pattern { ast })
    }
}

/// Matcher work budget per allowed match: bounds the recursion steps one
/// `search` may spend at `match_limit * STEPS_PER_MATCH`, so patterns that
/// enumerate huge candidate spaces without completing matches still stop.
const STEPS_PER_MATCH: usize = 100;

impl<L: Language> Pattern<L> {
    /// Returns the distinct variables appearing in the pattern.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for node in self.ast.as_ref() {
            if let ENodeOrVar::Var(v) = node {
                if !vars.contains(v) {
                    vars.push(v.clone());
                }
            }
        }
        vars
    }

    /// Searches the pattern in every class of the e-graph.
    ///
    /// `match_limit` caps the *total* number of substitutions collected
    /// across all classes (it also bounds each class's enumeration, keeping
    /// huge products of commutative matches from exploding); the search
    /// stops as soon as the budget is exhausted, so a saturated rule costs
    /// `O(match_limit)` instead of `O(classes * match_limit)`.
    /// `usize::MAX` disables the cap.
    ///
    /// A finite `match_limit` also bounds the *work* spent enumerating: deep
    /// patterns over classes with many nodes can do `nodes^depth` work while
    /// finding zero complete matches (failed bindings are free under a
    /// match-count cap alone), so the search carries a recursion-step budget
    /// of `match_limit * STEPS_PER_MATCH` and stops when it runs out.
    pub fn search(&self, egraph: &EGraph<L>, match_limit: usize) -> Vec<SearchMatches> {
        self.search_rotated(egraph, match_limit, 0).0
    }

    /// [`Pattern::search`] starting the class scan at a rotated position.
    ///
    /// With a finite budget, always scanning classes in the same order would
    /// spend the whole budget re-finding matches in the earliest classes on
    /// every call and starve the rest of the e-graph; callers that search
    /// repeatedly (the [`crate::Runner`]) pass a different `rotation` each
    /// iteration so the budget sweeps across all classes over time.
    ///
    /// The second return value is `true` when the search was *complete*: it
    /// visited every candidate class without exhausting the match or step
    /// budget. `false` means classes may remain unsearched, so the caller
    /// must not conclude anything (like saturation) from the absence of
    /// matches.
    ///
    /// When the pattern's root is a concrete operator, the candidate classes
    /// come from the e-graph's operator index ([`EGraph::classes_for_op`])
    /// rather than a scan of every class, so a rule only pays for the
    /// classes whose nodes can match its root symbol. Classes the index
    /// skips cannot match, so skipping them preserves the completeness
    /// guarantee of the returned flag.
    pub fn search_rotated(
        &self,
        egraph: &EGraph<L>,
        match_limit: usize,
        rotation: usize,
    ) -> (Vec<SearchMatches>, bool) {
        let ids = self.candidate_classes(egraph);
        if ids.is_empty() {
            return (Vec::new(), true);
        }
        let start = rotation % ids.len();
        let mut rotated = Vec::with_capacity(ids.len());
        rotated.extend_from_slice(&ids[start..]);
        rotated.extend_from_slice(&ids[..start]);
        self.search_classes(egraph, &rotated, match_limit)
    }

    /// Returns the candidate classes this pattern could match, in a
    /// deterministic order: the operator index entry for a concrete root, or
    /// every class for a variable root. Classes not returned cannot match.
    pub fn candidate_classes(&self, egraph: &EGraph<L>) -> Vec<Id> {
        match self.ast.node(self.ast.root()) {
            ENodeOrVar::ENode(root) => egraph.classes_for_op(root.op_key()),
            // A variable root matches every class; no pruning possible.
            ENodeOrVar::Var(_) => egraph.class_ids().collect(),
        }
    }

    /// The shard-aware search entry point: scans an explicit slice of
    /// candidate classes, in order, under its own match budget (and the
    /// derived step budget).
    ///
    /// This is a pure function of `(egraph, pattern, classes, match_limit)`,
    /// which is what lets the [`crate::Runner`] split a rule's candidate list
    /// into contiguous shards, search them on any number of worker threads,
    /// and still merge bit-identical results: each shard's outcome does not
    /// depend on scheduling. The second return value reports whether every
    /// class in the slice was scanned without exhausting a budget, exactly as
    /// in [`Pattern::search_rotated`].
    pub fn search_classes(
        &self,
        egraph: &EGraph<L>,
        classes: &[Id],
        match_limit: usize,
    ) -> (Vec<SearchMatches>, bool) {
        let mut results = Vec::new();
        let mut remaining = match_limit;
        let mut steps = match_limit.saturating_mul(STEPS_PER_MATCH);
        for &id in classes {
            if remaining == 0 || steps == 0 {
                return (results, false);
            }
            let eclass = egraph.find(id);
            let mut substs = self.match_in_class(
                egraph,
                self.ast.root(),
                eclass,
                Subst::default(),
                remaining,
                &mut steps,
            );
            if !substs.is_empty() {
                substs.truncate(remaining);
                remaining -= substs.len();
                results.push(SearchMatches { eclass, substs });
            }
        }
        // The budgets may have run dry exactly on the last class; that is
        // still a complete scan of every class.
        (results, true)
    }

    /// Searches the pattern in a single e-class.
    pub fn search_class(
        &self,
        egraph: &EGraph<L>,
        eclass: Id,
        match_limit: usize,
    ) -> Option<SearchMatches> {
        let eclass = egraph.find(eclass);
        let mut steps = match_limit.saturating_mul(STEPS_PER_MATCH);
        let substs = self.match_in_class(
            egraph,
            self.ast.root(),
            eclass,
            Subst::default(),
            match_limit,
            &mut steps,
        );
        if substs.is_empty() {
            None
        } else {
            Some(SearchMatches { eclass, substs })
        }
    }

    fn match_in_class(
        &self,
        egraph: &EGraph<L>,
        pat: Id,
        eclass: Id,
        subst: Subst,
        limit: usize,
        steps: &mut usize,
    ) -> Vec<Subst> {
        if *steps == 0 {
            return Vec::new();
        }
        *steps -= 1;
        match self.ast.node(pat) {
            ENodeOrVar::Var(v) => {
                let mut subst = subst;
                if subst.insert(v.clone(), egraph.find(eclass)) {
                    vec![subst]
                } else {
                    vec![]
                }
            }
            ENodeOrVar::ENode(pnode) => {
                let mut out = Vec::new();
                let class = match egraph.get_class(eclass) {
                    Some(c) => c,
                    None => return out,
                };
                for enode in &class.nodes {
                    if *steps == 0 {
                        break;
                    }
                    if !pnode.matches(enode) {
                        continue;
                    }
                    // Match children left to right, threading substitutions.
                    let mut partial = vec![subst.clone()];
                    for (pchild, echild) in pnode.children().iter().zip(enode.children()) {
                        let mut next = Vec::new();
                        for s in partial {
                            next.extend(
                                self.match_in_class(egraph, *pchild, *echild, s, limit, steps),
                            );
                            if next.len() >= limit {
                                next.truncate(limit);
                                break;
                            }
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    out.extend(partial);
                    if out.len() >= limit {
                        out.truncate(limit);
                        break;
                    }
                }
                out
            }
        }
    }

    /// Instantiates the pattern under a substitution, adding the resulting
    /// term to the e-graph. Returns the class of the instantiated root.
    pub fn apply_one(&self, egraph: &mut EGraph<L>, subst: &Subst) -> Id {
        self.apply_rec(egraph, self.ast.root(), subst)
    }

    fn apply_rec(&self, egraph: &mut EGraph<L>, pat: Id, subst: &Subst) -> Id {
        match self.ast.node(pat) {
            ENodeOrVar::Var(v) => subst
                .get(v)
                .unwrap_or_else(|| unreachable!("unbound pattern variable {v}")),
            ENodeOrVar::ENode(node) => {
                let node = node
                    .clone()
                    .map_children(|c| self.apply_rec(egraph, c, subst));
                egraph.add(node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    fn egraph_with(exprs: &[&str]) -> (EGraph<SymbolLang>, Vec<Id>) {
        let mut eg = EGraph::new();
        let roots = exprs
            .iter()
            .map(|s| {
                let e: RecExpr<SymbolLang> = s.parse().unwrap();
                eg.add_expr(&e)
            })
            .collect();
        eg.rebuild();
        (eg, roots)
    }

    #[test]
    fn parse_pattern_with_vars() {
        let p: Pattern<SymbolLang> = "(+ ?x (* ?y ?x))".parse().unwrap();
        assert_eq!(p.to_string(), "(+ ?x (* ?y ?x))");
        assert_eq!(p.vars().len(), 2);
    }

    #[test]
    fn variable_with_children_is_an_error() {
        let r: Result<Pattern<SymbolLang>, _> = "(?f a b)".parse();
        assert!(r.is_err());
    }

    #[test]
    fn ground_pattern_matches_exact_class() {
        let (eg, roots) = egraph_with(&["(+ a b)", "(+ a c)"]);
        let p: Pattern<SymbolLang> = "(+ a b)".parse().unwrap();
        let matches = p.search(&eg, usize::MAX);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(roots[0]));
    }

    #[test]
    fn variable_pattern_matches_everything() {
        let (eg, _) = egraph_with(&["(+ a b)"]);
        let p: Pattern<SymbolLang> = "?x".parse().unwrap();
        let matches = p.search(&eg, usize::MAX);
        assert_eq!(matches.len(), eg.num_classes());
    }

    #[test]
    fn nonlinear_pattern_requires_equal_bindings() {
        let (eg, roots) = egraph_with(&["(+ a a)", "(+ a b)"]);
        let p: Pattern<SymbolLang> = "(+ ?x ?x)".parse().unwrap();
        let matches = p.search(&eg, usize::MAX);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(roots[0]));
    }

    #[test]
    fn match_through_equivalence() {
        // After union(a, b), the pattern (f b) should match (f a)'s class.
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        eg.union(a, b);
        eg.rebuild();
        let p: Pattern<SymbolLang> = "(f b)".parse().unwrap();
        let matches = p.search(&eg, usize::MAX);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(fa));
    }

    #[test]
    fn apply_one_adds_instantiated_term() {
        let (mut eg, roots) = egraph_with(&["(+ a b)"]);
        let lhs: Pattern<SymbolLang> = "(+ ?x ?y)".parse().unwrap();
        let rhs: Pattern<SymbolLang> = "(+ ?y ?x)".parse().unwrap();
        let matches = lhs.search(&eg, usize::MAX);
        let subst = &matches[0].substs[0];
        let new_id = rhs.apply_one(&mut eg, subst);
        let (_, changed) = eg.union(roots[0], new_id);
        assert!(changed);
        eg.rebuild();
        // Now both (+ a b) and (+ b a) are in the same class.
        let ground: Pattern<SymbolLang> = "(+ b a)".parse().unwrap();
        assert_eq!(ground.search(&eg, usize::MAX).len(), 1);
    }

    #[test]
    fn match_limit_caps_substitutions() {
        // A class with many equivalent nodes can generate many matches; the
        // limit keeps only the first few.
        let mut eg: EGraph<SymbolLang> = EGraph::new();
        let mut ids = Vec::new();
        for name in ["a", "b", "c", "d"] {
            ids.push(eg.add(SymbolLang::leaf(name)));
        }
        // Make them all equivalent.
        for pair in ids.windows(2) {
            eg.union(pair[0], pair[1]);
        }
        let x = eg.add(SymbolLang::new("g", vec![ids[0], ids[0]]));
        let _ = x;
        eg.rebuild();
        let p: Pattern<SymbolLang> = "(g ?x ?y)".parse().unwrap();
        let unlimited = p.search(&eg, usize::MAX);
        let limited = p.search(&eg, 1);
        assert_eq!(unlimited.iter().map(|m| m.substs.len()).sum::<usize>(), 1);
        assert_eq!(limited.iter().map(|m| m.substs.len()).sum::<usize>(), 1);
    }

    #[test]
    fn subst_rejects_conflicting_binding() {
        let mut s = Subst::default();
        assert!(s.insert(Var::new("x"), Id(1)));
        assert!(s.insert(Var::new("x"), Id(1)));
        assert!(!s.insert(Var::new("x"), Id(2)));
        assert_eq!(s.get(&Var::new("x")), Some(Id(1)));
        assert_eq!(s.get(&Var::new("y")), None);
        assert_eq!(s.len(), 1);
    }
}
