//! A small, fast, non-cryptographic hasher (FxHash-style) shared by the
//! workspace's hot-path hash tables (AIG structural hashing, e-graph
//! hashcons, choice-class indexes).
//!
//! The default `SipHash` hasher in the standard library is robust against
//! hash-flooding but measurably slower for the small integer keys that
//! dominate those tables; this crate provides the same multiply-xor scheme
//! used by rustc. `aig` and `egraph` re-export the aliases so downstream
//! code keeps using `aig::FxHashMap` / `egraph::FxHashMap`.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher specialised for small keys (integers, short tuples).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(map.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn handles_arbitrary_byte_slices() {
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3])
        );
    }
}
