//! Timing-driven choice-mapping QoR: mapped delay (and recovered area) with
//! choices on vs off across the benchgen circuits, every mapped netlist
//! CEC-verified against its input.
//!
//! The flow runs with the delay-first objective: the delay-optimal first
//! pass selects cuts over *all* e-class members, then the map →
//! required-time → area-recovery loop trades the remaining slack for area.
//! Saturation is deterministic, so the "on" run sees the same baseline as
//! the "off" run and keeps the (delay, area)-lexicographically better
//! netlist — the binary asserts delay-on ≤ delay-off and CEC on every
//! circuit, exiting non-zero on any violation, which makes it a CI smoke
//! gate (`--smoke` runs a reduced circuit set) as well as the comparison
//! table.
//!
//! Usage: `cargo run -p emorphic-bench --bin delay_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use emorphic::flow::{emorphic_map_flow, MapFlowConfig, MapObjective};
use emorphic_bench::scale_from_env;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    let circuits: Vec<(String, aig::Aig)> = if smoke {
        vec![
            ("adder".into(), benchgen::adder(8).aig),
            ("multiplier".into(), benchgen::multiplier(4).aig),
        ]
    } else {
        emorphic_bench::suite()
            .into_iter()
            .map(|c| (c.name, c.aig))
            .collect()
    };

    let base_config = match scale {
        benchgen::SuiteScale::Default => MapFlowConfig::paper(),
        _ => MapFlowConfig::fast(),
    };
    let config = base_config
        .with_objective(MapObjective::Delay)
        .with_recovery_passes(2);

    println!("Timing-driven choice mapping: delay-first QoR with choices on vs off");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>7} {:>12} {:>12} {:>9} {:>6} {:>9}",
        "circuit",
        "ands",
        "delay-off",
        "delay-on",
        "ratio",
        "area-off",
        "area-on",
        "slack-on",
        "used",
        "time(s)"
    );

    let mut violations = 0usize;
    let mut improved = 0usize;
    for (name, aig) in &circuits {
        let off = match emorphic_map_flow(aig, &config.clone().with_choices(false)) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{name}: choice-free flow failed: {e}");
                violations += 1;
                continue;
            }
        };
        let on = match emorphic_map_flow(aig, &config) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{name}: choice-aware flow failed: {e}");
                violations += 1;
                continue;
            }
        };
        let ratio = if off.qor.delay_ps > 0.0 {
            on.qor.delay_ps / off.qor.delay_ps
        } else {
            1.0
        };
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>7.4} {:>12.2} {:>12.2} {:>9.2} {:>6} {:>9.2}",
            name,
            aig.num_ands(),
            off.qor.delay_ps,
            on.qor.delay_ps,
            ratio,
            off.qor.area_um2,
            on.qor.area_um2,
            on.worst_slack_ps,
            if on.used_choices { "yes" } else { "no" },
            off.runtime.as_secs_f64() + on.runtime.as_secs_f64(),
        );
        if !off.verified || !on.verified {
            eprintln!(
                "{name}: CEC verification FAILED (off: {}, on: {})",
                off.verified, on.verified
            );
            violations += 1;
        }
        if on.qor.delay_ps > off.qor.delay_ps + 1e-9 {
            eprintln!(
                "{name}: choice-aware delay {} worse than choice-free {}",
                on.qor.delay_ps, off.qor.delay_ps
            );
            violations += 1;
        }
        if on.worst_slack_ps < -1e-9 {
            eprintln!("{name}: negative worst slack {}", on.worst_slack_ps);
            violations += 1;
        }
        if on.qor.delay_ps < off.qor.delay_ps - 1e-9 {
            improved += 1;
        }
    }

    println!(
        "\n{} circuit(s), {} strictly improved by choices, {} violation(s)",
        circuits.len(),
        improved,
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
