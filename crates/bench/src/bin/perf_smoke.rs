//! Perf smoke: saturation throughput of the e-graph core, printed as
//! e-nodes/sec so CI leaves a visible throughput trail from PR to PR.
//!
//! Every circuit runs twice — with 1 and with 4 search threads — so the
//! parallel-search scaling is part of the trail. The two runs are
//! bit-identical by construction (sharding and budget splitting never depend
//! on the thread count); the binary asserts it on the final node counts.
//!
//! Usage: `cargo run --release -p emorphic-bench --bin perf_smoke [-- --fast]`
//!
//! `--fast` (or `EMORPHIC_SCALE=tiny`) shrinks the circuit set so the smoke
//! run stays under a few seconds on CI hardware; the default scale covers the
//! largest circuit the existing benches exercise (the 16-bit multiplier).

use egraph::{Runner, Scheduler, StopReason};
use emorphic::{aig_to_egraph, all_rules};
use emorphic_bench::scale_from_env;
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || matches!(scale_from_env(), benchgen::SuiteScale::Tiny);
    let circuits: Vec<(String, aig::Aig)> = if fast {
        vec![
            ("adder8".into(), benchgen::adder(8).aig),
            ("multiplier6".into(), benchgen::multiplier(6).aig),
        ]
    } else {
        vec![
            ("adder32".into(), benchgen::adder(32).aig),
            ("multiplier8".into(), benchgen::multiplier(8).aig),
            ("multiplier16".into(), benchgen::multiplier(16).aig),
        ]
    };
    let rules = all_rules();

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "Perf smoke: equality-saturation throughput (rules: {}, search threads 1 vs 4, \
         host cores: {cores})",
        rules.len()
    );
    if cores < 4 {
        println!("note: host has {cores} core(s); expect parity, not speedup, at 4 threads");
    }
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>6} {:>10} {:>12} {:>12} {:>8}  stop",
        "circuit",
        "aig-ands",
        "e-nodes",
        "e-classes",
        "iters",
        "sat-time",
        "1T en/sec",
        "4T en/sec",
        "speedup"
    );

    let mut totals = [(0usize, 0f64), (0usize, 0f64)]; // (nodes, secs) at 1T, 4T
    for (name, aig) in &circuits {
        let conv = aig_to_egraph(aig);
        let mut per_thread: Vec<(usize, usize, usize, f64, StopReason)> = Vec::new();
        for (slot, threads) in [1usize, 4].into_iter().enumerate() {
            let t0 = Instant::now();
            let runner = Runner::with_egraph(conv.egraph.clone())
                .with_iter_limit(8)
                .with_node_limit(100_000)
                .with_scheduler(Scheduler::Backoff {
                    match_limit: 2_000,
                    ban_length: 2,
                })
                .with_search_threads(threads)
                .run(&rules);
            let secs = t0.elapsed().as_secs_f64();
            let nodes = runner.egraph.total_nodes();
            totals[slot].0 += nodes;
            totals[slot].1 += secs;
            per_thread.push((
                nodes,
                runner.egraph.num_classes(),
                runner.iterations.len(),
                secs,
                runner.stop_reason.unwrap_or(StopReason::IterationLimit),
            ));
        }
        let (nodes, classes, iters, serial_secs, ref stop) = per_thread[0];
        let (par_nodes, _, _, par_secs, _) = per_thread[1];
        assert_eq!(
            nodes, par_nodes,
            "{name}: parallel search must be bit-identical to serial"
        );
        println!(
            "{:<14} {:>9} {:>10} {:>10} {:>6} {:>9.3}s {:>12.0} {:>12.0} {:>7.2}x  {:?}",
            name,
            aig.num_ands(),
            nodes,
            classes,
            iters,
            serial_secs,
            nodes as f64 / serial_secs.max(1e-9),
            nodes as f64 / par_secs.max(1e-9),
            serial_secs / par_secs.max(1e-9),
            stop,
        );
    }
    for (label, (nodes, secs)) in ["1 thread", "4 threads"].iter().zip(totals) {
        println!(
            "TOTAL ({label}): {nodes} e-nodes in {secs:.3}s = {:.0} e-nodes/sec",
            nodes as f64 / secs.max(1e-9)
        );
    }
}
