//! Perf smoke: saturation throughput of the e-graph core, printed as
//! e-nodes/sec so CI leaves a visible throughput trail from PR to PR.
//!
//! Usage: `cargo run --release -p emorphic-bench --bin perf_smoke [-- --fast]`
//!
//! `--fast` (or `EMORPHIC_SCALE=tiny`) shrinks the circuit set so the smoke
//! run stays under a few seconds on CI hardware; the default scale covers the
//! largest circuit the existing benches exercise (the 16-bit multiplier).

use egraph::{Runner, Scheduler, StopReason};
use emorphic::{aig_to_egraph, all_rules};
use emorphic_bench::scale_from_env;
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || matches!(scale_from_env(), benchgen::SuiteScale::Tiny);
    let circuits: Vec<(String, aig::Aig)> = if fast {
        vec![
            ("adder8".into(), benchgen::adder(8).aig),
            ("multiplier6".into(), benchgen::multiplier(6).aig),
        ]
    } else {
        vec![
            ("adder32".into(), benchgen::adder(32).aig),
            ("multiplier8".into(), benchgen::multiplier(8).aig),
            ("multiplier16".into(), benchgen::multiplier(16).aig),
        ]
    };
    let rules = all_rules();

    println!(
        "Perf smoke: equality-saturation throughput (rules: {})",
        rules.len()
    );
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>6} {:>11} {:>12}  stop",
        "circuit", "aig-ands", "e-nodes", "e-classes", "iters", "sat-time", "e-nodes/sec"
    );

    let mut total_nodes = 0usize;
    let mut total_secs = 0f64;
    for (name, aig) in &circuits {
        let conv = aig_to_egraph(aig);
        let t0 = Instant::now();
        let runner = Runner::with_egraph(conv.egraph)
            .with_iter_limit(8)
            .with_node_limit(100_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 2_000,
                ban_length: 2,
            })
            .run(&rules);
        let secs = t0.elapsed().as_secs_f64();
        let nodes = runner.egraph.total_nodes();
        total_nodes += nodes;
        total_secs += secs;
        println!(
            "{:<14} {:>9} {:>10} {:>10} {:>6} {:>10.3}s {:>12.0}  {:?}",
            name,
            aig.num_ands(),
            nodes,
            runner.egraph.num_classes(),
            runner.iterations.len(),
            secs,
            nodes as f64 / secs.max(1e-9),
            runner.stop_reason.unwrap_or(StopReason::IterationLimit),
        );
    }
    println!(
        "TOTAL: {} e-nodes in {:.3}s = {:.0} e-nodes/sec",
        total_nodes,
        total_secs,
        total_nodes as f64 / total_secs.max(1e-9)
    );
}
