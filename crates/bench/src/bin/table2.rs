//! Table II: QoR and runtime comparison between the delay-oriented baseline
//! flow, the E-morphic flow without the ML model, and the E-morphic flow with
//! the ML model, over the ten EPFL-like benchmark circuits.
//!
//! Usage: `cargo run -p emorphic-bench --bin table2 --release`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use emorphic::flow::{baseline_flow, emorphic_flow};
use emorphic_bench::{flow_config_for, format_qor_row, scale_from_env, suite, train_learned_model};
use techmap::Qor;

fn main() {
    let scale = scale_from_env();
    let circuits = suite();
    let config = flow_config_for(scale);

    println!("Table II reproduction: QoR and runtime comparison (scale {scale:?})");
    println!(
        "{:<12} {:>12} {:>12} {:>6} {:>10}",
        "Circuit", "Area(um2)", "Delay(ps)", "lev", "runtime(s)"
    );

    // Train the learned model once on the smaller half of the suite.
    println!("\n[training the learned cost model on structural variants ...]");
    let training_circuits: Vec<aig::Aig> = circuits
        .iter()
        .filter(|c| c.aig.num_ands() < 2_000)
        .map(|c| c.aig.clone())
        .collect();
    let (model, predictions, truth) = train_learned_model(&training_circuits, 6);
    println!(
        "[model trained: MAPE = {:.1}%, Kendall tau = {:.2}]\n",
        costmodel::metrics::mape(&predictions, &truth),
        costmodel::metrics::kendall_tau(&predictions, &truth)
    );

    let mut rows_base: Vec<(Qor, f64)> = Vec::new();
    let mut rows_em: Vec<(Qor, f64)> = Vec::new();
    let mut rows_ml: Vec<(Qor, f64)> = Vec::new();

    for circuit in &circuits {
        let name = circuit.name.as_str();
        eprintln!("--- {name} ({} ANDs) ---", circuit.aig.num_ands());

        let base = baseline_flow(&circuit.aig, &config);
        eprintln!("  baseline      : {}", base.qor);
        let em = emorphic_flow(&circuit.aig, &config);
        eprintln!("  emorphic      : {} (verified: {})", em.qor, em.verified);
        let ml_config = config.clone().with_learned_model(model.clone());
        let ml = emorphic_flow(&circuit.aig, &ml_config);
        eprintln!("  emorphic (ML) : {} (verified: {})", ml.qor, ml.verified);

        rows_base.push((base.qor, base.runtime.as_secs_f64()));
        rows_em.push((em.qor, em.runtime.as_secs_f64()));
        rows_ml.push((ml.qor, ml.runtime.as_secs_f64()));
    }

    for (title, rows) in [
        ("SOP Balancing Baseline", &rows_base),
        ("SOP Balancing + E-morphic (w/o ML model)", &rows_em),
        ("SOP Balancing + E-morphic (w/ ML model)", &rows_ml),
    ] {
        println!("\n== {title} ==");
        for (circuit, (qor, runtime)) in circuits.iter().zip(rows.iter()) {
            println!("{}", format_qor_row(&circuit.name, qor, *runtime));
        }
        let geo = Qor::geomean(&rows.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>()).unwrap();
        let geo_rt =
            (rows.iter().map(|(_, r)| r.max(1e-9).ln()).sum::<f64>() / rows.len() as f64).exp();
        println!("{}", format_qor_row("GEOMEAN", &geo, geo_rt));
    }

    // Improvement rows (geomean of E-morphic vs baseline), as in the paper.
    let geo_base =
        Qor::geomean(&rows_base.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>()).unwrap();
    let geo_em = Qor::geomean(&rows_em.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>()).unwrap();
    let geo_ml = Qor::geomean(&rows_ml.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>()).unwrap();
    let imp_em = geo_em.improvement_over(&geo_base);
    let imp_ml = geo_ml.improvement_over(&geo_base);
    println!("\nImprovements of E-morphic (w/o ML) over the baseline:");
    println!(
        "  area saving = {:.2}%   delay reduction = {:.2}%   level reduction = {:.2}%",
        imp_em.area_pct, imp_em.delay_pct, imp_em.level_pct
    );
    println!("Improvements of E-morphic (w/ ML) over the baseline:");
    println!(
        "  area saving = {:.2}%   delay reduction = {:.2}%   level reduction = {:.2}%",
        imp_ml.area_pct, imp_ml.delay_pct, imp_ml.level_pct
    );
    let rt_base: f64 = rows_base.iter().map(|(_, r)| r).sum();
    let rt_em: f64 = rows_em.iter().map(|(_, r)| r).sum();
    let rt_ml: f64 = rows_ml.iter().map(|(_, r)| r).sum();
    println!(
        "Runtime: baseline {rt_base:.1}s, E-morphic {rt_em:.1}s, E-morphic+ML {rt_ml:.1}s \
         (ML saves {:.1}% of the E-morphic runtime)",
        (rt_em - rt_ml) / rt_em.max(1e-9) * 100.0
    );

    // Paper reference values for EXPERIMENTS.md cross-checking.
    println!(
        "\nPaper (Table II, GEOMEAN): baseline area 25274.02 um2 / delay 5620.01 ps / lev 292;"
    );
    println!(
        "  E-morphic w/o ML: 22104.32 / 5210.55 / 287 (12.54% area, 7.29% delay improvement);"
    );
    println!("  E-morphic w/ ML : 24660.84 / 5390.13 / 295, with ~28% runtime saving vs w/o ML.");
}
