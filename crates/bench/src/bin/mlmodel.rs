//! Section IV-D: the learned cost model — training on structural variants,
//! prediction quality (MAPE, Kendall's τ) and the runtime saving it brings to
//! the E-morphic flow.
//!
//! Usage: `cargo run -p emorphic-bench --bin mlmodel --release`

use costmodel::metrics::{kendall_tau, mape};
use emorphic::flow::emorphic_flow;
use emorphic_bench::{flow_config_for, scale_from_env, suite, train_learned_model};
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    let circuits = suite();
    let config = flow_config_for(scale);

    println!("Section IV-D reproduction: learned (HOGA-style) cost model");

    // Training set: structural variants of the smaller circuits, labelled by
    // the technology mapper (the OpenABC-D stand-in).
    let training: Vec<aig::Aig> = circuits
        .iter()
        .filter(|c| c.aig.num_ands() < 3_000)
        .map(|c| c.aig.clone())
        .collect();
    let variants = match scale {
        benchgen::SuiteScale::Tiny => 4,
        benchgen::SuiteScale::Small => 8,
        benchgen::SuiteScale::Default => 12,
    };
    println!(
        "Training on {} circuits x {} structural variants each ...",
        training.len(),
        variants
    );
    let t0 = Instant::now();
    let (model, predictions, truth) = train_learned_model(&training, variants);
    println!(
        "Training + labelling time: {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let model_mape = mape(&predictions, &truth);
    let model_tau = kendall_tau(&predictions, &truth);
    println!("\nHeld-out delay prediction quality:");
    println!("  MAPE        = {model_mape:.1}%   (paper: 25.2%)");
    println!("  Kendall tau = {model_tau:.2}    (paper: 0.62)");

    // Runtime saving of the E-morphic flow when the SA extraction is guided
    // by the learned model instead of the mapper.
    println!("\nRuntime comparison on a subset of the suite:");
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "circuit", "quality mode (s)", "runtime mode (s)", "saving %"
    );
    let mut total_quality = 0.0;
    let mut total_runtime_mode = 0.0;
    for circuit in circuits.iter().filter(|c| c.aig.num_ands() < 4_000) {
        let t_quality = Instant::now();
        let quality = emorphic_flow(&circuit.aig, &config);
        let quality_s = t_quality.elapsed().as_secs_f64();

        let ml_config = config.clone().with_learned_model(model.clone());
        let t_ml = Instant::now();
        let runtime_mode = emorphic_flow(&circuit.aig, &ml_config);
        let ml_s = t_ml.elapsed().as_secs_f64();

        total_quality += quality_s;
        total_runtime_mode += ml_s;
        println!(
            "{:<12} {:>16.2} {:>16.2} {:>11.1}%   (delay {:.0} -> {:.0} ps)",
            circuit.name,
            quality_s,
            ml_s,
            (quality_s - ml_s) / quality_s.max(1e-9) * 100.0,
            quality.qor.delay_ps,
            runtime_mode.qor.delay_ps,
        );
    }
    println!(
        "\nTotal runtime saving with the learned model: {:.1}% (paper reports ~28%)",
        (total_quality - total_runtime_mode) / total_quality.max(1e-9) * 100.0
    );
}
