//! Windowed-saturation QoR gate: the partition → saturate-per-window →
//! stitch pipeline (`FlowConfig::partitioning`) against monolithic
//! saturation on the scaling-class circuits it exists for.
//!
//! Every circuit runs through [`emorphic::flow::emorphic_map_flow`] twice —
//! once monolithic, once windowed — and the binary asserts:
//!
//! * both mapped netlists are SAT-CEC **proved** equivalent to the input;
//! * the windowed run actually windowed (a window report with no fallback
//!   error and a nonzero window count);
//! * the windowed mapped area is no worse than the monolithic mapped area;
//! * the windowed decomposition is bit-identical at 1 and 4 search threads
//!   (same area, delay, gate count and choice-export statistics);
//! * full runs only (timing on smoke-sized circuits is noise): windowed
//!   wall time grows **sublinearly** relative to monolithic — the
//!   largest/smallest runtime ratio of the windowed flow must not exceed
//!   the monolithic ratio.
//!
//! Results go to `BENCH_window.json` (a `{"runs": [...], "sublinearity":
//! {...}}` object; one row per circuit × mode with QoR, wall time and
//! window statistics).
//!
//! Usage: `cargo run -p emorphic-bench --bin window_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use benchgen::BenchCircuit;
use emorphic::flow::{emorphic_map_flow, MapFlowConfig, MapFlowResult};
use emorphic_bench::{flow_config_for, scale_from_env};
use serde::Serialize;
use std::time::Instant;
use window::WindowOptions;

#[derive(Serialize)]
struct RunRecord {
    circuit: String,
    ands: usize,
    mode: String,
    area_um2: f64,
    delay_ps: f64,
    gates: usize,
    verified: bool,
    wall_s: f64,
    windows: usize,
    covered_ands: usize,
    windows_skipped: usize,
    classes: usize,
    alternatives: usize,
    partition_s: f64,
    saturation_s: f64,
    stitch_s: f64,
}

#[derive(Serialize)]
struct Sublinearity {
    /// Smallest/largest circuit names the ratios were taken over.
    smallest: String,
    largest: String,
    /// wall(largest) / wall(smallest) for each mode.
    windowed_ratio: f64,
    monolithic_ratio: f64,
    /// Whether the sublinearity gate was enforced (full runs only).
    enforced: bool,
}

#[derive(Serialize)]
struct Report {
    runs: Vec<RunRecord>,
    sublinearity: Option<Sublinearity>,
}

fn record(circuit: &BenchCircuit, mode: &str, result: &MapFlowResult, wall_s: f64) -> RunRecord {
    let w = result.window.as_ref();
    RunRecord {
        circuit: circuit.name.clone(),
        ands: circuit.aig.num_ands(),
        mode: mode.into(),
        area_um2: result.qor.area_um2,
        delay_ps: result.qor.delay_ps,
        gates: result.qor.gates,
        verified: result.verified,
        wall_s,
        windows: w.map_or(0, |w| w.windows),
        covered_ands: w.map_or(0, |w| w.covered_ands),
        windows_skipped: w.map_or(0, |w| w.windows_skipped),
        classes: w.map_or(0, |w| w.classes_exported),
        alternatives: w.map_or(0, |w| w.alternatives),
        partition_s: w.map_or(0.0, |w| w.partition_time.as_secs_f64()),
        saturation_s: w.map_or(0.0, |w| w.saturation_time.as_secs_f64()),
        stitch_s: w.map_or(0.0, |w| w.stitch_time.as_secs_f64()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    let circuits: Vec<BenchCircuit> = if smoke {
        let mut mult = benchgen::multiplier(4);
        mult.name = "multiplier4".into();
        let mut add = benchgen::adder(16);
        add.name = "adder16".into();
        vec![mult, add, benchgen::crossbar(4, 2)]
    } else {
        benchgen::scaling_suite(scale)
    };

    let mono_config = MapFlowConfig {
        flow: flow_config_for(scale),
        ..MapFlowConfig::fast()
    };
    let mut win_config = mono_config.clone();
    win_config.flow = win_config.flow.with_partitioning(WindowOptions::default());

    println!("Windowed-saturation QoR: windowed vs monolithic map flow");
    println!(
        "{:<14} {:<11} {:>7} {:>10} {:>9} {:>6} {:>4} {:>8} {:>7} {:>8}",
        "circuit", "mode", "ands", "area", "delay", "gates", "ok", "windows", "classes", "wall(s)"
    );

    let mut violations = 0usize;
    let mut runs: Vec<RunRecord> = Vec::new();
    // (name, ands, windowed wall, monolithic wall) per circuit, for the
    // sublinearity ratio.
    let mut walls: Vec<(String, usize, f64, f64)> = Vec::new();

    for circuit in &circuits {
        let t = Instant::now();
        let mono = emorphic_map_flow(&circuit.aig, &mono_config)
            .unwrap_or_else(|e| panic!("{}: monolithic flow failed: {e}", circuit.name));
        let mono_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let windowed = emorphic_map_flow(&circuit.aig, &win_config)
            .unwrap_or_else(|e| panic!("{}: windowed flow failed: {e}", circuit.name));
        let windowed_s = t.elapsed().as_secs_f64();

        for (mode, result, wall) in [
            ("monolithic", &mono, mono_s),
            ("windowed", &windowed, windowed_s),
        ] {
            let rec = record(circuit, mode, result, wall);
            println!(
                "{:<14} {:<11} {:>7} {:>10.2} {:>9.1} {:>6} {:>4} {:>8} {:>7} {:>8.3}",
                rec.circuit,
                rec.mode,
                rec.ands,
                rec.area_um2,
                rec.delay_ps,
                rec.gates,
                if rec.verified { "yes" } else { "NO" },
                rec.windows,
                rec.classes,
                rec.wall_s
            );
            runs.push(rec);
        }

        if !mono.verified {
            eprintln!("{}: monolithic netlist NOT proved equivalent", circuit.name);
            violations += 1;
        }
        if !windowed.verified {
            eprintln!("{}: windowed netlist NOT proved equivalent", circuit.name);
            violations += 1;
        }
        match windowed.window.as_ref() {
            None => {
                eprintln!("{}: windowed run produced no window report", circuit.name);
                violations += 1;
            }
            Some(w) => {
                if let Some(err) = &w.error {
                    eprintln!(
                        "{}: windowed path fell back to monolithic: {err}",
                        circuit.name
                    );
                    violations += 1;
                } else if w.windows == 0 {
                    eprintln!("{}: partitioner produced zero windows", circuit.name);
                    violations += 1;
                }
            }
        }
        if windowed.qor.area_um2 > mono.qor.area_um2 + 1e-9 {
            eprintln!(
                "{}: windowed area worse than monolithic ({:.4} > {:.4})",
                circuit.name, windowed.qor.area_um2, mono.qor.area_um2
            );
            violations += 1;
        }

        walls.push((
            circuit.name.clone(),
            circuit.aig.num_ands(),
            windowed_s,
            mono_s,
        ));
    }

    // Determinism: the windowed decomposition must be bit-identical at any
    // worker count. Checked on the smallest circuit (the property is about
    // the algorithm, not the workload size).
    if let Some(circuit) = circuits.iter().min_by_key(|c| c.aig.num_ands()) {
        let mut serial = win_config.clone();
        serial.flow.search_threads = 1;
        let mut parallel = win_config.clone();
        parallel.flow.search_threads = 4;
        let a = emorphic_map_flow(&circuit.aig, &serial)
            .unwrap_or_else(|e| panic!("{}: serial windowed flow failed: {e}", circuit.name));
        let b = emorphic_map_flow(&circuit.aig, &parallel)
            .unwrap_or_else(|e| panic!("{}: parallel windowed flow failed: {e}", circuit.name));
        let same = a.qor.area_um2.to_bits() == b.qor.area_um2.to_bits()
            && a.qor.delay_ps.to_bits() == b.qor.delay_ps.to_bits()
            && a.qor.gates == b.qor.gates
            && a.export == b.export;
        if same {
            println!(
                "\ndeterminism: {} identical at 1 and 4 search threads",
                circuit.name
            );
        } else {
            eprintln!(
                "{}: windowed flow differs between 1 and 4 search threads",
                circuit.name
            );
            violations += 1;
        }
    }

    // Sublinearity: as circuits grow, windowed wall time must not grow
    // faster than monolithic. Enforced on full runs only — smoke circuits
    // finish in milliseconds, where the ratio is scheduler noise.
    let sublinearity = if walls.len() >= 2 {
        let smallest = walls
            .iter()
            .min_by_key(|(_, ands, _, _)| *ands)
            .expect("nonempty");
        let largest = walls
            .iter()
            .max_by_key(|(_, ands, _, _)| *ands)
            .expect("nonempty");
        let windowed_ratio = largest.2 / smallest.2.max(1e-9);
        let monolithic_ratio = largest.3 / smallest.3.max(1e-9);
        let enforced = !smoke;
        if enforced && windowed_ratio > monolithic_ratio {
            eprintln!(
                "sublinearity violated: windowed scales worse than monolithic \
                 ({windowed_ratio:.2}x vs {monolithic_ratio:.2}x from {} to {})",
                smallest.0, largest.0
            );
            violations += 1;
        }
        println!(
            "sublinearity: wall({}) / wall({}) = {:.2}x windowed, {:.2}x monolithic{}",
            largest.0,
            smallest.0,
            windowed_ratio,
            monolithic_ratio,
            if enforced {
                ""
            } else {
                " (not enforced in smoke)"
            }
        );
        Some(Sublinearity {
            smallest: smallest.0.clone(),
            largest: largest.0.clone(),
            windowed_ratio,
            monolithic_ratio,
            enforced,
        })
    } else {
        None
    };

    let report = Report { runs, sublinearity };
    let json = serde_json::to_string_pretty(&report).expect("report serialize");
    std::fs::write("BENCH_window.json", json).expect("write BENCH_window.json");
    println!(
        "\n{} circuit(s), {} violation(s); wrote BENCH_window.json",
        circuits.len(),
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
