//! Figure 9: runtime breakdown of the E-morphic flow — how much of the total
//! wall-clock time is spent in the conventional delay-oriented flow, in
//! e-graph conversion, and in SA extraction, for both cost models.
//!
//! Usage: `cargo run -p emorphic-bench --bin fig9 --release`

use emorphic::flow::emorphic_flow;
use emorphic_bench::{flow_config_for, scale_from_env, suite, train_learned_model};

fn main() {
    let scale = scale_from_env();
    let circuits = suite();
    let config = flow_config_for(scale);

    println!("Figure 9 reproduction: runtime breakdown of E-morphic (scale {scale:?})");

    let training: Vec<aig::Aig> = circuits
        .iter()
        .filter(|c| c.aig.num_ands() < 2_000)
        .map(|c| c.aig.clone())
        .collect();
    let (model, _, _) = train_learned_model(&training, 5);

    for (title, use_ml) in [
        ("E-morphic with ABC-style mapping cost model", false),
        ("E-morphic with ML cost model", true),
    ] {
        println!("\n== {title} ==");
        println!(
            "{:<12} {:>22} {:>20} {:>18} {:>8}",
            "circuit", "delay-oriented flow %", "egraph conversion %", "SA extraction %", "CEC %"
        );
        for circuit in circuits.iter().rev() {
            let cfg = if use_ml {
                config.clone().with_learned_model(model.clone())
            } else {
                config.clone()
            };
            let result = emorphic_flow(&circuit.aig, &cfg);
            let (conventional, conversion, extraction, verification) =
                result.breakdown.percentages();
            println!(
                "{:<12} {:>22.1} {:>20.1} {:>18.1} {:>8.1}",
                circuit.name, conventional, conversion, extraction, verification
            );
        }
    }

    println!("\nPaper (Fig. 9): the conventional delay-oriented flow dominates the runtime,");
    println!("the e-graph conversion is negligible, and the SA extraction share shrinks on");
    println!("the larger circuits; the ML cost model further reduces the extraction share.");
}
