//! Audit gate: runs the `audit` checker catalog over parsed inputs and
//! end-of-flow artifacts for the whole benchgen suite.
//!
//! Three stages per circuit:
//!
//! * **Input hygiene** — the circuit is serialized to EQN and ASCII-AIGER
//!   text, parsed back, and both parses are audited with the *full* AIG
//!   catalog (including the dangling/trivial-AND warnings a hand-written
//!   input file could trip).
//! * **Flow artifacts** — `emorphic_flow` and `emorphic_map_flow` run with
//!   the requested [`AuditLevel`], so every phase boundary (saturate /
//!   extract / choice-export / map / sweep) is audited in place; the
//!   surfaced [`AuditReport`]s are printed and gated here.
//! * **DIMACS / solver state** — a self-miter CNF round-trips through the
//!   DIMACS writer and parser, is solved, and the post-solve CDCL state is
//!   audited with the SAT catalog.
//!
//! Warnings are printed but only `Severity::Error` diagnostics (or a parse
//! failure) make the gate exit non-zero.
//!
//! Usage: `cargo run -p emorphic-bench --bin audit --release [-- --smoke] [--paranoid]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use aig::io::{read_aiger, read_eqn, write_aiger, write_eqn};
use aig::Aig;
use audit::{audit_aig, audit_solver, AuditLevel, AuditReport};
use cec::AigCnf;
use emorphic::flow::{emorphic_flow, emorphic_map_flow, FlowConfig, MapFlowConfig};
use emorphic_bench::{flow_config_for, scale_from_env};
use sat::dimacs::CnfFormula;
use sat::{ClauseSink, Lit as SLit};
use std::time::Instant;

/// Prints a stage report and returns the number of error-severity
/// diagnostics it carries.
fn gate(circuit: &str, stage: &str, report: &AuditReport) -> usize {
    let errors = report.num_errors();
    if report.is_clean() {
        println!(
            "{circuit:<14} {stage:<14} {:>6} checks      clean",
            report.checks_run
        );
    } else {
        println!(
            "{circuit:<14} {stage:<14} {:>6} checks {:>4} diagnostic(s), {errors} error(s)",
            report.checks_run,
            report.diagnostics.len()
        );
        for diagnostic in &report.diagnostics {
            println!("    {diagnostic}");
        }
    }
    errors
}

/// Serializes, re-parses and audits one circuit through one text format.
fn audit_roundtrip(
    name: &str,
    stage: &str,
    level: AuditLevel,
    text: &str,
    parse: impl Fn(&str) -> Result<Aig, aig::AigError>,
) -> usize {
    match parse(text) {
        Ok(parsed) => gate(name, stage, &audit_aig(&parsed, level)),
        Err(e) => {
            println!("{name:<14} {stage:<14} PARSE FAILURE: {e}");
            1
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let paranoid = std::env::args().any(|a| a == "--paranoid");
    let level = if paranoid {
        AuditLevel::Paranoid
    } else {
        AuditLevel::PhaseBoundaries
    };
    let scale = scale_from_env();
    let circuits: Vec<(String, Aig)> = if smoke {
        vec![
            ("adder".into(), benchgen::adder(8).aig),
            ("multiplier".into(), benchgen::multiplier(4).aig),
        ]
    } else {
        emorphic_bench::suite()
            .into_iter()
            .map(|c| (c.name, c.aig))
            .collect()
    };
    let flow_config = if smoke {
        FlowConfig::fast()
    } else {
        flow_config_for(scale)
    }
    .with_audit_level(level);

    println!(
        "Audit gate at level {level:?} over {} circuit(s)",
        circuits.len()
    );
    let started = Instant::now();
    let mut errors = 0usize;
    for (name, circuit) in &circuits {
        // Input hygiene: both text formats, full catalog.
        errors += audit_roundtrip(name, "eqn-parse", level, &write_eqn(circuit), read_eqn);
        errors += audit_roundtrip(
            name,
            "aiger-parse",
            level,
            &write_aiger(circuit),
            read_aiger,
        );

        // End-of-flow artifacts: the flows audit each phase internally and
        // surface one absorbed report.
        let result = emorphic_flow(circuit, &flow_config);
        errors += gate(name, "flow", &result.audit);
        let map_config = MapFlowConfig {
            flow: flow_config.clone(),
            ..MapFlowConfig::fast()
        };
        match emorphic_map_flow(circuit, &map_config) {
            Ok(result) => errors += gate(name, "map-flow", &result.audit),
            Err(e) => {
                println!("{name:<14} {:<14} FLOW FAILURE: {e}", "map-flow");
                errors += 1;
            }
        }

        // DIMACS round-trip and post-solve solver state.
        let mut cnf = CnfFormula::default();
        let inputs: Vec<SLit> = (0..circuit.num_inputs())
            .map(|_| SLit::pos(cnf.new_var()))
            .collect();
        let image = AigCnf::encode(&mut cnf, circuit, Some(&inputs));
        match CnfFormula::parse(&cnf.to_dimacs()) {
            Ok(parsed) => {
                let mut solver = parsed.to_solver();
                let assumptions: Vec<SLit> = image.output_lits.iter().take(2).copied().collect();
                let _ = solver.solve_with_assumptions(&assumptions);
                errors += gate(name, "dimacs-solve", &audit_solver(&solver, level));
            }
            Err(e) => {
                println!("{name:<14} {:<14} PARSE FAILURE: {e}", "dimacs-solve");
                errors += 1;
            }
        }
    }

    println!(
        "\naudit gate: {} circuit(s), {errors} error(s) in {:.1}s",
        circuits.len(),
        started.elapsed().as_secs_f64()
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
