//! Extraction-engine QoR: mapped area/delay/levels and extraction wall time
//! for every [`ExtractionEngine`] across the benchgen circuits, each
//! extracted network CEC-verified against the input.
//!
//! Each circuit is saturated once; every engine then extracts from the same
//! e-graph, so the comparison isolates the extraction policy. The portfolio
//! races the other engines under an area-first mapped scorer, so its mapped
//! area can never be worse than the single-engine SA row — the binary asserts
//! exactly that, plus CEC on every extraction, exiting non-zero on any
//! violation. Results are also written to `BENCH_extract.json`.
//!
//! Usage: `cargo run -p emorphic-bench --bin extract_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use cec::{check_equivalence, CecOptions, CecResult};
use costmodel::{CostEvaluator, TechMapCost};
use egraph::{Runner, Scheduler};
use emorphic::extract::sa::{SaEngine, SaOptions};
use emorphic::extract::{
    BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine, GlobalGreedyDagEngine,
    PortfolioEngine, PortfolioScorer, SlackAwareEngine,
};
use emorphic::{aig_to_egraph, all_rules, try_selection_to_aig};
use emorphic_bench::scale_from_env;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use techmap::library::asap7_like;

#[derive(Serialize)]
struct EngineRecord {
    circuit: String,
    engine: String,
    ands: usize,
    area_um2: f64,
    delay_ps: f64,
    levels: u32,
    extract_s: f64,
    verified: bool,
}

fn saturate(
    conversion: &emorphic::convert::ConversionResult,
    iterations: usize,
    node_limit: usize,
) -> emorphic::convert::ConversionResult {
    let runner = Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(iterations)
        .with_node_limit(node_limit)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 500,
            ban_length: 2,
        })
        .run(&all_rules());
    emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion.clone()
    }
}

fn engines(sa: &SaOptions, evaluator: &Arc<dyn CostEvaluator>) -> Vec<Box<dyn ExtractionEngine>> {
    vec![
        Box::new(BottomUpEngine::new(ExtractionCost::Size)),
        Box::new(GlobalGreedyDagEngine::new()),
        Box::new(SlackAwareEngine::new()),
        Box::new(SaEngine::new(sa.clone(), evaluator.clone())),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    let circuits: Vec<(String, aig::Aig)> = if smoke {
        vec![
            ("adder".into(), benchgen::adder(8).aig),
            ("multiplier".into(), benchgen::multiplier(4).aig),
        ]
    } else {
        emorphic_bench::suite()
            .into_iter()
            .map(|c| (c.name, c.aig))
            .collect()
    };
    let (iterations, node_limit, sa) = match scale {
        benchgen::SuiteScale::Tiny => (2, 8_000, SaOptions::fast()),
        benchgen::SuiteScale::Small => (3, 30_000, SaOptions::fast()),
        benchgen::SuiteScale::Default => (
            4,
            60_000,
            SaOptions::new().with_iterations(3).with_threads(2),
        ),
    };
    let library = asap7_like();
    let mapper = TechMapCost::new(library.clone());
    let evaluator: Arc<dyn CostEvaluator> = Arc::new(mapper.clone());
    let cec_options = CecOptions {
        conflict_budget: Some(100_000),
        ..CecOptions::default()
    };

    println!("Extraction-engine QoR: mapped area/delay per engine, same saturated e-graph");
    println!(
        "{:<12} {:<18} {:>8} {:>12} {:>10} {:>7} {:>10} {:>5}",
        "circuit", "engine", "ands", "area", "delay", "levels", "extract(s)", "cec"
    );

    let mut records: Vec<EngineRecord> = Vec::new();
    let mut violations = 0usize;
    for (name, circuit) in &circuits {
        let saturated = saturate(&aig_to_egraph(circuit), iterations, node_limit);
        // The shared saturated e-graph must satisfy every structural
        // invariant before any engine extracts from it.
        let egraph_audit = audit::audit_egraph(&saturated.egraph, audit::AuditLevel::Paranoid);
        if !egraph_audit.is_clean() {
            eprintln!("{name}: saturated e-graph audit failed:\n{egraph_audit}");
            violations += 1;
        }
        let budget = ExtractBudget::unlimited();
        let mut named: Vec<(String, Box<dyn ExtractionEngine>)> = engines(&sa, &evaluator)
            .into_iter()
            .map(|e| (e.name().to_string(), e))
            .collect();
        named.push((
            "portfolio".into(),
            Box::new(PortfolioEngine::new(engines(&sa, &evaluator)).with_scorer(
                PortfolioScorer::Mapped {
                    library: library.clone(),
                    delay_first: false,
                },
            )),
        ));
        let mut sa_area = f64::NAN;
        let mut portfolio_area = f64::NAN;
        for (engine_name, engine) in &named {
            let t = Instant::now();
            let extraction = match engine.extract(&saturated.egraph, &saturated.roots, &budget) {
                Ok(extraction) => extraction,
                Err(e) => {
                    eprintln!("{name}/{engine_name}: extraction failed: {e}");
                    violations += 1;
                    continue;
                }
            };
            let extract_s = t.elapsed().as_secs_f64();
            let extracted = match try_selection_to_aig(
                &saturated.egraph,
                &extraction.selection,
                &saturated.roots,
                &saturated.input_names,
                &saturated.output_names,
                name,
            ) {
                Ok(aig) => aig,
                Err(e) => {
                    eprintln!("{name}/{engine_name}: invalid selection: {e}");
                    violations += 1;
                    continue;
                }
            };
            let aig_audit = audit::audit_aig_dag_only(&extracted, audit::AuditLevel::Paranoid);
            if !aig_audit.is_clean() {
                eprintln!("{name}/{engine_name}: extracted AIG audit failed:\n{aig_audit}");
                violations += 1;
            }
            let qor = mapper.qor(&extracted);
            let verified = match check_equivalence(circuit, &extracted, &cec_options) {
                CecResult::Equivalent => true,
                CecResult::NotEquivalent(cex) => {
                    eprintln!(
                        "{name}/{engine_name}: NOT equivalent (output {})",
                        cex.output
                    );
                    false
                }
                CecResult::Unknown => {
                    eprintln!("{name}/{engine_name}: CEC inconclusive under budget");
                    false
                }
            };
            if !verified {
                violations += 1;
            }
            if engine_name == "sa" {
                sa_area = qor.area_um2;
            }
            if engine_name == "portfolio" {
                portfolio_area = qor.area_um2;
            }
            println!(
                "{:<12} {:<18} {:>8} {:>12.2} {:>10.2} {:>7} {:>10.3} {:>5}",
                name,
                engine_name,
                circuit.num_ands(),
                qor.area_um2,
                qor.delay_ps,
                qor.levels,
                extract_s,
                if verified { "ok" } else { "FAIL" }
            );
            records.push(EngineRecord {
                circuit: name.clone(),
                engine: engine_name.clone(),
                ands: circuit.num_ands(),
                area_um2: qor.area_um2,
                delay_ps: qor.delay_ps,
                levels: qor.levels,
                extract_s,
                verified,
            });
        }
        if portfolio_area > sa_area + 1e-9 {
            eprintln!(
                "{name}: portfolio area {portfolio_area} worse than single-engine SA {sa_area}"
            );
            violations += 1;
        }
    }

    let json = serde_json::to_string_pretty(&records).expect("records serialize");
    std::fs::write("BENCH_extract.json", json).expect("write BENCH_extract.json");
    println!(
        "\n{} circuit(s) x {} engine rows, {} violation(s); wrote BENCH_extract.json",
        circuits.len(),
        records.len(),
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
