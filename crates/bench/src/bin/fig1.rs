//! Figure 1: the case-study motivation — repeated technology-independent
//! optimization passes converge to a near-local optimum, while E-morphic's
//! parallel structural exploration pushes the post-mapping delay below it.
//!
//! Usage: `cargo run -p emorphic-bench --bin fig1 --release`

use costmodel::TechMapCost;
use emorphic::flow::{emorphic_flow, FlowConfig};
use emorphic_bench::{flow_config_for, scale_from_env};
use logic_opt::{balance, dch_like, refactor, rewrite, DchOptions};
use techmap::library::asap7_like;
use techmap::sop::sop_balance;
use techmap::MapOptions;

fn main() {
    let scale = scale_from_env();
    // The case study uses one mid-size arithmetic circuit (the multiplier).
    let width = match scale {
        benchgen::SuiteScale::Tiny => 6,
        benchgen::SuiteScale::Small => 10,
        benchgen::SuiteScale::Default => 16,
    };
    let circuit = benchgen::multiplier(width).aig;
    let mapper = TechMapCost::new(asap7_like());

    println!("Figure 1 reproduction: delay across independent optimization passes (multiplier, {width}-bit)");
    println!("{:<28} {:>12} {:>12}", "pass", "delay (ps)", "normalized");

    let initial_delay = mapper.qor(&circuit).delay_ps;
    println!(
        "{:<28} {:>12.2} {:>12.3}",
        "initial circuit", initial_delay, 1.0
    );

    // A sequence of independent optimization passes, measuring mapped delay
    // after each one. The curve flattens as the passes reach a local optimum.
    let mut current = circuit.clone();
    type Pass = Box<dyn Fn(&aig::Aig) -> aig::Aig>;
    let passes: Vec<(&str, Pass)> = vec![
        ("balance", Box::new(balance)),
        (
            "sop balance",
            Box::new(|a: &aig::Aig| sop_balance(a, &MapOptions::lut6())),
        ),
        ("rewrite", Box::new(rewrite)),
        ("balance", Box::new(balance)),
        ("refactor", Box::new(refactor)),
        (
            "sop balance",
            Box::new(|a: &aig::Aig| sop_balance(a, &MapOptions::lut6())),
        ),
        (
            "dch",
            Box::new(|a: &aig::Aig| dch_like(a, &DchOptions::default())),
        ),
        (
            "sop balance",
            Box::new(|a: &aig::Aig| sop_balance(a, &MapOptions::lut6())),
        ),
    ];
    let mut series = vec![initial_delay];
    for (i, (name, pass)) in passes.iter().enumerate() {
        current = pass(&current);
        let delay = mapper.qor(&current).delay_ps;
        series.push(delay);
        println!(
            "{:<28} {:>12.2} {:>12.3}",
            format!("pass {} ({name})", i + 1),
            delay,
            delay / initial_delay
        );
    }
    let plateau = series.last().copied().unwrap_or(initial_delay);

    // E-morphic structural exploration on top of the optimized circuit.
    let config: FlowConfig = flow_config_for(scale);
    let result = emorphic_flow(&circuit, &config);
    println!(
        "{:<28} {:>12.2} {:>12.3}   (verified: {})",
        "E-morphic exploration",
        result.qor.delay_ps,
        result.qor.delay_ps / initial_delay,
        result.verified
    );

    println!("\nIndependent-optimization plateau: {plateau:.2} ps");
    println!(
        "E-morphic result:                 {:.2} ps",
        result.qor.delay_ps
    );
    if result.qor.delay_ps < plateau {
        println!(
            "E-morphic goes {:.1}% below the local optimum reached by the independent passes,",
            (plateau - result.qor.delay_ps) / plateau * 100.0
        );
        println!("reproducing the qualitative shape of Fig. 1.");
    } else {
        println!("At this scale the plateau was not beaten; rerun with EMORPHIC_SCALE=default.");
    }
}
