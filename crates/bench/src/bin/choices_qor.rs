//! Choice-network QoR: mapped area/delay and runtime with choices on vs off
//! across the benchgen circuits, every mapped netlist CEC-verified against
//! its input.
//!
//! Each circuit runs the flow twice — saturation is deterministic, so both
//! runs see the same e-graph. "off" maps only the extracted representative
//! network; "on" additionally offers the mapper the top-K structures of
//! every live e-class and keeps the better netlist, so the "on" column can
//! never be worse. The two independent runs let the binary CEC-verify *both*
//! mapped netlists against the input and cross-check the determinism of the
//! baseline; it asserts monotone area and CEC on every netlist, exiting
//! non-zero on any violation. That makes it usable both as the paper-style
//! comparison table and as a CI smoke gate (`--smoke` runs a reduced
//! circuit set).
//!
//! Usage: `cargo run -p emorphic-bench --bin choices_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use emorphic::flow::{emorphic_map_flow, MapFlowConfig};
use emorphic_bench::scale_from_env;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    let circuits: Vec<(String, aig::Aig)> = if smoke {
        vec![
            ("adder".into(), benchgen::adder(8).aig),
            ("multiplier".into(), benchgen::multiplier(4).aig),
        ]
    } else {
        emorphic_bench::suite()
            .into_iter()
            .map(|c| (c.name, c.aig))
            .collect()
    };

    let config = match scale {
        benchgen::SuiteScale::Default => MapFlowConfig::paper(),
        _ => MapFlowConfig::fast(),
    };

    println!("Choice-network QoR: choice-aware vs choice-free standard-cell mapping");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>7} {:>10} {:>10} {:>7} {:>8} {:>6} {:>9}",
        "circuit",
        "ands",
        "area-off",
        "area-on",
        "ratio",
        "delay-off",
        "delay-on",
        "classes",
        "choices",
        "used",
        "time(s)"
    );

    let mut violations = 0usize;
    let mut improved = 0usize;
    for (name, aig) in &circuits {
        let off = match emorphic_map_flow(aig, &config.clone().with_choices(false)) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{name}: choice-free flow failed: {e}");
                violations += 1;
                continue;
            }
        };
        let on = match emorphic_map_flow(aig, &config) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{name}: choice-aware flow failed: {e}");
                violations += 1;
                continue;
            }
        };
        let ratio = if off.qor.area_um2 > 0.0 {
            on.qor.area_um2 / off.qor.area_um2
        } else {
            1.0
        };
        println!(
            "{:<12} {:>8} {:>12.2} {:>12.2} {:>7.4} {:>10.2} {:>10.2} {:>7} {:>8} {:>6} {:>9.2}",
            name,
            aig.num_ands(),
            off.qor.area_um2,
            on.qor.area_um2,
            ratio,
            off.qor.delay_ps,
            on.qor.delay_ps,
            on.export.classes,
            on.export.alternatives,
            if on.used_choices { "yes" } else { "no" },
            off.runtime.as_secs_f64() + on.runtime.as_secs_f64(),
        );
        if !off.verified || !on.verified {
            eprintln!(
                "{name}: CEC verification FAILED (off: {}, on: {})",
                off.verified, on.verified
            );
            violations += 1;
        }
        if on.qor.area_um2 > off.qor.area_um2 + 1e-9 {
            eprintln!(
                "{name}: choice-aware area {} worse than choice-free {}",
                on.qor.area_um2, off.qor.area_um2
            );
            violations += 1;
        }
        if on.qor.area_um2 < off.qor.area_um2 - 1e-9 {
            improved += 1;
        }
    }

    println!(
        "\n{} circuit(s), {} strictly improved by choices, {} violation(s)",
        circuits.len(),
        improved,
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
