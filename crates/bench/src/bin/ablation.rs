//! Ablation studies for the design choices called out in DESIGN.md:
//! solution-space pruning, SA vs. greedy extraction, the number of rewriting
//! iterations, and the number of parallel annealing chains.
//!
//! Usage: `cargo run -p emorphic-bench --bin ablation --release`

use costmodel::{CostEvaluator, TechMapCost};
use egraph::{Runner, Scheduler};
use emorphic::extract::sa::{SaExtractor, SaOptions};
use emorphic::extract::{
    bottom_up_extract, BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine,
};
use emorphic::{aig_to_egraph, all_rules, selection_to_aig};
use emorphic_bench::scale_from_env;
use std::time::Instant;
use techmap::library::asap7_like;

fn saturate(
    conversion: &emorphic::convert::ConversionResult,
    iterations: usize,
    node_limit: usize,
) -> emorphic::convert::ConversionResult {
    let runner = Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(iterations)
        .with_node_limit(node_limit)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 1_000,
            ban_length: 2,
        })
        .run(&all_rules());
    emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion.clone()
    }
}

fn main() {
    let scale = scale_from_env();
    let width = match scale {
        benchgen::SuiteScale::Tiny => 5,
        benchgen::SuiteScale::Small => 8,
        benchgen::SuiteScale::Default => 12,
    };
    let circuit = benchgen::adder(width).aig;
    let conversion = aig_to_egraph(&circuit);
    let evaluator = TechMapCost::new(asap7_like());

    println!(
        "Ablation studies on adder({width}) — {} AND nodes\n",
        circuit.num_ands()
    );

    // 1. Rewriting iterations vs. e-graph size (scalability of rewriting).
    println!("[1] rewriting iterations vs. e-graph size");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "iters", "e-nodes", "e-classes", "time (s)"
    );
    for iters in [1usize, 2, 3, 4, 5, 6, 8] {
        let t = Instant::now();
        let saturated = saturate(&conversion, iters, 100_000);
        println!(
            "{:>10} {:>12} {:>12} {:>12.2}",
            iters,
            saturated.egraph.total_nodes(),
            saturated.egraph.num_classes(),
            t.elapsed().as_secs_f64()
        );
    }

    let saturated = saturate(&conversion, 4, 60_000);

    // 2. Solution-space pruning on/off.
    println!("\n[2] solution-space pruning (bottom-up extraction)");
    let budget = ExtractBudget::unlimited();
    let t = Instant::now();
    let pruned_stats = BottomUpEngine::new(ExtractionCost::Depth)
        .extract(&saturated.egraph, &saturated.roots, &budget)
        .expect("pruned extraction")
        .stats;
    let pruned_time = t.elapsed();
    let t = Instant::now();
    let unpruned_stats = BottomUpEngine::new(ExtractionCost::Depth)
        .with_pruning(false)
        .extract(&saturated.egraph, &saturated.roots, &budget)
        .expect("unpruned extraction")
        .stats;
    let unpruned_time = t.elapsed();
    println!(
        "  pruned  : {:>10} node evaluations, {:>8.3}s",
        pruned_stats.nodes_evaluated,
        pruned_time.as_secs_f64()
    );
    println!(
        "  unpruned: {:>10} node evaluations, {:>8.3}s",
        unpruned_stats.nodes_evaluated,
        unpruned_time.as_secs_f64()
    );
    println!(
        "  evaluation reduction: {:.1}x",
        unpruned_stats.nodes_evaluated as f64 / pruned_stats.nodes_evaluated.max(1) as f64
    );

    // 3. SA extraction vs. plain greedy extraction (post-mapping delay).
    println!("\n[3] greedy vs. simulated-annealing extraction");
    let (greedy_sel, _) = bottom_up_extract(&saturated.egraph, ExtractionCost::Depth);
    let greedy_aig = selection_to_aig(
        &saturated.egraph,
        &greedy_sel,
        &saturated.roots,
        &saturated.input_names,
        &saturated.output_names,
        "greedy",
    );
    let greedy_cost = evaluator.evaluate(&greedy_aig);
    println!("  greedy bottom-up cost : {greedy_cost:.2}");
    for (label, options) in [
        (
            "SA, 2 iterations",
            SaOptions {
                iterations: 2,
                threads: 2,
                ..SaOptions::default()
            },
        ),
        (
            "SA, 4 iterations",
            SaOptions {
                iterations: 4,
                threads: 2,
                ..SaOptions::default()
            },
        ),
    ] {
        let result = SaExtractor::new(options).extract(&saturated, &evaluator);
        println!(
            "  {label:<22}: {:.2}  (improvement over greedy: {:.1}%)",
            result.best_cost,
            (greedy_cost - result.best_cost) / greedy_cost * 100.0
        );
    }

    // 4. Parallel annealing chains.
    println!("\n[4] parallel annealing chains (best-of-batch quality)");
    println!("{:>10} {:>14} {:>12}", "threads", "best cost", "time (s)");
    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let result = SaExtractor::new(SaOptions {
            iterations: 3,
            threads,
            ..SaOptions::default()
        })
        .extract(&saturated, &evaluator);
        println!(
            "{:>10} {:>14.2} {:>12.2}",
            threads,
            result.best_cost,
            t.elapsed().as_secs_f64()
        );
    }
}
