//! SAT-engine QoR gate: the modern CDCL engine (`sat::Solver`) against the
//! retained first-generation oracle (`sat::ReferenceSolver`) on the CNF
//! workloads that sit on the flow's critical path.
//!
//! Two workloads are measured:
//!
//! * **Miters** — each benchgen circuit is paired with a `logic_opt`
//!   restructuring of itself and Tseitin-encoded over shared inputs; every
//!   output pair is then decided with the same two-phase assumption queries
//!   the CEC uses. Both engines answer the identical query sequence; the
//!   binary asserts zero verdict disagreements, validates every Sat model by
//!   clause evaluation, checks failed-assumption cores re-solve to Unsat,
//!   and requires the new engine to spend no more conflicts and no more
//!   wall time than the reference on every circuit.
//! * **Sweeps** — `SatSweeper::find_equivalences` over a choice-rich stacked
//!   network, with counterexample-guided class refinement on vs off. The
//!   binary asserts refinement needs fewer SAT calls per proved class.
//!
//! Results go to `BENCH_sat.json` (a `{"miters": [...], "sweeps": [...]}`
//! object; each miter row carries per-engine conflicts/propagations/time,
//! each sweep row the SAT-call and split counters).
//!
//! Usage: `cargo run -p emorphic-bench --bin sat_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use aig::Aig;
use cec::{AigCnf, SatSweeper, SweepOptions};
use emorphic_bench::scale_from_env;
use sat::dimacs::CnfFormula;
use sat::{ClauseSink, Lit as SLit, SatResult};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct MiterRecord {
    circuit: String,
    engine: String,
    queries: usize,
    sat: usize,
    unsat: usize,
    unknown: usize,
    conflicts: u64,
    propagations: u64,
    solve_s: f64,
}

#[derive(Serialize)]
struct SweepRecord {
    circuit: String,
    cex_refinement: bool,
    sat_calls: usize,
    proved_classes: usize,
    redundant_nodes: usize,
    resimulations: usize,
    cex_splits: usize,
    calls_per_class: f64,
    sweep_s: f64,
}

#[derive(Serialize)]
struct Report {
    miters: Vec<MiterRecord>,
    sweeps: Vec<SweepRecord>,
}

/// Rebuilds `aig` with its operand halves swapped (`f(a, b)` → `f(b, a)`).
/// For commutative arithmetic this yields an equivalent circuit with
/// structurally unrelated cones — the classic CEC workload, where conflict
/// analysis quality decides the outcome rather than structural luck.
fn commuted(aig: &Aig) -> Aig {
    let n = aig.num_inputs();
    let w = n / 2;
    let mut fresh = Aig::new(format!("{}_comm", aig.name()));
    let fresh_inputs: Vec<aig::Lit> = (0..n).map(|i| fresh.add_input(aig.input_name(i))).collect();
    let mut map: Vec<Option<aig::Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(aig::Lit::FALSE);
    for (idx, &input) in aig.inputs().iter().enumerate() {
        map[input.index()] = Some(fresh_inputs[(idx + w) % n]);
    }
    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        let a = map[f0.node().index()].unwrap().xor(f0.is_complemented());
        let b = map[f1.node().index()].unwrap().xor(f1.is_complemented());
        map[id.index()] = Some(fresh.and(a, b));
    }
    for (idx, &po) in aig.outputs().iter().enumerate() {
        let lit = map[po.node().index()].unwrap().xor(po.is_complemented());
        fresh.add_output(lit, aig.output_name(idx));
    }
    fresh
}

/// The miter CNF: both circuits over shared inputs, plus the query plan
/// (every matched output pair, and one crossed pair to exercise Sat).
struct MiterInstance {
    cnf: CnfFormula,
    queries: Vec<[SLit; 2]>,
}

fn build_miter(golden: &Aig, revised: &Aig) -> MiterInstance {
    let mut cnf = CnfFormula::default();
    let shared: Vec<SLit> = (0..golden.num_inputs())
        .map(|_| SLit::pos(cnf.new_var()))
        .collect();
    let image_a = AigCnf::encode(&mut cnf, golden, Some(&shared));
    let image_b = AigCnf::encode(&mut cnf, revised, Some(&shared));
    let mut queries = Vec::new();
    for (o, (&a, &b)) in image_a
        .output_lits
        .iter()
        .zip(&image_b.output_lits)
        .enumerate()
    {
        // Two-phase inequivalence queries, exactly as the CEC issues them.
        queries.push([a, !b]);
        queries.push([!a, b]);
        if o == 0 && image_b.output_lits.len() >= 2 {
            // One crossed pair so the Sat/model path is exercised too.
            let c = image_b.output_lits[1];
            queries.push([a, !c]);
            queries.push([!a, c]);
        }
    }
    MiterInstance { cnf, queries }
}

fn clauses_satisfied(cnf: &CnfFormula, mut value: impl FnMut(SLit) -> Option<bool>) -> bool {
    cnf.clauses
        .iter()
        .all(|cl| cl.iter().any(|&l| value(l).unwrap_or(true)))
}

/// Runs the full query plan on one engine; `solve` adapts the two APIs.
fn run_queries<S>(
    instance: &MiterInstance,
    engine: &mut S,
    mut solve: impl FnMut(&mut S, &[SLit]) -> SatResult,
    mut value: impl FnMut(&S, SLit) -> Option<bool>,
) -> (Vec<SatResult>, usize, f64) {
    let mut verdicts = Vec::with_capacity(instance.queries.len());
    let mut bad_models = 0usize;
    let mut solve_s = 0.0f64;
    for q in &instance.queries {
        let t = Instant::now();
        let verdict = solve(engine, q);
        solve_s += t.elapsed().as_secs_f64();
        if verdict == SatResult::Sat && !clauses_satisfied(&instance.cnf, |l| value(engine, l)) {
            bad_models += 1;
        }
        verdicts.push(verdict);
    }
    (verdicts, bad_models, solve_s)
}

fn count(verdicts: &[SatResult], which: SatResult) -> usize {
    verdicts.iter().filter(|&&v| v == which).count()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    // (name, circuit, commuted-partner?): commuted pairs give structurally
    // unrelated miters, the rest are paired with a balanced restructuring.
    let circuits: Vec<(String, Aig, bool)> = if smoke {
        vec![
            ("adder16".into(), benchgen::adder(16).aig, true),
            ("multiplier4".into(), benchgen::multiplier(4).aig, true),
        ]
    } else {
        let (aw, mw, sw) = match scale {
            benchgen::SuiteScale::Tiny => (16, 4, 4),
            benchgen::SuiteScale::Small => (24, 5, 5),
            benchgen::SuiteScale::Default => (32, 6, 6),
        };
        vec![
            (format!("adder{aw}"), benchgen::adder(aw).aig, true),
            (
                format!("multiplier{mw}"),
                benchgen::multiplier(mw).aig,
                true,
            ),
            (format!("square{sw}"), benchgen::square(sw).aig, false),
            ("hypotenuse4".into(), benchgen::hypotenuse(4).aig, false),
            ("arbiter8".into(), benchgen::arbiter(8).aig, false),
        ]
    };

    println!("SAT-engine QoR: modern CDCL vs reference oracle, identical query plans");
    println!(
        "{:<14} {:<10} {:>7} {:>6} {:>6} {:>4} {:>10} {:>12} {:>9}",
        "circuit", "engine", "queries", "sat", "unsat", "unk", "conflicts", "props", "solve(s)"
    );

    let mut violations = 0usize;
    let mut miters: Vec<MiterRecord> = Vec::new();
    for (name, golden, commute) in &circuits {
        let revised = if *commute {
            commuted(golden)
        } else {
            logic_opt::balance(golden)
        };
        let instance = build_miter(golden, &revised);

        let mut solver = instance.cnf.to_solver();
        let (new_verdicts, new_bad, new_s) = run_queries(
            &instance,
            &mut solver,
            |s, q| s.solve_with_assumptions(q),
            |s, l| s.value(l),
        );
        let new_stats = solver.stats();

        // The post-query solver state must satisfy every structural invariant
        // (watches, trail, heap, learnt LBDs).
        let solver_audit = audit::audit_solver(&solver, audit::AuditLevel::Paranoid);
        if !solver_audit.is_clean() {
            eprintln!("{name}: solver audit failed:\n{solver_audit}");
            violations += 1;
        }

        let mut oracle = instance.cnf.to_reference_solver();
        let (old_verdicts, old_bad, old_s) = run_queries(
            &instance,
            &mut oracle,
            |s, q| s.solve_with_assumptions(q),
            |s, l| s.value(l),
        );
        let old_stats = oracle.stats();

        if new_verdicts != old_verdicts {
            eprintln!("{name}: VERDICT DISAGREEMENT between engines");
            violations += 1;
        }
        if new_bad + old_bad > 0 {
            eprintln!("{name}: {new_bad}+{old_bad} Sat model(s) violating a clause");
            violations += 1;
        }
        if new_stats.conflicts > old_stats.conflicts {
            eprintln!(
                "{name}: new engine used more conflicts ({} > {})",
                new_stats.conflicts, old_stats.conflicts
            );
            violations += 1;
        }
        if new_s > old_s {
            eprintln!("{name}: new engine slower ({new_s:.3}s > {old_s:.3}s)");
            violations += 1;
        }

        // Every Unsat answer must come with an assumption core that re-solves
        // to Unsat (checked on a fresh solver so the timed runs stay clean).
        let mut core_check = instance.cnf.to_solver();
        for (q, &v) in instance.queries.iter().zip(&new_verdicts) {
            if v != SatResult::Unsat {
                continue;
            }
            if core_check.solve_with_assumptions(q) != SatResult::Unsat {
                eprintln!("{name}: Unsat query not reproducible");
                violations += 1;
                continue;
            }
            let core: Vec<SLit> = core_check.failed_assumptions().to_vec();
            if !core.iter().all(|l| q.contains(l)) {
                eprintln!("{name}: core contains non-assumption literals");
                violations += 1;
            }
            if core_check.solve_with_assumptions(&core) != SatResult::Unsat {
                eprintln!("{name}: failed-assumption core is not unsatisfiable");
                violations += 1;
            }
        }

        for (engine, verdicts, stats_conflicts, stats_props, solve_s) in [
            (
                "cdcl",
                &new_verdicts,
                new_stats.conflicts,
                new_stats.propagations,
                new_s,
            ),
            (
                "reference",
                &old_verdicts,
                old_stats.conflicts,
                old_stats.propagations,
                old_s,
            ),
        ] {
            println!(
                "{:<14} {:<10} {:>7} {:>6} {:>6} {:>4} {:>10} {:>12} {:>9.3}",
                name,
                engine,
                verdicts.len(),
                count(verdicts, SatResult::Sat),
                count(verdicts, SatResult::Unsat),
                count(verdicts, SatResult::Unknown),
                stats_conflicts,
                stats_props,
                solve_s
            );
            miters.push(MiterRecord {
                circuit: name.clone(),
                engine: engine.into(),
                queries: verdicts.len(),
                sat: count(verdicts, SatResult::Sat),
                unsat: count(verdicts, SatResult::Unsat),
                unknown: count(verdicts, SatResult::Unknown),
                conflicts: stats_conflicts,
                propagations: stats_props,
                solve_s,
            });
        }
    }

    // Sweep workload: a choice-rich network (circuit stacked with two of its
    // restructurings) swept with and without counterexample refinement.
    println!(
        "\n{:<14} {:<6} {:>9} {:>8} {:>9} {:>7} {:>7} {:>11} {:>9}",
        "circuit",
        "cex",
        "sat_calls",
        "classes",
        "redundant",
        "resim",
        "splits",
        "calls/class",
        "sweep(s)"
    );
    let mut sweeps: Vec<SweepRecord> = Vec::new();
    for (name, golden, _) in &circuits {
        let stacked = aig::stack_over_shared_inputs(golden, &logic_opt::balance(golden), "_b");
        let stacked = aig::stack_over_shared_inputs(&stacked, &logic_opt::rewrite(&stacked), "_c");
        let mut calls_per_class = [f64::NAN; 2];
        for cex_refinement in [true, false] {
            // One simulation word (64 patterns) leaves plenty of aliased
            // candidates for SAT to refute — the regime where refinement pays.
            let sweeper = SatSweeper::new(SweepOptions {
                cex_refinement,
                sim_words: 1,
                ..SweepOptions::default()
            });
            let t = Instant::now();
            let (classes, stats) = sweeper.find_equivalences(&stacked);
            let sweep_s = t.elapsed().as_secs_f64();
            let proved_classes = classes.classes.len();
            let cpc = stats.sat_calls as f64 / proved_classes.max(1) as f64;
            calls_per_class[usize::from(!cex_refinement)] = cpc;
            println!(
                "{:<14} {:<6} {:>9} {:>8} {:>9} {:>7} {:>7} {:>11.2} {:>9.3}",
                name,
                if cex_refinement { "on" } else { "off" },
                stats.sat_calls,
                proved_classes,
                classes.num_redundant(),
                stats.resimulations,
                stats.cex_splits,
                cpc,
                sweep_s
            );
            sweeps.push(SweepRecord {
                circuit: name.clone(),
                cex_refinement,
                sat_calls: stats.sat_calls,
                proved_classes,
                redundant_nodes: classes.num_redundant(),
                resimulations: stats.resimulations,
                cex_splits: stats.cex_splits,
                calls_per_class: cpc,
                sweep_s,
            });
        }
        if calls_per_class[0] > calls_per_class[1] {
            eprintln!(
                "{name}: refinement used MORE SAT calls per proved class ({:.2} > {:.2})",
                calls_per_class[0], calls_per_class[1]
            );
            violations += 1;
        }
    }

    let report = Report { miters, sweeps };
    let json = serde_json::to_string_pretty(&report).expect("report serialize");
    std::fs::write("BENCH_sat.json", json).expect("write BENCH_sat.json");
    println!(
        "\n{} circuit(s), {} violation(s); wrote BENCH_sat.json",
        circuits.len(),
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
