//! Table III: circuit ↔ e-graph conversion comparison between the E-Syn-style
//! S-expression baseline and E-morphic's direct DAG-to-DAG conversion.
//!
//! Usage: `cargo run -p emorphic-bench --bin table3 --release`

use egraph::{AstSize, Extractor};
use emorphic::esyn::{esyn_backward, esyn_forward, flattened_tree_size, EsynLimits};
use emorphic::{aig_to_egraph, selection_to_aig};
use emorphic_bench::{scale_from_env, suite};
use std::time::{Duration, Instant};

fn main() {
    let circuits = suite();
    println!(
        "Table III reproduction: e-graph <-> circuit conversion (scale {:?})",
        scale_from_env()
    );
    println!(
        "{:<12} {:>10} | {:>14} {:>14} | {:>14} {:>14}",
        "Design", "#e-nodes", "E-Syn fwd", "E-Syn bwd", "E-morphic fwd", "E-morphic bwd"
    );

    // Scaled-down stand-ins for the paper's 3600 s / 8 GB limits.
    let limits = EsynLimits {
        max_tree_nodes: 5_000_000,
        time_limit: Duration::from_secs(20),
    };

    let mut fwd_times = Vec::new();
    let mut bwd_times = Vec::new();

    for circuit in &circuits {
        let aig = &circuit.aig;

        // E-morphic direct DAG-to-DAG conversion.
        let t0 = Instant::now();
        let conversion = aig_to_egraph(aig);
        let forward = t0.elapsed();
        let enodes = conversion.egraph.total_nodes();
        let t1 = Instant::now();
        let extractor = Extractor::new(&conversion.egraph, AstSize);
        let back = selection_to_aig(
            &conversion.egraph,
            &extractor.selection(),
            &conversion.roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
        );
        let backward = t1.elapsed();
        assert_eq!(back.num_outputs(), aig.num_outputs());
        fwd_times.push(forward.as_secs_f64());
        bwd_times.push(backward.as_secs_f64());

        // E-Syn baseline (S-expression flattening).
        let esyn_fwd_desc;
        let esyn_bwd_desc;
        match esyn_forward(aig, &limits) {
            Ok(conv) => {
                esyn_fwd_desc = format!("{:.2}s", conv.forward_time.as_secs_f64());
                match esyn_backward(&conv, aig.input_names(), aig.output_names(), &limits) {
                    Ok((_, time)) => esyn_bwd_desc = format!("{:.2}s", time.as_secs_f64()),
                    Err(failure) => esyn_bwd_desc = failure.to_string(),
                }
            }
            Err(failure) => {
                esyn_fwd_desc = failure.to_string();
                esyn_bwd_desc = "N.A.".to_string();
            }
        }

        println!(
            "{:<12} {:>10} | {:>14} {:>14} | {:>13.3}s {:>13.3}s   (flattened tree would be {} nodes)",
            circuit.name,
            enodes,
            esyn_fwd_desc,
            esyn_bwd_desc,
            forward.as_secs_f64(),
            backward.as_secs_f64(),
            flattened_tree_size(aig)
        );
    }

    let geomean =
        |xs: &[f64]| (xs.iter().map(|x| x.max(1e-9).ln()).sum::<f64>() / xs.len() as f64).exp();
    println!(
        "{:<12} {:>10} | {:>14} {:>14} | {:>13.3}s {:>13.3}s",
        "GEOMEAN",
        "-",
        "-",
        "-",
        geomean(&fwd_times),
        geomean(&bwd_times)
    );
    println!("\nPaper (Table III): E-Syn times out / runs out of memory on all circuits above");
    println!("~24k e-nodes, while E-morphic converts every circuit (up to 420k e-nodes) in");
    println!("under 10 seconds (geomean 0.65s forward / 0.46s backward).");
}
