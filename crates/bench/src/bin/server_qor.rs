//! Synthesis-server serving gate: a mixed workload through the persistent
//! daemon (`emorphic_server::SynthesisServer`), measuring what a service
//! cares about — throughput, tail latency, cache effectiveness — and
//! asserting the serving contract:
//!
//! * every served netlist is CEC-verified against the submitted circuit
//!   (both by the server and re-proved independently here);
//! * resubmitting a circuit is a cache hit at least 10× faster than the
//!   cold computation it repeats;
//! * re-running a circuit under a different extraction engine restores the
//!   stored e-graph checkpoint instead of re-saturating (the expensive
//!   phase runs once per saturation key);
//! * a batch of duplicates is served with bit-identical answers no matter
//!   how the worker pool interleaves.
//!
//! Results go to `BENCH_server.json` (jobs/sec, p50/p99 latency, cache hit
//! rate, per-circuit cold/warm/re-extract rows).
//!
//! Usage: `cargo run -p emorphic-bench --bin server_qor --release [-- --smoke]`
//! Set `EMORPHIC_SCALE=tiny|small|default` to control circuit sizes.

use benchgen::BenchCircuit;
use emorphic::flow::FlowConfig;
use emorphic::ExtractorKind;
use emorphic_bench::{flow_config_for, scale_from_env};
use emorphic_server::{JobRequest, JobState, ServerOptions, SynthesisServer};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct RunRecord {
    circuit: String,
    ands: usize,
    phase: String,
    latency_ms: f64,
    cache_hit: bool,
    reused_checkpoint: bool,
    verified: bool,
    area_um2: f64,
    delay_ps: f64,
    egraph_nodes: usize,
}

#[derive(Serialize)]
struct Report {
    workers: usize,
    jobs: usize,
    jobs_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    cache_hit_rate: f64,
    checkpoint_hits: u64,
    saturations: u64,
    min_warm_speedup: f64,
    runs: Vec<RunRecord>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn serve(
    server: &SynthesisServer,
    circuit: &BenchCircuit,
    config: FlowConfig,
    phase: &str,
    runs: &mut Vec<RunRecord>,
    violations: &mut usize,
) -> f64 {
    let t = Instant::now();
    let id = server.submit(JobRequest::new(circuit.aig.clone(), config));
    let status = server.wait(id).expect("job vanished");
    let latency_ms = t.elapsed().as_secs_f64() * 1e3;
    if status.state != JobState::Completed {
        eprintln!(
            "{}: {phase} job ended {:?} instead of completing",
            circuit.name, status.state
        );
        *violations += 1;
        return latency_ms;
    }
    let result = status.result.expect("completed without result");
    if !result.verified {
        eprintln!(
            "{}: {phase} netlist NOT verified by the server",
            circuit.name
        );
        *violations += 1;
    }
    // Independent re-proof: the served netlist must be SAT-CEC equivalent
    // to the circuit that was submitted (swept, to close the arithmetic
    // miters the monolithic check cannot within the budget).
    let cec = cec::check_equivalence_swept(
        &circuit.aig,
        &result.final_aig,
        &cec::CecOptions::default(),
        &cec::SweepOptions::default(),
    );
    if !cec.is_equivalent() {
        eprintln!(
            "{}: {phase} served netlist failed independent CEC re-proof",
            circuit.name
        );
        *violations += 1;
    }
    let rec = RunRecord {
        circuit: circuit.name.clone(),
        ands: circuit.aig.num_ands(),
        phase: phase.into(),
        latency_ms,
        cache_hit: status.cache_hit,
        reused_checkpoint: result.reused_checkpoint,
        verified: result.verified,
        area_um2: result.qor.area_um2,
        delay_ps: result.qor.delay_ps,
        egraph_nodes: result.egraph_nodes,
    };
    println!(
        "{:<14} {:<10} {:>10.2}ms {:>5} {:>10} {:>4} {:>10.2} {:>9.1}",
        rec.circuit,
        rec.phase,
        rec.latency_ms,
        if rec.cache_hit { "hit" } else { "miss" },
        if rec.reused_checkpoint {
            "restored"
        } else {
            "fresh"
        },
        if rec.verified { "yes" } else { "NO" },
        rec.area_um2,
        rec.delay_ps,
    );
    runs.push(rec);
    latency_ms
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = scale_from_env();
    let circuits: Vec<BenchCircuit> = if smoke {
        let mut mult = benchgen::multiplier(4);
        mult.name = "multiplier4".into();
        let mut add = benchgen::adder(16);
        add.name = "adder16".into();
        vec![mult, add, benchgen::crossbar(4, 2)]
    } else {
        benchgen::scaling_suite(scale)
    };
    let config = if smoke {
        FlowConfig::fast()
    } else {
        flow_config_for(scale)
    };

    let workers = 4;
    let server = SynthesisServer::start(&ServerOptions { workers });
    println!(
        "Synthesis-as-a-service gate: {workers} workers, {} circuits",
        circuits.len()
    );
    println!(
        "{:<14} {:<10} {:>12} {:>5} {:>10} {:>4} {:>10} {:>9}",
        "circuit", "phase", "latency", "cache", "checkpoint", "ok", "area", "delay"
    );

    let mut violations = 0usize;
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut min_warm_speedup = f64::INFINITY;
    let wall = Instant::now();

    for circuit in &circuits {
        // Cold: the full prepare → saturate → extract → verify → map flow.
        let cold_ms = serve(
            &server,
            circuit,
            config.clone(),
            "cold",
            &mut runs,
            &mut violations,
        );

        // Warm: the identical request again — must be a pure cache hit.
        let warm_ms = serve(
            &server,
            circuit,
            config.clone(),
            "warm",
            &mut runs,
            &mut violations,
        );
        let warm = runs.last().expect("warm run recorded");
        if !warm.cache_hit {
            eprintln!(
                "{}: warm resubmission missed the result cache",
                circuit.name
            );
            violations += 1;
        }
        let speedup = cold_ms / warm_ms.max(1e-6);
        min_warm_speedup = min_warm_speedup.min(speedup);
        if speedup < 10.0 {
            eprintln!(
                "{}: cached resubmission only {speedup:.1}x faster than cold (gate: 10x)",
                circuit.name
            );
            violations += 1;
        }

        // Re-extract: a different extraction engine is a different result
        // key but the same saturation key — the checkpoint must be restored
        // and the e-graph NOT rebuilt.
        let saturations_before = server.stats().saturations;
        let reconfigured = config.clone().with_extractor(match config.extractor {
            ExtractorKind::BottomUp => ExtractorKind::GlobalGreedyDag,
            _ => ExtractorKind::BottomUp,
        });
        serve(
            &server,
            circuit,
            reconfigured,
            "re-extract",
            &mut runs,
            &mut violations,
        );
        let re_extract = runs.last().expect("re-extract run recorded");
        if !re_extract.reused_checkpoint {
            eprintln!(
                "{}: extractor change re-saturated instead of restoring the checkpoint",
                circuit.name
            );
            violations += 1;
        }
        if server.stats().saturations != saturations_before {
            eprintln!("{}: re-extraction ran a fresh saturation", circuit.name);
            violations += 1;
        }
    }

    // Batch of duplicates over the pool: every answer for one cache key must
    // be the same object (bit-identical serialization).
    if let Some(circuit) = circuits.first() {
        let requests = (0..2 * workers)
            .map(|_| JobRequest::new(circuit.aig.clone(), config.clone()))
            .collect();
        let t = Instant::now();
        let statuses = server.run_batch(requests);
        let batch_ms = t.elapsed().as_secs_f64() * 1e3;
        let mut bytes: Vec<String> = Vec::new();
        for status in statuses {
            let status = status.expect("batch job vanished");
            if status.state != JobState::Completed {
                eprintln!("{}: batch job ended {:?}", circuit.name, status.state);
                violations += 1;
                continue;
            }
            let result = status.result.expect("completed without result");
            bytes.push(serde_json::to_string(&result.final_aig).expect("serialize netlist"));
        }
        if !bytes.windows(2).all(|w| w[0] == w[1]) {
            eprintln!(
                "{}: batch duplicates served non-identical netlists",
                circuit.name
            );
            violations += 1;
        }
        println!(
            "\nbatch: {} duplicate jobs over {workers} workers in {batch_ms:.2}ms, all identical",
            2 * workers
        );
    }

    let wall_s = wall.elapsed().as_secs_f64();
    let stats = server.stats();
    let mut sorted_ms: Vec<f64> = runs.iter().map(|r| r.latency_ms).collect();
    sorted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let report = Report {
        workers,
        jobs: stats.submitted as usize,
        jobs_per_sec: stats.submitted as f64 / wall_s.max(1e-9),
        p50_latency_ms: percentile(&sorted_ms, 0.50),
        p99_latency_ms: percentile(&sorted_ms, 0.99),
        cache_hit_rate: stats.cache_hits as f64 / (stats.submitted as f64).max(1.0),
        checkpoint_hits: stats.checkpoint_hits,
        saturations: stats.saturations,
        min_warm_speedup,
        runs,
    };
    println!(
        "served {} jobs at {:.2} jobs/s; p50 {:.2}ms p99 {:.2}ms; \
         cache hit rate {:.0}%; {} saturations, {} checkpoint restores; \
         min warm speedup {:.0}x",
        report.jobs,
        report.jobs_per_sec,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.cache_hit_rate * 100.0,
        report.saturations,
        report.checkpoint_hits,
        report.min_warm_speedup,
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialize");
    std::fs::write("BENCH_server.json", json).expect("write BENCH_server.json");
    println!(
        "{} circuit(s), {} violation(s); wrote BENCH_server.json",
        circuits.len(),
        violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
