//! Shared helpers for the E-morphic benchmark harness.
//!
//! The binaries in `src/bin` regenerate every table and figure of the paper's
//! evaluation section (see `DESIGN.md` for the experiment index); the
//! Criterion benches in `benches/` cover the micro-benchmarks and ablations.
//! This library holds the pieces they share: suite selection, learned-model
//! training, and table formatting.

#![warn(missing_docs)]

use aig::Aig;
use benchgen::{BenchCircuit, SuiteScale};
use costmodel::{CostEvaluator, LearnedCost, TechMapCost};
use emorphic::extract::sa::{SaExtractor, SaOptions};
use emorphic::extract::ExtractionCost;
use emorphic::flow::FlowConfig;
use emorphic::{aig_to_egraph, all_rules, bottom_up_extract, selection_to_aig};
use logic_opt::{balance, refactor, rewrite};
use techmap::library::asap7_like;
use techmap::Qor;

/// Reads the benchmark scale from the `EMORPHIC_SCALE` environment variable
/// (`tiny`, `small` or `default`), defaulting to `small` so the whole harness
/// finishes in minutes on a laptop.
pub fn scale_from_env() -> SuiteScale {
    match std::env::var("EMORPHIC_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => SuiteScale::Tiny,
        "default" | "full" => SuiteScale::Default,
        _ => SuiteScale::Small,
    }
}

/// Returns the benchmark suite at the environment-selected scale.
pub fn suite() -> Vec<BenchCircuit> {
    benchgen::epfl_like_suite(scale_from_env())
}

/// Returns a flow configuration sized to the given suite scale.
pub fn flow_config_for(scale: SuiteScale) -> FlowConfig {
    match scale {
        SuiteScale::Tiny => FlowConfig::fast(),
        SuiteScale::Small => FlowConfig {
            rounds: 3,
            rewrite_iterations: 4,
            node_limit: 60_000,
            match_limit: 1_000,
            sa: SaOptions {
                iterations: 3,
                threads: 2,
                ..SaOptions::default()
            },
            ..FlowConfig::paper()
        },
        SuiteScale::Default => FlowConfig::paper(),
    }
}

/// Generates structural variants of a circuit: technology-independent pass
/// combinations plus e-graph extractions with different seeds. Used as the
/// training set of the learned cost model (the OpenABC-D stand-in).
pub fn structural_variants(circuit: &Aig, variants: usize, seed: u64) -> Vec<Aig> {
    let mut out = Vec::with_capacity(variants);
    out.push(circuit.clone());
    out.push(balance(circuit));
    out.push(rewrite(circuit));
    out.push(refactor(&balance(circuit)));
    if out.len() >= variants {
        out.truncate(variants);
        return out;
    }
    // E-graph-derived variants: different annealing seeds give different
    // extracted structures.
    let conversion = aig_to_egraph(circuit);
    let runner = egraph::Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(3)
        .with_node_limit(30_000)
        .with_scheduler(egraph::Scheduler::Backoff {
            match_limit: 500,
            ban_length: 2,
        })
        .run(&all_rules());
    let saturated = emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    };
    let (greedy, _) = bottom_up_extract(&saturated.egraph, ExtractionCost::Size);
    out.push(selection_to_aig(
        &saturated.egraph,
        &greedy,
        &saturated.roots,
        &saturated.input_names,
        &saturated.output_names,
        circuit.name(),
    ));
    let mut index = 0u64;
    let parent_index = saturated.egraph.parent_index();
    while out.len() < variants {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ index);
        let neighbor = emorphic::extract::sa::generate_neighbor(
            &saturated.egraph,
            &parent_index,
            &greedy,
            if index.is_multiple_of(2) {
                ExtractionCost::Size
            } else {
                ExtractionCost::Depth
            },
            0.3,
            &mut rng,
        );
        out.push(selection_to_aig(
            &saturated.egraph,
            &neighbor,
            &saturated.roots,
            &saturated.input_names,
            &saturated.output_names,
            circuit.name(),
        ));
        index += 1;
    }
    out
}

/// Trains the learned delay model on structural variants of the given
/// circuits, labelled with the real technology mapper. Returns the model plus
/// the held-out predictions and labels used for MAPE / Kendall τ reporting.
pub fn train_learned_model(
    circuits: &[Aig],
    variants_per_circuit: usize,
) -> (LearnedCost, Vec<f64>, Vec<f64>) {
    let mapper = TechMapCost::new(asap7_like());
    let mut samples: Vec<(Aig, f64)> = Vec::new();
    for (i, circuit) in circuits.iter().enumerate() {
        for variant in structural_variants(circuit, variants_per_circuit, 0xC0DE + i as u64) {
            let delay = mapper.qor(&variant).delay_ps;
            samples.push((variant, delay));
        }
    }
    // Hold out every 4th sample for evaluation.
    let mut train = Vec::new();
    let mut held_out = Vec::new();
    for (i, sample) in samples.into_iter().enumerate() {
        if i % 4 == 3 {
            held_out.push(sample);
        } else {
            train.push(sample);
        }
    }
    let model = LearnedCost::train(&train, 1e-2);
    let predictions: Vec<f64> = held_out
        .iter()
        .map(|(aig, _)| model.evaluate(aig))
        .collect();
    let truth: Vec<f64> = held_out.iter().map(|(_, d)| *d).collect();
    (model, predictions, truth)
}

/// Formats one Table II-style row.
pub fn format_qor_row(name: &str, qor: &Qor, runtime_s: f64) -> String {
    format!(
        "{:<12} {:>12.2} {:>12.2} {:>6} {:>10.2}",
        name, qor.area_um2, qor.delay_ps, qor.levels, runtime_s
    )
}

/// Simulated-annealing extraction on an already converted + rewritten
/// circuit, used by benches that want to time extraction in isolation.
pub fn run_sa_extraction(
    conversion: &emorphic::convert::ConversionResult,
    options: SaOptions,
) -> emorphic::extract::sa::SaResult {
    let evaluator = TechMapCost::new(asap7_like());
    SaExtractor::new(options).extract(conversion, &evaluator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinct_and_equivalent() {
        let circuit = benchgen::adder(5).aig;
        let variants = structural_variants(&circuit, 6, 1);
        assert_eq!(variants.len(), 6);
        for variant in &variants {
            let res = cec::check_equivalence(&circuit, variant, &cec::CecOptions::default());
            assert!(res.is_equivalent());
        }
    }

    #[test]
    fn learned_model_training_produces_finite_metrics() {
        let circuits = vec![benchgen::adder(4).aig, benchgen::adder(6).aig];
        let (model, predictions, truth) = train_learned_model(&circuits, 5);
        assert!(!predictions.is_empty());
        assert_eq!(predictions.len(), truth.len());
        let mape = costmodel::metrics::mape(&predictions, &truth);
        assert!(mape.is_finite());
        let _ = model.evaluate(&benchgen::adder(5).aig);
    }

    #[test]
    fn scale_parsing_defaults_to_small() {
        assert_eq!(flow_config_for(SuiteScale::Tiny).rounds, 2);
        assert_eq!(flow_config_for(SuiteScale::Default).rounds, 4);
    }
}
