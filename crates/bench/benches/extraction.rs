//! Criterion bench: e-graph extraction — solution-space pruning ablation
//! (Fig. 6) and the simulated-annealing extractor.

use costmodel::TechMapCost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph::{Runner, Scheduler};
use emorphic::extract::sa::{SaExtractor, SaOptions};
use emorphic::extract::{BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine};
use emorphic::{aig_to_egraph, all_rules};
use std::hint::black_box;
use techmap::library::asap7_like;

fn saturated(width: usize, iters: usize) -> emorphic::convert::ConversionResult {
    let circuit = benchgen::adder(width).aig;
    let conversion = aig_to_egraph(&circuit);
    let runner = Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(iters)
        .with_node_limit(40_000)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 500,
            ban_length: 2,
        })
        .run(&all_rules());
    emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    }
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction_pruning");
    group.sample_size(10);
    for width in [5usize, 8] {
        let conv = saturated(width, 4);
        let budget = ExtractBudget::unlimited();
        group.bench_with_input(
            BenchmarkId::new("pruned", conv.egraph.total_nodes()),
            &conv,
            |b, conv| {
                let engine = BottomUpEngine::new(ExtractionCost::Depth);
                b.iter(|| black_box(engine.extract(&conv.egraph, &conv.roots, &budget)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unpruned", conv.egraph.total_nodes()),
            &conv,
            |b, conv| {
                let engine = BottomUpEngine::new(ExtractionCost::Depth).with_pruning(false);
                b.iter(|| black_box(engine.extract(&conv.egraph, &conv.roots, &budget)))
            },
        );
    }
    group.finish();
}

fn bench_sa(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction_sa");
    group.sample_size(10);
    let conv = saturated(5, 3);
    let evaluator = TechMapCost::new(asap7_like());
    for threads in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                let extractor = SaExtractor::new(SaOptions {
                    iterations: 2,
                    threads: t,
                    ..SaOptions::default()
                });
                black_box(extractor.extract(&conv, &evaluator))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_sa);
criterion_main!(benches);
