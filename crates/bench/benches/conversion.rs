//! Criterion bench: circuit ↔ e-graph conversion (Table III micro-benchmark).
//!
//! Compares E-morphic's direct DAG-to-DAG conversion with the E-Syn-style
//! S-expression baseline across circuit sizes, in both directions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph::{AstSize, Extractor};
use emorphic::esyn::{esyn_forward, EsynLimits};
use emorphic::{aig_to_egraph, selection_to_aig};
use std::hint::black_box;
use std::time::Duration;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion_forward");
    group.sample_size(10);
    for width in [6usize, 10, 14] {
        let circuit = benchgen::adder(width).aig;
        group.bench_with_input(
            BenchmarkId::new("dag_to_dag", circuit.num_ands()),
            &circuit,
            |b, aig| b.iter(|| black_box(aig_to_egraph(aig))),
        );
        // The E-Syn baseline is only benchmarked where it completes quickly.
        if width <= 10 {
            let limits = EsynLimits {
                max_tree_nodes: 500_000,
                time_limit: Duration::from_secs(5),
            };
            group.bench_with_input(
                BenchmarkId::new("esyn_sexpr", circuit.num_ands()),
                &circuit,
                |b, aig| b.iter(|| black_box(esyn_forward(aig, &limits).ok())),
            );
        }
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion_backward");
    group.sample_size(10);
    for width in [6usize, 10, 14] {
        let circuit = benchgen::adder(width).aig;
        let conversion = aig_to_egraph(&circuit);
        let extractor = Extractor::new(&conversion.egraph, AstSize);
        let selection = extractor.selection();
        group.bench_with_input(
            BenchmarkId::new("dag_to_dag", circuit.num_ands()),
            &conversion,
            |b, conv| {
                b.iter(|| {
                    black_box(selection_to_aig(
                        &conv.egraph,
                        &selection,
                        &conv.roots,
                        &conv.input_names,
                        &conv.output_names,
                        &conv.name,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
