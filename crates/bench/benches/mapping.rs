//! Criterion bench: technology mapping — cut enumeration, LUT mapping, SOP
//! balancing and standard-cell mapping across circuit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use techmap::cell::map_to_cells;
use techmap::cuts::{enumerate_cuts, CutsOptions};
use techmap::library::asap7_like;
use techmap::lut::map_to_luts;
use techmap::sop::sop_balance;
use techmap::MapOptions;

fn bench_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_enumeration");
    group.sample_size(10);
    for width in [6usize, 10] {
        let circuit = benchgen::multiplier(width).aig;
        group.bench_with_input(
            BenchmarkId::new("k6c8", circuit.num_ands()),
            &circuit,
            |b, aig| {
                b.iter(|| {
                    black_box(enumerate_cuts(
                        aig,
                        &CutsOptions {
                            cut_size: 6,
                            cut_limit: 8,
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    let library = asap7_like();
    for width in [6usize, 10] {
        let circuit = benchgen::multiplier(width).aig;
        group.bench_with_input(
            BenchmarkId::new("lut6", circuit.num_ands()),
            &circuit,
            |b, aig| b.iter(|| black_box(map_to_luts(aig, &MapOptions::lut6()))),
        );
        group.bench_with_input(
            BenchmarkId::new("sop_balance", circuit.num_ands()),
            &circuit,
            |b, aig| b.iter(|| black_box(sop_balance(aig, &MapOptions::lut6()))),
        );
        group.bench_with_input(
            BenchmarkId::new("cell_map", circuit.num_ands()),
            &circuit,
            |b, aig| b.iter(|| black_box(map_to_cells(aig, &library, &MapOptions::default()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cuts, bench_mapping);
criterion_main!(benches);
