//! Criterion bench: equality-saturation rewriting — how e-graph growth and
//! iteration time scale with the number of rewriting iterations (the paper's
//! "few iterations suffice" argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egraph::{Runner, Scheduler};
use emorphic::{aig_to_egraph, all_rules};
use std::hint::black_box;

fn bench_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewriting_iterations");
    group.sample_size(10);
    let circuit = benchgen::adder(8).aig;
    let conversion = aig_to_egraph(&circuit);
    for iters in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                let runner = Runner::with_egraph(conversion.egraph.clone())
                    .with_iter_limit(iters)
                    .with_node_limit(50_000)
                    .with_scheduler(Scheduler::Backoff {
                        match_limit: 1_000,
                        ban_length: 2,
                    })
                    .run(&all_rules());
                black_box(runner.egraph.total_nodes())
            })
        });
    }
    group.finish();
}

fn bench_circuit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewriting_circuit_size");
    group.sample_size(10);
    for width in [4usize, 8, 12] {
        let circuit = benchgen::adder(width).aig;
        let conversion = aig_to_egraph(&circuit);
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.num_ands()),
            &conversion,
            |b, conv| {
                b.iter(|| {
                    let runner = Runner::with_egraph(conv.egraph.clone())
                        .with_iter_limit(3)
                        .with_node_limit(50_000)
                        .with_scheduler(Scheduler::Backoff {
                            match_limit: 500,
                            ban_length: 2,
                        })
                        .run(&all_rules());
                    black_box(runner.egraph.num_classes())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_iterations, bench_circuit_scaling);
criterion_main!(benches);
