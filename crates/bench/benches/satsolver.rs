//! Criterion bench: the SAT substrate — pigeonhole instances and
//! combinational equivalence-checking miters.

use cec::{check_equivalence, CecOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logic_opt::balance;
use sat::{Lit, Solver};
use std::hint::black_box;

fn pigeonhole(n: usize) -> Solver {
    let mut solver = Solver::new();
    let x: Vec<Vec<Lit>> = (0..=n)
        .map(|_| (0..n).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    for pigeon in &x {
        solver.add_clause(pigeon);
    }
    for (p1, row1) in x.iter().enumerate() {
        for row2 in &x[(p1 + 1)..] {
            for (&a, &b) in row1.iter().zip(row2) {
                solver.add_clause(&[!a, !b]);
            }
        }
    }
    solver
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_pigeonhole");
    group.sample_size(10);
    for n in [4usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = pigeonhole(n);
                black_box(solver.solve())
            })
        });
    }
    group.finish();
}

fn bench_cec(c: &mut Criterion) {
    let mut group = c.benchmark_group("cec_miter");
    group.sample_size(10);
    for width in [6usize, 10] {
        let golden = benchgen::adder(width).aig;
        let revised = balance(&golden);
        group.bench_with_input(
            BenchmarkId::from_parameter(golden.num_ands()),
            &(golden, revised),
            |b, (golden, revised)| {
                b.iter(|| black_box(check_equivalence(golden, revised, &CecOptions::default())))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_cec);
criterion_main!(benches);
