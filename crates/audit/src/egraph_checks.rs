//! Checkers over [`egraph::EGraph`]: the typed successors of the deprecated
//! stringly-typed `EGraph::check_invariants`, split one rule per failure
//! class so mutation tests can pin each detection.
//!
//! All checkers read through the raw audit accessors
//! ([`EGraph::memo_entries`], [`EGraph::raw_classes`], …), never the
//! clean-graph-asserting iteration API, and canonicalize ids through a
//! *bounded* union-find walk — so a deliberately corrupted graph (even one
//! with a union-find cycle, on which `find` would not terminate) is
//! diagnosed instead of crashed on.

use egraph::{EGraph, Id, Language, UnionFind};
use fxhash::{FxHashMap, FxHashSet};

use crate::report::{AuditReport, RuleId, Severity};
use crate::Check;

/// Longest parent chain the bounded walks tolerate before declaring the
/// union-find corrupt. Path compression keeps real chains far shorter.
const FIND_BUDGET: usize = 1 << 16;

/// Bounded, range-guarded `find`: returns `None` when the chain leaves the
/// id space or fails to reach a root within [`FIND_BUDGET`] steps.
fn safe_find(uf: &UnionFind, mut id: Id) -> Option<Id> {
    for _ in 0..FIND_BUDGET {
        if id.index() >= uf.len() {
            return None;
        }
        let parent = uf.parent(id);
        if parent == id {
            return Some(id);
        }
        id = parent;
    }
    None
}

/// Canonicalizes a node's children through [`safe_find`]; `None` when any
/// child cannot be canonicalized.
fn safe_canonicalize<L: Language>(uf: &UnionFind, node: &L) -> Option<L> {
    let mut out = node.clone();
    for child in out.children_mut() {
        *child = safe_find(uf, *child)?;
    }
    Some(out)
}

/// [`RuleId::EgraphDirty`]: the worklists must be empty at a phase boundary
/// (the graph has been rebuilt).
pub struct Dirty;

impl<L: Language> Check<EGraph<L>> for Dirty {
    fn rule(&self) -> RuleId {
        RuleId::EgraphDirty
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        if egraph.is_dirty() {
            report.push(
                RuleId::EgraphDirty,
                Severity::Error,
                "worklists",
                "e-graph is dirty (pending repairs); rebuild() must run before the phase boundary",
            );
        }
    }
}

/// [`RuleId::EgraphUnionFind`]: parent slots are in range, chains terminate,
/// and root sizes match the member count of each set.
pub struct UnionFindSane;

impl<L: Language> Check<EGraph<L>> for UnionFindSane {
    fn rule(&self) -> RuleId {
        RuleId::EgraphUnionFind
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        let n = uf.len();
        let mut members: FxHashMap<Id, u32> = FxHashMap::default();
        for index in 0..n {
            let id = Id::from(index);
            if uf.parent(id).index() >= n {
                report.push(
                    RuleId::EgraphUnionFind,
                    Severity::Error,
                    format!("id {index}"),
                    format!(
                        "parent slot {} is out of range ({n} ids)",
                        uf.parent(id).index()
                    ),
                );
                continue;
            }
            match safe_find(uf, id) {
                Some(root) => *members.entry(root).or_insert(0) += 1,
                None => report.push(
                    RuleId::EgraphUnionFind,
                    Severity::Error,
                    format!("id {index}"),
                    "parent chain does not terminate (cycle or budget exceeded)",
                ),
            }
        }
        for (root, count) in members {
            let stored = uf.raw_size(root);
            if stored != count {
                report.push(
                    RuleId::EgraphUnionFind,
                    Severity::Error,
                    format!("root {root}"),
                    format!("stored size {stored} disagrees with {count} reachable members"),
                );
            }
        }
    }
}

/// [`RuleId::EgraphCanonicalClass`]: every class-map key is canonical, the
/// class records its own id, and no class is empty.
pub struct CanonicalClass;

impl<L: Language> Check<EGraph<L>> for CanonicalClass {
    fn rule(&self) -> RuleId {
        RuleId::EgraphCanonicalClass
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        for (id, class) in egraph.raw_classes() {
            if safe_find(uf, id) != Some(id) {
                report.push(
                    RuleId::EgraphCanonicalClass,
                    Severity::Error,
                    format!("class {id}"),
                    "class-map key is not a canonical id",
                );
            }
            if class.id != id {
                report.push(
                    RuleId::EgraphCanonicalClass,
                    Severity::Error,
                    format!("class {id}"),
                    format!("class records wrong id {}", class.id),
                );
            }
            if class.nodes.is_empty() {
                report.push(
                    RuleId::EgraphCanonicalClass,
                    Severity::Error,
                    format!("class {id}"),
                    "class is empty",
                );
            }
        }
    }
}

/// [`RuleId::EgraphCanonicalChildren`]: after a rebuild every stored node
/// has canonical children.
pub struct CanonicalChildren;

impl<L: Language> Check<EGraph<L>> for CanonicalChildren {
    fn rule(&self) -> RuleId {
        RuleId::EgraphCanonicalChildren
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        for (id, class) in egraph.raw_classes() {
            for node in &class.nodes {
                for &child in node.children() {
                    if safe_find(uf, child) != Some(child) {
                        report.push(
                            RuleId::EgraphCanonicalChildren,
                            Severity::Error,
                            format!("class {id}"),
                            format!("node {node:?} has non-canonical child {child}"),
                        );
                    }
                }
            }
        }
    }
}

/// [`RuleId::EgraphCongruence`]: no two distinct classes contain the same
/// canonical node form.
pub struct Congruence;

impl<L: Language> Check<EGraph<L>> for Congruence {
    fn rule(&self) -> RuleId {
        RuleId::EgraphCongruence
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        let mut seen: FxHashMap<L, Id> = FxHashMap::default();
        for (id, class) in egraph.raw_classes() {
            for node in &class.nodes {
                let Some(canon) = safe_canonicalize(uf, node) else {
                    continue; // UnionFindSane reports the broken chain
                };
                match seen.get(&canon) {
                    Some(&other) if other != id => report.push(
                        RuleId::EgraphCongruence,
                        Severity::Error,
                        format!("class {id}"),
                        format!("congruence violated: {node:?} also appears in class {other}"),
                    ),
                    _ => {
                        seen.insert(canon, id);
                    }
                }
            }
        }
    }
}

/// [`RuleId::EgraphHashcons`]: every stored node resolves through the memo
/// to its owning class, and every canonically-keyed memo entry is present in
/// the class it names (stale-keyed entries await compaction and are exempt).
pub struct Hashcons;

impl<L: Language> Check<EGraph<L>> for Hashcons {
    fn rule(&self) -> RuleId {
        RuleId::EgraphHashcons
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        let memo: FxHashMap<&L, Id> = egraph.memo_entries().collect();
        for (id, class) in egraph.raw_classes() {
            for node in &class.nodes {
                match memo.get(node) {
                    Some(&m) if safe_find(uf, m) == Some(id) => {}
                    Some(&m) => report.push(
                        RuleId::EgraphHashcons,
                        Severity::Error,
                        format!("class {id}"),
                        format!("hashcons points {node:?} to {m}, but it lives in {id}"),
                    ),
                    None => report.push(
                        RuleId::EgraphHashcons,
                        Severity::Error,
                        format!("class {id}"),
                        format!("node {node:?} is missing from the hashcons"),
                    ),
                }
            }
        }
        for (node, id) in egraph.memo_entries() {
            let canonical = node.children().iter().all(|&c| safe_find(uf, c) == Some(c));
            if !canonical {
                continue;
            }
            let Some(class_id) = safe_find(uf, id) else {
                continue;
            };
            let present = egraph
                .raw_class(class_id)
                .is_some_and(|class| class.nodes.iter().any(|n| n == node));
            if !present {
                report.push(
                    RuleId::EgraphHashcons,
                    Severity::Error,
                    format!("class {class_id}"),
                    format!("canonical hashcons entry {node:?} -> {id} is absent from its class"),
                );
            }
        }
    }
}

/// [`RuleId::EgraphParents`]: the incrementally maintained parent lists
/// cover every child→user edge a full scan finds (compared canonicalized,
/// since entries may be stale in form).
pub struct Parents;

impl<L: Language> Check<EGraph<L>> for Parents {
    fn rule(&self) -> RuleId {
        RuleId::EgraphParents
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        let mut parent_sets: FxHashMap<Id, FxHashSet<(L, Id)>> = FxHashMap::default();
        for (id, class) in egraph.raw_classes() {
            let set = class
                .parents()
                .filter_map(|(node, pclass)| {
                    Some((safe_canonicalize(uf, node)?, safe_find(uf, pclass)?))
                })
                .collect();
            parent_sets.insert(id, set);
        }
        for (id, class) in egraph.raw_classes() {
            for node in &class.nodes {
                let Some(canon) = safe_canonicalize(uf, node) else {
                    continue; // UnionFindSane reports the broken chain
                };
                for &child in node.children() {
                    let Some(child) = safe_find(uf, child) else {
                        continue;
                    };
                    let covered = parent_sets
                        .get(&child)
                        .is_some_and(|set| set.contains(&(canon.clone(), id)));
                    if !covered {
                        report.push(
                            RuleId::EgraphParents,
                            Severity::Error,
                            format!("class {child}"),
                            format!("parent list misses user {node:?} (class {id})"),
                        );
                    }
                }
            }
        }
    }
}

/// [`RuleId::EgraphOpIndex`]: the operator index covers every (op, class)
/// pair of the live nodes (listed ids may be stale; compared canonicalized).
pub struct OpIndex;

impl<L: Language> Check<EGraph<L>> for OpIndex {
    fn rule(&self) -> RuleId {
        RuleId::EgraphOpIndex
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let uf = egraph.unionfind();
        let mut op_sets: FxHashMap<u64, FxHashSet<Id>> = FxHashMap::default();
        for (key, ids) in egraph.op_index_entries() {
            op_sets.insert(key, ids.iter().filter_map(|&i| safe_find(uf, i)).collect());
        }
        for (id, class) in egraph.raw_classes() {
            for node in &class.nodes {
                let indexed = op_sets
                    .get(&node.op_key())
                    .is_some_and(|ids| ids.contains(&id));
                if !indexed {
                    report.push(
                        RuleId::EgraphOpIndex,
                        Severity::Error,
                        format!("class {id}"),
                        format!("operator index misses this class for node {node:?}"),
                    );
                }
            }
        }
    }
}

/// [`RuleId::EgraphNodeCount`]: the incrementally maintained live-node
/// counter equals the sum of the class node lists.
pub struct NodeCount;

impl<L: Language> Check<EGraph<L>> for NodeCount {
    fn rule(&self) -> RuleId {
        RuleId::EgraphNodeCount
    }

    fn check(&self, egraph: &EGraph<L>, report: &mut AuditReport) {
        let counted: usize = egraph
            .raw_classes()
            .map(|(_, class)| class.nodes.len())
            .sum();
        if counted != egraph.total_nodes() {
            report.push(
                RuleId::EgraphNodeCount,
                Severity::Error,
                "node counter",
                format!(
                    "counter says {} live nodes, class lists hold {counted}",
                    egraph.total_nodes()
                ),
            );
        }
    }
}

/// The full e-graph catalog (all nine rules; every one is cheap — linear in
/// the graph with hashing).
pub fn egraph_catalog<L: Language>() -> Vec<Box<dyn Check<EGraph<L>>>> {
    vec![
        Box::new(Dirty),
        Box::new(UnionFindSane),
        Box::new(CanonicalClass),
        Box::new(CanonicalChildren),
        Box::new(Congruence),
        Box::new(Hashcons),
        Box::new(Parents),
        Box::new(OpIndex),
        Box::new(NodeCount),
    ]
}

/// Audits an e-graph with the full catalog at the given level.
pub fn audit_egraph<L: Language>(egraph: &EGraph<L>, level: crate::AuditLevel) -> AuditReport {
    crate::run_checks(egraph, &egraph_catalog(), level)
}
