//! Checkers over [`sat::Solver`] internals, read through the
//! [`sat::SolverAudit`] view: the two-watched-literal scheme, trail/level
//! bookkeeping, the indexed activity heap, and learnt-clause LBD metadata.

use fxhash::FxHashMap;
use sat::{Lit, Solver, Var};

use crate::report::{AuditReport, RuleId, Severity};
use crate::Check;

/// Iterates every literal of a solver with `n` variables.
fn all_lits(n: usize) -> impl Iterator<Item = Lit> {
    (0..n as u32).flat_map(|v| [Lit::pos(Var(v)), Lit::neg(Var(v))])
}

/// [`RuleId::SatWatchInvariant`]: every live long clause is watched exactly
/// twice — once on each of its first two literals — by watchers whose
/// blockers are clause members; no watcher points at a dead or out-of-range
/// clause; binary watch lists are symmetric and sum to twice the
/// binary-clause count.
pub struct WatchInvariant;

impl Check<Solver> for WatchInvariant {
    fn rule(&self) -> RuleId {
        RuleId::SatWatchInvariant
    }

    fn check(&self, solver: &Solver, report: &mut AuditReport) {
        let audit = solver.audit();
        let n = audit.num_vars();
        // (cref, watched-literal slot) -> times seen across all watch lists.
        let mut watch_counts: FxHashMap<(u32, usize), usize> = FxHashMap::default();
        for lit in all_lits(n) {
            for (cref, blocker) in audit.watchers(lit) {
                let Some(lits) = audit.clause_lits(cref) else {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("watch {lit}"),
                        format!("watcher references clause slot {cref} out of range"),
                    );
                    continue;
                };
                if lits.is_empty() {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("watch {lit}"),
                        format!("watcher references deleted clause {cref}"),
                    );
                    continue;
                }
                let slot = match (lits.first(), lits.get(1)) {
                    (Some(&w0), _) if w0 == lit => 0,
                    (_, Some(&w1)) if w1 == lit => 1,
                    _ => {
                        report.push(
                            self.rule(),
                            Severity::Error,
                            format!("clause {cref}"),
                            format!("watched on {lit}, which is not one of its first two literals"),
                        );
                        continue;
                    }
                };
                if !lits.contains(&blocker) {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("clause {cref}"),
                        format!("blocker {blocker} is not a member of the clause"),
                    );
                }
                *watch_counts.entry((cref, slot)).or_insert(0) += 1;
            }
        }
        for (cref, lits, _, _) in audit.live_clauses() {
            for slot in [0usize, 1] {
                let count = watch_counts.get(&(cref, slot)).copied().unwrap_or(0);
                if count != 1 {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("clause {cref}"),
                        format!(
                            "literal {} (slot {slot}) carries {count} watcher(s); expected exactly 1",
                            lits.get(slot).map_or_else(|| "?".to_string(), Lit::to_string)
                        ),
                    );
                }
            }
        }
        // Binary watch lists: symmetric multiset, 2 entries per binary clause.
        let mut total_bin = 0usize;
        for lit in all_lits(n) {
            let partners = audit.bin_watchers(lit);
            total_bin += partners.len();
            for &partner in partners {
                if partner.var().index() >= n {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("binary watch {lit}"),
                        format!("partner {partner} uses an unknown variable"),
                    );
                    continue;
                }
                let back = audit
                    .bin_watchers(partner)
                    .iter()
                    .filter(|&&l| l == lit)
                    .count();
                let forth = partners.iter().filter(|&&l| l == partner).count();
                if back != forth {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("binary watch {lit}"),
                        format!("{lit} lists {partner} {forth} time(s) but {partner} lists {lit} {back} time(s)"),
                    );
                }
            }
        }
        if total_bin != 2 * audit.num_binary() {
            report.push(
                self.rule(),
                Severity::Error,
                "binary watches",
                format!(
                    "{total_bin} binary watch entries for {} binary clauses (expected {})",
                    audit.num_binary(),
                    2 * audit.num_binary()
                ),
            );
        }
    }
}

/// [`RuleId::SatTrailConsistent`]: the trail holds each variable at most
/// once, every trail literal is assigned true at the level of its segment,
/// every assigned variable is on the trail, and `qhead`/`trail_lim` stay in
/// bounds.
pub struct TrailConsistent;

impl Check<Solver> for TrailConsistent {
    fn rule(&self) -> RuleId {
        RuleId::SatTrailConsistent
    }

    fn check(&self, solver: &Solver, report: &mut AuditReport) {
        let audit = solver.audit();
        let n = audit.num_vars();
        let trail = audit.trail();
        let lim = audit.trail_lim();
        if audit.qhead() > trail.len() {
            report.push(
                self.rule(),
                Severity::Error,
                "qhead",
                format!(
                    "propagation head {} beyond trail length {}",
                    audit.qhead(),
                    trail.len()
                ),
            );
        }
        for window in lim.windows(2) {
            if window[0] > window[1] {
                report.push(
                    self.rule(),
                    Severity::Error,
                    "trail_lim",
                    format!(
                        "level starts {} and {} are not monotone",
                        window[0], window[1]
                    ),
                );
            }
        }
        if lim.last().is_some_and(|&last| last > trail.len()) {
            report.push(
                self.rule(),
                Severity::Error,
                "trail_lim",
                format!(
                    "last level start {} beyond trail length {}",
                    lim[lim.len() - 1],
                    trail.len()
                ),
            );
        }
        let mut on_trail = vec![false; n];
        for (pos, &lit) in trail.iter().enumerate() {
            let location = format!("trail[{pos}]");
            if lit.var().index() >= n {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location,
                    format!("literal {lit} uses an unknown variable"),
                );
                continue;
            }
            if on_trail[lit.var().index()] {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("variable of {lit} appears twice on the trail"),
                );
            }
            on_trail[lit.var().index()] = true;
            if audit.assign(lit.var()) != Some(!lit.is_neg()) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("{lit} is on the trail but not assigned true"),
                );
            }
            // The decision level of a trail position is the number of level
            // starts at or before it.
            let expected_level = lim.iter().filter(|&&start| start <= pos).count() as u32;
            if audit.level(lit.var()) != expected_level {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location,
                    format!(
                        "stored level {} disagrees with trail segment {expected_level}",
                        audit.level(lit.var())
                    ),
                );
            }
        }
        for (index, &seen) in on_trail.iter().enumerate().take(n) {
            let var = Var(index as u32);
            if audit.assign(var).is_some() && !seen {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("var {index}"),
                    "variable is assigned but absent from the trail",
                );
            }
        }
    }
}

/// [`RuleId::SatHeapIndex`]: `heap` and `heap_pos` agree bidirectionally,
/// every unassigned variable is in the heap, and the max-heap property holds
/// under the solver's ordering (higher activity wins, ties to the smaller
/// variable index).
pub struct HeapIndex;

impl Check<Solver> for HeapIndex {
    fn rule(&self) -> RuleId {
        RuleId::SatHeapIndex
    }

    fn check(&self, solver: &Solver, report: &mut AuditReport) {
        let audit = solver.audit();
        let n = audit.num_vars();
        let heap = audit.heap();
        for (i, &var) in heap.iter().enumerate() {
            if var.index() >= n {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("heap[{i}]"),
                    format!("holds unknown variable {}", var.index()),
                );
                continue;
            }
            if audit.heap_pos(var) != i as i32 {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("heap[{i}]"),
                    format!(
                        "variable {} has heap_pos {}, expected {i}",
                        var.index(),
                        audit.heap_pos(var)
                    ),
                );
            }
        }
        // Mirrors the solver's `heap_better`: higher activity first, ties
        // broken toward the smaller variable index.
        let better = |a: Var, b: Var| {
            let (aa, ba) = (audit.activity(a), audit.activity(b));
            aa > ba || (aa == ba && a.index() < b.index())
        };
        for i in 1..heap.len() {
            let parent = (i - 1) / 2;
            if heap[i].index() < n && heap[parent].index() < n && better(heap[i], heap[parent]) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("heap[{i}]"),
                    format!(
                        "variable {} outranks its parent {} (max-heap property violated)",
                        heap[i].index(),
                        heap[parent].index()
                    ),
                );
            }
        }
        for index in 0..n {
            let var = Var(index as u32);
            let pos = audit.heap_pos(var);
            if pos >= 0 && heap.get(pos as usize) != Some(&var) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("var {index}"),
                    format!("heap_pos {pos} does not point back at the variable"),
                );
            }
            if audit.assign(var).is_none() && pos < 0 {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("var {index}"),
                    "unassigned variable is missing from the decision heap",
                );
            }
        }
    }
}

/// [`RuleId::SatLbdBounds`]: every live learnt long clause stores a
/// literal-block distance between 1 and its length (the LBD counts distinct
/// decision levels among the clause's literals).
pub struct LbdBounds;

impl Check<Solver> for LbdBounds {
    fn rule(&self) -> RuleId {
        RuleId::SatLbdBounds
    }

    fn check(&self, solver: &Solver, report: &mut AuditReport) {
        let audit = solver.audit();
        for (cref, lits, learnt, lbd) in audit.live_clauses() {
            if !learnt {
                continue;
            }
            if lbd < 1 || lbd as usize > lits.len() {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("clause {cref}"),
                    format!("learnt clause of length {} stores LBD {lbd}", lits.len()),
                );
            }
        }
    }
}

/// The SAT-solver catalog (four rules, all cheap relative to solving).
pub fn sat_catalog() -> Vec<Box<dyn Check<Solver>>> {
    vec![
        Box::new(WatchInvariant),
        Box::new(TrailConsistent),
        Box::new(HeapIndex),
        Box::new(LbdBounds),
    ]
}

/// Audits a solver's internal state at the given level.
pub fn audit_solver(solver: &Solver, level: crate::AuditLevel) -> AuditReport {
    crate::run_checks(solver, &sat_catalog(), level)
}
