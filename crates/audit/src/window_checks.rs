//! Checkers over windowed partitions and stitched choice networks. A
//! [`window::Partition`] only carries node ids into the host AIG it was
//! carved from, so the checkers run over view structs pairing the two.

use aig::{Aig, NodeId};
use window::{Partition, Stitched};

use crate::report::{AuditReport, RuleId, Severity};
use crate::Check;

/// A partition together with the host AIG it was carved from.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedAig<'a> {
    /// The host network.
    pub aig: &'a Aig,
    /// The window cover.
    pub partition: &'a Partition,
}

/// A stitched choice network together with the host AIG and the partition
/// that produced it.
#[derive(Debug, Clone, Copy)]
pub struct StitchedDesign<'a> {
    /// The host network the stitch rebuilt.
    pub aig: &'a Aig,
    /// The window cover the choice spaces came from.
    pub partition: &'a Partition,
    /// The stitch product (global choice network + translation table).
    pub stitched: &'a Stitched,
}

/// [`RuleId::WindowCoverage`]: every AND gate of the host belongs to at
/// least one window volume (the partition is a cover, not a sample).
pub struct Coverage;

impl Check<PartitionedAig<'_>> for Coverage {
    fn rule(&self) -> RuleId {
        RuleId::WindowCoverage
    }

    fn check(&self, design: &PartitionedAig<'_>, report: &mut AuditReport) {
        let n = design.aig.num_nodes();
        let mut covered = vec![false; n];
        for window in &design.partition.windows {
            for v in &window.volume {
                if v.index() < n {
                    covered[v.index()] = true;
                }
            }
        }
        for id in design.aig.and_ids() {
            if !covered[id.index()] {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("node {id}"),
                    "AND gate is covered by no window volume",
                );
            }
        }
    }
}

/// [`RuleId::WindowLeafCut`]: each window is a true cut — the root is
/// interior, interior nodes are AND gates whose fanins stay inside
/// `volume ∪ leaves ∪ {constant}`, no leaf is also interior, and the
/// extracted cone's leaf map matches the declared leaves.
pub struct LeafCut;

impl Check<PartitionedAig<'_>> for LeafCut {
    fn rule(&self) -> RuleId {
        RuleId::WindowLeafCut
    }

    fn check(&self, design: &PartitionedAig<'_>, report: &mut AuditReport) {
        let n = design.aig.num_nodes();
        for window in &design.partition.windows {
            let location = format!("window {}", window.id);
            if !window.volume.contains(&window.root) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("root {} is not in its own volume", window.root),
                );
            }
            for leaf in &window.leaves {
                if leaf.index() >= n {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("leaf {leaf} references node {} of {n}", leaf.index()),
                    );
                }
                if window.volume.contains(leaf) {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("leaf {leaf} is also interior (cut crosses the volume)"),
                    );
                }
            }
            for v in &window.volume {
                if v.index() >= n {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("interior {v} references node {} of {n}", v.index()),
                    );
                    continue;
                }
                if !design.aig.node(*v).is_and() {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("interior {v} is not an AND gate"),
                    );
                    continue;
                }
                let (f0, f1) = design.aig.fanins(*v);
                for f in [f0, f1] {
                    let id = f.node();
                    if id != NodeId::CONST
                        && !window.volume.contains(&id)
                        && !window.leaves.contains(&id)
                    {
                        report.push(
                            self.rule(),
                            Severity::Error,
                            location.clone(),
                            format!("interior {v} reads {id} from outside volume and cut"),
                        );
                    }
                }
            }
            if window.cone.leaf_map != window.leaves {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location,
                    "extracted cone's leaf map disagrees with the declared leaves",
                );
            }
        }
    }
}

/// [`RuleId::WindowStitchTable`]: the stitch translation table maps every
/// boundary literal — each window's leaves and root, the host's inputs and
/// output drivers — and is sized to the host node space.
pub struct StitchTable;

impl Check<StitchedDesign<'_>> for StitchTable {
    fn rule(&self) -> RuleId {
        RuleId::WindowStitchTable
    }

    fn check(&self, design: &StitchedDesign<'_>, report: &mut AuditReport) {
        let table = &design.stitched.table;
        if table.len() != design.aig.num_nodes() {
            report.push(
                self.rule(),
                Severity::Error,
                "table",
                format!(
                    "table covers {} node slots but the host has {}",
                    table.len(),
                    design.aig.num_nodes()
                ),
            );
            return;
        }
        let mapped = |id: NodeId| table.get(id.index()).copied().flatten().is_some();
        for &input in design.aig.inputs() {
            if !mapped(input) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("input {input}"),
                    "host input has no stitched literal",
                );
            }
        }
        for (i, out) in design.aig.outputs().iter().enumerate() {
            if !mapped(out.node()) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("output {i}"),
                    format!("output driver {} has no stitched literal", out.node()),
                );
            }
        }
        for window in &design.partition.windows {
            let location = format!("window {}", window.id);
            if !mapped(window.root) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("root {} has no stitched literal", window.root),
                );
            }
            for leaf in &window.leaves {
                if !mapped(*leaf) {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("boundary leaf {leaf} has no stitched literal"),
                    );
                }
            }
        }
    }
}

/// [`RuleId::WindowChoiceDag`]: the stitched choice network's underlying
/// AIG satisfies the structural DAG catalog (fanin ranges, topological
/// order, normalized fanins, strash dedup). Violations found by the
/// delegated catalog are re-emitted under this rule so a stitch bug is
/// attributable to the stitcher, not to a generic AIG check.
pub struct ChoiceDag;

impl Check<StitchedDesign<'_>> for ChoiceDag {
    fn rule(&self) -> RuleId {
        RuleId::WindowChoiceDag
    }

    fn check(&self, design: &StitchedDesign<'_>, report: &mut AuditReport) {
        let inner = crate::run_checks(
            design.stitched.network.aig(),
            &crate::aig_checks::dag_catalog(),
            crate::AuditLevel::PhaseBoundaries,
        );
        for diag in inner.diagnostics {
            report.push(
                self.rule(),
                diag.severity,
                format!("stitched {}", diag.location),
                format!("[{}] {}", diag.rule, diag.message),
            );
        }
    }
}

/// The partition-invariant catalog.
pub fn window_catalog<'a>() -> Vec<Box<dyn Check<PartitionedAig<'a>>>> {
    vec![Box::new(Coverage), Box::new(LeafCut)]
}

/// The stitch-invariant catalog.
pub fn stitch_catalog<'a>() -> Vec<Box<dyn Check<StitchedDesign<'a>>>> {
    vec![Box::new(StitchTable), Box::new(ChoiceDag)]
}

/// Audits a window partition against its host AIG at the given level.
pub fn audit_partition(aig: &Aig, partition: &Partition, level: crate::AuditLevel) -> AuditReport {
    let design = PartitionedAig { aig, partition };
    crate::run_checks(&design, &window_catalog(), level)
}

/// Audits a stitched choice network against its host and partition at the
/// given level.
pub fn audit_stitched(
    aig: &Aig,
    partition: &Partition,
    stitched: &Stitched,
    level: crate::AuditLevel,
) -> AuditReport {
    let design = StitchedDesign {
        aig,
        partition,
        stitched,
    };
    crate::run_checks(&design, &stitch_catalog(), level)
}
