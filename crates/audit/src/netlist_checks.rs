//! Checkers over mapped netlists. A [`Netlist`] only carries node ids into
//! the AIG it was mapped from, so the checkers run over a [`MappedDesign`]
//! pairing the two.

use aig::{Aig, NodeId};
use fxhash::FxHashMap;
use techmap::cell::OutputDriver;
use techmap::{timing, Netlist};

use crate::report::{AuditReport, RuleId, Severity};
use crate::Check;

/// A netlist together with the AIG it was mapped from (the netlist's gate
/// roots and leaves index into that AIG's node space).
#[derive(Debug, Clone, Copy)]
pub struct MappedDesign<'a> {
    /// The source network.
    pub aig: &'a Aig,
    /// The mapped result.
    pub netlist: &'a Netlist,
}

/// [`RuleId::NetlistCoverLegal`]: every gate covers an AND node of the
/// source AIG with in-range leaves, no root is covered twice, and gates are
/// emitted in topological (ascending root id) order.
pub struct CoverLegal;

impl Check<MappedDesign<'_>> for CoverLegal {
    fn rule(&self) -> RuleId {
        RuleId::NetlistCoverLegal
    }

    fn check(&self, design: &MappedDesign<'_>, report: &mut AuditReport) {
        let n = design.aig.num_nodes();
        let mut previous: Option<NodeId> = None;
        let mut seen: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (i, gate) in design.netlist.gates.iter().enumerate() {
            let location = format!("gate {i}");
            if gate.root.index() >= n {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location,
                    format!("root references node {} of {n}", gate.root.index()),
                );
                continue;
            }
            if !design.aig.node(gate.root).is_and() {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("root {} is not an AND node", gate.root),
                );
            }
            if let Some(&first) = seen.get(&gate.root) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    location.clone(),
                    format!("root {} is already covered by gate {first}", gate.root),
                );
            } else {
                seen.insert(gate.root, i);
            }
            if let Some(prev) = previous {
                if gate.root <= prev {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!(
                            "root {} does not follow {prev} (gates must be topologically ordered)",
                            gate.root
                        ),
                    );
                }
            }
            previous = Some(gate.root);
            for leaf in &gate.leaves {
                if leaf.index() >= n {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        location.clone(),
                        format!("leaf references node {} of {n}", leaf.index()),
                    );
                }
            }
        }
    }
}

/// [`RuleId::NetlistFaninResolved`]: every gate leaf that is an AND node is
/// itself mapped by an earlier gate (inputs and the constant are the only
/// primary values), and every output driver resolves to a mapped node, an
/// input, or a constant.
pub struct FaninResolved;

impl Check<MappedDesign<'_>> for FaninResolved {
    fn rule(&self) -> RuleId {
        RuleId::NetlistFaninResolved
    }

    fn check(&self, design: &MappedDesign<'_>, report: &mut AuditReport) {
        let n = design.aig.num_nodes();
        let mut mapped: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (i, gate) in design.netlist.gates.iter().enumerate() {
            for leaf in &gate.leaves {
                if leaf.index() >= n {
                    continue; // CoverLegal reports the range error
                }
                if design.aig.node(*leaf).is_and() && !mapped.contains_key(leaf) {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("gate {i}"),
                        format!("leaf {} is an AND with no earlier covering gate", leaf),
                    );
                }
            }
            mapped.insert(gate.root, i);
        }
        for (i, driver) in design.netlist.outputs.iter().enumerate() {
            let node = match driver {
                OutputDriver::Direct(node) | OutputDriver::Inverted(node) => *node,
                OutputDriver::Constant(_) => continue,
            };
            if node.index() >= n {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("output {i}"),
                    format!("driver references node {} of {n}", node.index()),
                );
                continue;
            }
            if design.aig.node(node).is_and() && !mapped.contains_key(&node) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("output {i}"),
                    format!("driver {} is an AND with no covering gate", node),
                );
            }
        }
    }
}

/// [`RuleId::NetlistTiming`]: an independent bottom-up arrival recompute
/// (leaves at 0 ps for inputs/constant, [`timing::gate_arrival`] per gate)
/// must reproduce the stored annotations *bitwise*, and no gate's required
/// time may precede its arrival.
pub struct TimingConsistent;

impl Check<MappedDesign<'_>> for TimingConsistent {
    fn rule(&self) -> RuleId {
        RuleId::NetlistTiming
    }

    fn check(&self, design: &MappedDesign<'_>, report: &mut AuditReport) {
        let n = design.aig.num_nodes();
        let netlist = design.netlist;
        let arrivals = netlist.gate_arrivals_ps();
        let requireds = netlist.gate_requireds_ps();
        if arrivals.len() != netlist.gates.len() || requireds.len() != netlist.gates.len() {
            report.push(
                self.rule(),
                Severity::Error,
                "annotations",
                format!(
                    "{} gates but {} arrival / {} required entries",
                    netlist.gates.len(),
                    arrivals.len(),
                    requireds.len()
                ),
            );
            return;
        }
        let mut recomputed: FxHashMap<NodeId, f64> = FxHashMap::default();
        for (i, gate) in netlist.gates.iter().enumerate() {
            if gate.leaves.len() > 8 || gate.leaves.iter().any(|leaf| leaf.index() >= n) {
                // Out of the timing model (CoverLegal owns shape errors) —
                // trust the stored annotation so downstream propagation
                // still compares against something meaningful.
                recomputed.insert(gate.root, arrivals[i]);
                continue;
            }
            let leaf_arrivals: Vec<f64> = gate
                .leaves
                .iter()
                .map(|leaf| recomputed.get(leaf).copied().unwrap_or(0.0))
                .collect();
            let arrival = timing::gate_arrival(&leaf_arrivals, &gate.pin_delays_ps);
            recomputed.insert(gate.root, arrival);
            if arrival.to_bits() != arrivals[i].to_bits() {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("gate {i}"),
                    format!(
                        "stored arrival {} ps disagrees with recomputed {arrival} ps at root {}",
                        arrivals[i], gate.root
                    ),
                );
            }
            if requireds[i] < arrivals[i] - 1e-9 {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("gate {i}"),
                    format!(
                        "required time {} ps precedes arrival {} ps at root {}",
                        requireds[i], arrivals[i], gate.root
                    ),
                );
            }
        }
    }
}

/// The netlist catalog (three rules, all cheap).
pub fn netlist_catalog<'a>() -> Vec<Box<dyn Check<MappedDesign<'a>>>> {
    vec![
        Box::new(CoverLegal),
        Box::new(FaninResolved),
        Box::new(TimingConsistent),
    ]
}

/// Audits a mapped netlist against its source AIG at the given level.
pub fn audit_netlist(aig: &Aig, netlist: &Netlist, level: crate::AuditLevel) -> AuditReport {
    let design = MappedDesign { aig, netlist };
    crate::run_checks(&design, &netlist_catalog(), level)
}
