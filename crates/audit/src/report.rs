//! The diagnostic model: rule identifiers, severities, diagnostics and the
//! report that aggregates them.

use std::fmt;

/// Identifies one auditable invariant. Every checker in the catalog owns
/// exactly one `RuleId`, and every diagnostic it emits carries it, so a
/// mutation test can corrupt a structure and assert that precisely the
/// expected rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RuleId {
    // ---- AIG ----
    /// Every fanin literal of an AND references an existing node.
    AigFaninRange,
    /// Fanins reference strictly smaller node ids (creation order is
    /// topological, so this subsumes acyclicity: a cycle in the id-indexed
    /// node array would need at least one forward edge).
    AigTopoOrder,
    /// AND fanins are stored in normalized order (`fanin0.raw() <= fanin1.raw()`).
    AigFaninOrder,
    /// No two ANDs share the same normalized fanin pair (structural-hash
    /// consistency: strash must have deduplicated them).
    AigDuplicateAnd,
    /// An AND has identical or complementary fanins and should have been
    /// simplified away (warning).
    AigTrivialAnd,
    /// An AND is reachable from no primary output (warning; suppressed for
    /// choice-network members, which dangle by design).
    AigDanglingAnd,

    // ---- EGraph ----
    /// The dirty worklists are empty (the e-graph has been rebuilt).
    EgraphDirty,
    /// Every class in the class map is keyed canonically, records its own
    /// id, and is non-empty.
    EgraphCanonicalClass,
    /// Every node stored in a rebuilt class has canonical children.
    EgraphCanonicalChildren,
    /// Congruence closure: two nodes with equal canonical forms live in the
    /// same class.
    EgraphCongruence,
    /// Hashcons consistency: every class node is present in the memo and
    /// maps back to its owning class; canonical memo entries appear in the
    /// class they name.
    EgraphHashcons,
    /// Parent lists cover every child→user edge found by a full scan.
    EgraphParents,
    /// The operator index covers every (op, class) pair of the live nodes.
    EgraphOpIndex,
    /// The live-node counter matches the summed class sizes.
    EgraphNodeCount,
    /// Union-find sanity: parent chains terminate within a step budget,
    /// parent slots are in range, and root sizes match counted members.
    EgraphUnionFind,

    // ---- ChoiceAig ----
    /// Each choice class stores its representative last-created (every
    /// alternative has a smaller node id than the representative).
    ChoiceReprLast,
    /// Every choice-class member literal references an AND node in range.
    ChoiceMemberValid,
    /// No node appears in one class with both phases.
    ChoicePhaseConflict,
    /// No node appears twice in the same class or across classes.
    ChoiceDuplicateMember,
    /// Exhaustive simulation: every member is logically equivalent to its
    /// representative (expensive; skipped above 16 inputs).
    ChoiceMemberEquiv,

    // ---- Netlist ----
    /// Covers are legal: gate roots are distinct AND nodes, leaves are in
    /// range, and gates appear in topological (ascending root id) order.
    NetlistCoverLegal,
    /// Every fanin resolves: gate leaves that are AND nodes are themselves
    /// mapped, and output drivers reference mapped nodes or primary inputs.
    NetlistFaninResolved,
    /// Timing annotations are consistent: an independent arrival recompute
    /// matches the stored `arrival_ps_of` exactly, and required times are
    /// not earlier than arrivals.
    NetlistTiming,

    // ---- SAT solver ----
    /// Every live long clause is watched exactly twice — on its first two
    /// literals — with blockers that are members of the clause; binary watch
    /// lists are symmetric and sum to twice the binary-clause count.
    SatWatchInvariant,
    /// Trail consistency: every trail literal is assigned true at the level
    /// of its trail segment, no variable appears twice, and `qhead` /
    /// `trail_lim` are within bounds.
    SatTrailConsistent,
    /// The activity heap's position index agrees with the heap array, every
    /// unassigned variable is present, and the max-heap property holds.
    SatHeapIndex,
    /// Every live learnt long clause stores an LBD between 1 and its length.
    SatLbdBounds,

    // ---- Windowed saturation ----
    /// Every AND gate of the host AIG belongs to at least one window volume.
    WindowCoverage,
    /// Window leaves form a true cut: the root is interior, interior fanins
    /// stay in `volume ∪ leaves ∪ {constant}`, and no leaf is interior.
    WindowLeafCut,
    /// The stitch translation table maps every boundary literal (window
    /// leaves and roots, host inputs and output drivers).
    WindowStitchTable,
    /// The stitched global choice network's AIG passes the structural DAG
    /// catalog.
    WindowChoiceDag,

    /// An extension point for checkers defined outside this crate.
    Custom(&'static str),
}

impl RuleId {
    /// Stable kebab-case name used by the CLI and report rendering.
    pub fn name(&self) -> &'static str {
        match self {
            RuleId::AigFaninRange => "aig-fanin-range",
            RuleId::AigTopoOrder => "aig-topo-order",
            RuleId::AigFaninOrder => "aig-fanin-order",
            RuleId::AigDuplicateAnd => "aig-duplicate-and",
            RuleId::AigTrivialAnd => "aig-trivial-and",
            RuleId::AigDanglingAnd => "aig-dangling-and",
            RuleId::EgraphDirty => "egraph-dirty",
            RuleId::EgraphCanonicalClass => "egraph-canonical-class",
            RuleId::EgraphCanonicalChildren => "egraph-canonical-children",
            RuleId::EgraphCongruence => "egraph-congruence",
            RuleId::EgraphHashcons => "egraph-hashcons",
            RuleId::EgraphParents => "egraph-parents",
            RuleId::EgraphOpIndex => "egraph-op-index",
            RuleId::EgraphNodeCount => "egraph-node-count",
            RuleId::EgraphUnionFind => "egraph-unionfind",
            RuleId::ChoiceReprLast => "choice-repr-last",
            RuleId::ChoiceMemberValid => "choice-member-valid",
            RuleId::ChoicePhaseConflict => "choice-phase-conflict",
            RuleId::ChoiceDuplicateMember => "choice-duplicate-member",
            RuleId::ChoiceMemberEquiv => "choice-member-equiv",
            RuleId::NetlistCoverLegal => "netlist-cover-legal",
            RuleId::NetlistFaninResolved => "netlist-fanin-resolved",
            RuleId::NetlistTiming => "netlist-timing",
            RuleId::SatWatchInvariant => "sat-watch-invariant",
            RuleId::SatTrailConsistent => "sat-trail-consistent",
            RuleId::SatHeapIndex => "sat-heap-index",
            RuleId::SatLbdBounds => "sat-lbd-bounds",
            RuleId::WindowCoverage => "window-coverage",
            RuleId::WindowLeafCut => "window-leaf-cut",
            RuleId::WindowStitchTable => "window-stitch-table",
            RuleId::WindowChoiceDag => "window-choice-dag",
            RuleId::Custom(name) => name,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not a correctness violation (e.g. a dangling AND).
    Warning,
    /// A broken invariant: the artifact must not cross a phase boundary.
    Error,
}

/// How expensive a checker is, deciding which [`AuditLevel`] runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckCost {
    /// Linear-ish in the artifact size; runs at `PhaseBoundaries` and above.
    Cheap,
    /// Super-linear or simulation-based; runs only at `Paranoid`.
    Expensive,
}

/// How much auditing the flows perform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditLevel {
    /// No auditing (the default; zero overhead).
    #[default]
    Off,
    /// Run the [`CheckCost::Cheap`] checkers after each flow phase.
    PhaseBoundaries,
    /// Run every checker, including exhaustive-simulation ones.
    Paranoid,
}

impl AuditLevel {
    /// Whether a checker of the given cost runs at this level.
    pub fn runs(&self, cost: CheckCost) -> bool {
        match self {
            AuditLevel::Off => false,
            AuditLevel::PhaseBoundaries => cost == CheckCost::Cheap,
            AuditLevel::Paranoid => true,
        }
    }
}

/// One finding: a violated (or suspicious) invariant at a location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Where in the artifact (node id, class id, clause index, …), prefixed
    /// with the flow phase when reports are absorbed across phases.
    pub location: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{tag}[{}] {}: {}",
            self.rule, self.location, self.message
        )
    }
}

/// Aggregated result of running a set of checkers over an artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every finding, in checker order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of checkers that ran (so "clean" can be told from "skipped").
    pub checks_run: usize,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding.
    pub fn push(
        &mut self,
        rule: RuleId,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            location: location.into(),
            message: message.into(),
        });
    }

    /// `true` when no diagnostics were emitted at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when no [`Severity::Error`] diagnostics were emitted
    /// (warnings allowed).
    pub fn has_no_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// The distinct rules that fired, sorted (mutation tests assert on this).
    pub fn fired_rules(&self) -> Vec<RuleId> {
        let mut rules: Vec<RuleId> = self.diagnostics.iter().map(|d| d.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }

    /// Merges `other` into `self`, prefixing each absorbed location with
    /// `phase` so flow-level reports say which boundary a finding crossed.
    pub fn absorb(&mut self, phase: &str, other: AuditReport) {
        self.checks_run += other.checks_run;
        for mut diag in other.diagnostics {
            diag.location = format!("{phase}: {}", diag.location);
            self.diagnostics.push(diag);
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean ({} checks)", self.checks_run);
        }
        writeln!(
            f,
            "{} diagnostic(s) from {} checks:",
            self.diagnostics.len(),
            self.checks_run
        )?;
        for diag in &self.diagnostics {
            writeln!(f, "  {diag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_prefixes_locations_and_sums_checks() {
        let mut inner = AuditReport::new();
        inner.checks_run = 3;
        inner.push(
            RuleId::AigTopoOrder,
            Severity::Error,
            "node 7",
            "forward fanin",
        );
        let mut outer = AuditReport::new();
        outer.checks_run = 1;
        outer.absorb("extract", inner);
        assert_eq!(outer.checks_run, 4);
        assert_eq!(outer.diagnostics[0].location, "extract: node 7");
        assert!(!outer.is_clean());
        assert_eq!(outer.fired_rules(), vec![RuleId::AigTopoOrder]);
    }

    #[test]
    fn levels_gate_costs() {
        assert!(!AuditLevel::Off.runs(CheckCost::Cheap));
        assert!(AuditLevel::PhaseBoundaries.runs(CheckCost::Cheap));
        assert!(!AuditLevel::PhaseBoundaries.runs(CheckCost::Expensive));
        assert!(AuditLevel::Paranoid.runs(CheckCost::Expensive));
    }

    #[test]
    fn warnings_do_not_count_as_errors() {
        let mut report = AuditReport::new();
        report.push(
            RuleId::AigDanglingAnd,
            Severity::Warning,
            "node 3",
            "dangling",
        );
        assert!(!report.is_clean());
        assert!(report.has_no_errors());
        assert_eq!(report.num_errors(), 0);
    }
}
