//! Checkers over [`choices::ChoiceAig`]: the class bookkeeping invariants
//! (repr-last ordering, member validity, phase/duplicate hygiene) plus the
//! expensive exhaustive-simulation equivalence check that replaces the
//! deprecated `check_members_equivalent`.

use aig::NodeId;
use choices::ChoiceAig;
use fxhash::{FxHashMap, FxHashSet};

use crate::report::{AuditReport, CheckCost, RuleId, Severity};
use crate::Check;

/// [`RuleId::ChoiceReprLast`]: the representative is the topologically last
/// member of its class (every alternative has a strictly smaller node id).
pub struct ReprLast;

impl Check<ChoiceAig> for ReprLast {
    fn rule(&self) -> RuleId {
        RuleId::ChoiceReprLast
    }

    fn check(&self, choices: &ChoiceAig, report: &mut AuditReport) {
        for (index, class) in choices.classes().iter().enumerate() {
            if class.is_empty() {
                continue; // MemberValid reports the malformed class
            }
            let repr = class.repr().node();
            for member in class.alternatives() {
                if member.node() >= repr {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("class {index}"),
                        format!(
                            "member node {} does not precede representative {}",
                            member.node(),
                            repr
                        ),
                    );
                }
            }
        }
    }
}

/// [`RuleId::ChoiceMemberValid`]: every class has a representative plus at
/// least one alternative, and every member references an AND node in range.
pub struct MemberValid;

impl Check<ChoiceAig> for MemberValid {
    fn rule(&self) -> RuleId {
        RuleId::ChoiceMemberValid
    }

    fn check(&self, choices: &ChoiceAig, report: &mut AuditReport) {
        let aig = choices.aig();
        for (index, class) in choices.classes().iter().enumerate() {
            if class.len() < 2 {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("class {index}"),
                    format!(
                        "{} member(s); need a representative plus at least one alternative",
                        class.len()
                    ),
                );
            }
            for &member in &class.members {
                if member.node().index() >= aig.num_nodes() {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("class {index}"),
                        format!(
                            "member references node {} of {}",
                            member.node().index(),
                            aig.num_nodes()
                        ),
                    );
                } else if !aig.node(member.node()).is_and() {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("class {index}"),
                        format!("member {} is not an AND gate", member.node()),
                    );
                }
            }
        }
    }
}

/// [`RuleId::ChoicePhaseConflict`]: within one class a node may occur with
/// only one phase (a node equal to both `f` and `!f` would make `f`
/// constant, which choice classes never record).
pub struct PhaseConflict;

impl Check<ChoiceAig> for PhaseConflict {
    fn rule(&self) -> RuleId {
        RuleId::ChoicePhaseConflict
    }

    fn check(&self, choices: &ChoiceAig, report: &mut AuditReport) {
        for (index, class) in choices.classes().iter().enumerate() {
            let mut phases: FxHashMap<NodeId, bool> = FxHashMap::default();
            for &member in &class.members {
                match phases.get(&member.node()) {
                    Some(&phase) if phase != member.is_complemented() => report.push(
                        self.rule(),
                        Severity::Error,
                        format!("class {index}"),
                        format!("node {} occurs with both phases", member.node()),
                    ),
                    _ => {
                        phases.insert(member.node(), member.is_complemented());
                    }
                }
            }
        }
    }
}

/// [`RuleId::ChoiceDuplicateMember`]: no node appears twice in one class,
/// and no node represents more than one class.
pub struct DuplicateMember;

impl Check<ChoiceAig> for DuplicateMember {
    fn rule(&self) -> RuleId {
        RuleId::ChoiceDuplicateMember
    }

    fn check(&self, choices: &ChoiceAig, report: &mut AuditReport) {
        let mut reprs: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (index, class) in choices.classes().iter().enumerate() {
            let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
            for &member in &class.members {
                if !nodes.insert(member.node()) {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("class {index}"),
                        format!("node {} appears more than once in the class", member.node()),
                    );
                }
            }
            if class.is_empty() {
                continue;
            }
            let repr = class.repr().node();
            if let Some(&other) = reprs.get(&repr) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("class {index}"),
                    format!("representative {repr} already represents class {other}"),
                );
            } else {
                reprs.insert(repr, index);
            }
        }
    }
}

/// [`RuleId::ChoiceMemberEquiv`]: exhaustive simulation proves every member
/// equivalent to its representative. Expensive; skipped above 16 inputs.
pub struct MemberEquiv;

impl Check<ChoiceAig> for MemberEquiv {
    fn rule(&self) -> RuleId {
        RuleId::ChoiceMemberEquiv
    }

    fn cost(&self) -> CheckCost {
        CheckCost::Expensive
    }

    fn check(&self, choices: &ChoiceAig, report: &mut AuditReport) {
        let aig = choices.aig();
        if aig.num_inputs() > 16 {
            return;
        }
        // Range errors belong to MemberValid; simulate only classes whose
        // members all resolve.
        let in_range = |class: &choices::ChoiceClass| {
            class
                .members
                .iter()
                .all(|m| m.node().index() < aig.num_nodes())
        };
        // Report each broken member once, not once per disagreeing pattern.
        let mut reported: FxHashSet<(usize, u32)> = FxHashSet::default();
        for pattern in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            let values = aig.evaluate_nodes(&bits);
            for (index, class) in choices.classes().iter().enumerate() {
                if class.is_empty() || !in_range(class) {
                    continue;
                }
                let repr = class.repr();
                let expected = values[repr.node().index()] ^ repr.is_complemented();
                for &member in class.alternatives() {
                    let got = values[member.node().index()] ^ member.is_complemented();
                    if got != expected && reported.insert((index, member.raw())) {
                        report.push(
                            self.rule(),
                            Severity::Error,
                            format!("class {index}"),
                            format!(
                                "member {} disagrees with representative {} on input pattern {pattern}",
                                member.node(),
                                repr.node()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The choice-network catalog (five rules; only the equivalence check is
/// expensive).
pub fn choice_catalog() -> Vec<Box<dyn Check<ChoiceAig>>> {
    vec![
        Box::new(ReprLast),
        Box::new(MemberValid),
        Box::new(PhaseConflict),
        Box::new(DuplicateMember),
        Box::new(MemberEquiv),
    ]
}

/// Audits a choice network: the class invariants above plus the DAG-shape
/// rules over the underlying member AIG (alternatives dangle by design, so
/// the dangling-AND warning is excluded; cycle-freedom of the member DAGs is
/// exactly [`RuleId::AigTopoOrder`] on that network).
pub fn audit_choices(choices: &ChoiceAig, level: crate::AuditLevel) -> AuditReport {
    let mut report = crate::run_checks(choices, &choice_catalog(), level);
    report.absorb(
        "member-aig",
        crate::audit_aig_dag_only(choices.aig(), level),
    );
    report
}
