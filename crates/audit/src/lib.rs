//! Cross-crate invariant auditor.
//!
//! Every artifact that crosses a phase boundary in the E-morphic pipeline —
//! AIGs, e-graphs, choice networks, mapped netlists, SAT solver state — has
//! structural invariants that, when silently violated, surface much later as
//! wrong QoR numbers or verification failures. This crate is a static
//! analysis over those *in-memory* structures: a catalog of typed checkers
//! (one [`RuleId`] per invariant) that emit [`Diagnostic`]s into an
//! [`AuditReport`] instead of panicking or returning stringly-typed errors.
//!
//! The flows thread an [`AuditLevel`] through
//! (`emorphic::FlowConfig::audit_level`): `Off` costs nothing,
//! `PhaseBoundaries` runs the [`CheckCost::Cheap`] checkers after each phase,
//! and `Paranoid` adds the expensive simulation-based ones. Every rule in the
//! catalog is *mutation-tested*: `tests/mutation_audit.rs` deliberately
//! corrupts each structure (breaks a watch, reorders a choice member,
//! stale-canonicalizes a hashcons key, skews one arrival) and asserts that
//! exactly the expected rule fires.
//!
//! # Adding a checker
//!
//! Implement [`Check`] for the artifact type and add the instance to the
//! matching catalog function (or pass your own catalog to [`run_checks`]):
//!
//! ```
//! use aig::Aig;
//! use audit::{run_checks, AuditLevel, AuditReport, Check, CheckCost, RuleId, Severity};
//!
//! /// Flags networks that drive no primary output at all.
//! struct HasOutputs;
//!
//! impl Check<Aig> for HasOutputs {
//!     fn rule(&self) -> RuleId {
//!         RuleId::Custom("aig-has-outputs")
//!     }
//!     fn cost(&self) -> CheckCost {
//!         CheckCost::Cheap
//!     }
//!     fn check(&self, aig: &Aig, report: &mut AuditReport) {
//!         if aig.num_outputs() == 0 {
//!             report.push(self.rule(), Severity::Warning, "network", "no primary outputs");
//!         }
//!     }
//! }
//!
//! let aig = Aig::new("empty");
//! let checks: Vec<Box<dyn Check<Aig>>> = vec![Box::new(HasOutputs)];
//! let report = run_checks(&aig, &checks, AuditLevel::PhaseBoundaries);
//! assert_eq!(report.checks_run, 1);
//! assert_eq!(report.fired_rules(), vec![RuleId::Custom("aig-has-outputs")]);
//! ```

#![warn(missing_docs)]

mod aig_checks;
mod choice_checks;
mod egraph_checks;
mod netlist_checks;
mod report;
mod sat_checks;
mod window_checks;

pub use aig_checks::{aig_catalog, audit_aig, audit_aig_dag_only, dag_catalog};
pub use choice_checks::{audit_choices, choice_catalog};
pub use egraph_checks::{audit_egraph, egraph_catalog};
pub use netlist_checks::{audit_netlist, netlist_catalog, MappedDesign};
pub use report::{AuditLevel, AuditReport, CheckCost, Diagnostic, RuleId, Severity};
pub use sat_checks::{audit_solver, sat_catalog};
pub use window_checks::{
    audit_partition, audit_stitched, stitch_catalog, window_catalog, PartitionedAig, StitchedDesign,
};

/// One invariant checker over artifact type `T`.
///
/// A checker owns exactly one [`RuleId`] and pushes a [`Diagnostic`] per
/// violation it finds; it must never panic on corrupted input (the whole
/// point is diagnosing structures other code would crash on).
pub trait Check<T: ?Sized> {
    /// The rule this checker enforces.
    fn rule(&self) -> RuleId;

    /// How expensive the check is; decides the minimum [`AuditLevel`].
    fn cost(&self) -> CheckCost {
        CheckCost::Cheap
    }

    /// Inspects `artifact`, pushing one diagnostic per violation.
    fn check(&self, artifact: &T, report: &mut AuditReport);
}

/// Runs every checker in `checks` whose cost the `level` admits, returning
/// the aggregated report. At [`AuditLevel::Off`] nothing runs and the report
/// is empty with `checks_run == 0`.
pub fn run_checks<T: ?Sized>(
    artifact: &T,
    checks: &[Box<dyn Check<T>>],
    level: AuditLevel,
) -> AuditReport {
    let mut report = AuditReport::new();
    for check in checks {
        if level.runs(check.cost()) {
            report.checks_run += 1;
            check.check(artifact, &mut report);
        }
    }
    report
}
