//! Checkers over [`aig::Aig`] networks: fanin sanity, topological order,
//! structural-hash consistency, dangling/duplicate/trivial ANDs.

use aig::{Aig, AigNode, Lit, NodeId};
use fxhash::FxHashMap;

use crate::report::{AuditReport, RuleId, Severity};
use crate::Check;

/// Iterates `(id, fanin0, fanin1)` over the AND nodes, tolerating tampered
/// node vectors (no panicking accessors).
fn ands(aig: &Aig) -> impl Iterator<Item = (NodeId, Lit, Lit)> + '_ {
    aig.node_ids().filter_map(|id| match *aig.node(id) {
        AigNode::And { fanin0, fanin1 } => Some((id, fanin0, fanin1)),
        _ => None,
    })
}

/// [`RuleId::AigFaninRange`]: every fanin and output literal references an
/// existing node.
pub struct FaninRange;

impl Check<Aig> for FaninRange {
    fn rule(&self) -> RuleId {
        RuleId::AigFaninRange
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        let n = aig.num_nodes();
        for (id, f0, f1) in ands(aig) {
            for (pin, fanin) in [(0, f0), (1, f1)] {
                if fanin.node().index() >= n {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("node {}", id.index()),
                        format!("fanin{pin} references node {} of {n}", fanin.node().index()),
                    );
                }
            }
        }
        for (i, output) in aig.outputs().iter().enumerate() {
            if output.node().index() >= n {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("output {i}"),
                    format!("references node {} of {n}", output.node().index()),
                );
            }
        }
    }
}

/// [`RuleId::AigTopoOrder`]: fanins reference strictly smaller ids. The node
/// array is creation-ordered, so a forward (or self) reference is the only
/// way a combinational cycle can exist — this check subsumes acyclicity.
pub struct TopoOrder;

impl Check<Aig> for TopoOrder {
    fn rule(&self) -> RuleId {
        RuleId::AigTopoOrder
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        for (id, f0, f1) in ands(aig) {
            for (pin, fanin) in [(0, f0), (1, f1)] {
                if fanin.node().index() >= id.index() {
                    report.push(
                        self.rule(),
                        Severity::Error,
                        format!("node {}", id.index()),
                        format!(
                            "fanin{pin} references node {} (not strictly below); \
                             the id order is the topological order",
                            fanin.node().index()
                        ),
                    );
                }
            }
        }
    }
}

/// [`RuleId::AigFaninOrder`]: fanin pairs are stored normalized
/// (`fanin0.raw() <= fanin1.raw()`), which strash relies on.
pub struct FaninOrder;

impl Check<Aig> for FaninOrder {
    fn rule(&self) -> RuleId {
        RuleId::AigFaninOrder
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        for (id, f0, f1) in ands(aig) {
            if f0.raw() > f1.raw() {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("node {}", id.index()),
                    format!(
                        "fanins ({}, {}) are not in normalized order",
                        f0.raw(),
                        f1.raw()
                    ),
                );
            }
        }
    }
}

/// [`RuleId::AigDuplicateAnd`]: structural hashing must have deduplicated
/// ANDs, so no two nodes may share a normalized fanin pair.
pub struct DuplicateAnd;

impl Check<Aig> for DuplicateAnd {
    fn rule(&self) -> RuleId {
        RuleId::AigDuplicateAnd
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        let mut seen: FxHashMap<(u32, u32), NodeId> = FxHashMap::default();
        for (id, f0, f1) in ands(aig) {
            let key = if f0.raw() <= f1.raw() {
                (f0.raw(), f1.raw())
            } else {
                (f1.raw(), f0.raw())
            };
            if let Some(first) = seen.get(&key) {
                report.push(
                    self.rule(),
                    Severity::Error,
                    format!("node {}", id.index()),
                    format!(
                        "duplicates the fanin pair of node {} (strash broken)",
                        first.index()
                    ),
                );
            } else {
                seen.insert(key, id);
            }
        }
    }
}

/// [`RuleId::AigTrivialAnd`]: an AND over identical, complementary or
/// constant fanins computes a simpler function and should have been folded
/// by the builder (warning).
pub struct TrivialAnd;

impl Check<Aig> for TrivialAnd {
    fn rule(&self) -> RuleId {
        RuleId::AigTrivialAnd
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        for (id, f0, f1) in ands(aig) {
            let reason = if f0.node() == f1.node() {
                Some(if f0 == f1 {
                    "identical fanins"
                } else {
                    "complementary fanins"
                })
            } else if f0.is_const() || f1.is_const() {
                Some("constant fanin")
            } else {
                None
            };
            if let Some(reason) = reason {
                report.push(
                    self.rule(),
                    Severity::Warning,
                    format!("node {}", id.index()),
                    format!("{reason}; the builder should have simplified this gate"),
                );
            }
        }
    }
}

/// [`RuleId::AigDanglingAnd`]: an AND from which no primary output is
/// reachable (warning). Excluded from the choice-network catalog, where
/// alternatives dangle by design.
pub struct DanglingAnd;

impl Check<Aig> for DanglingAnd {
    fn rule(&self) -> RuleId {
        RuleId::AigDanglingAnd
    }

    fn check(&self, aig: &Aig, report: &mut AuditReport) {
        let n = aig.num_nodes();
        let mut reachable = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        for output in aig.outputs() {
            let node = output.node();
            if node.index() < n && !reachable[node.index()] {
                reachable[node.index()] = true;
                stack.push(node);
            }
        }
        while let Some(id) = stack.pop() {
            if let AigNode::And { fanin0, fanin1 } = *aig.node(id) {
                for fanin in [fanin0, fanin1] {
                    let child = fanin.node();
                    if child.index() < n && !reachable[child.index()] {
                        reachable[child.index()] = true;
                        stack.push(child);
                    }
                }
            }
        }
        for (id, _, _) in ands(aig) {
            if !reachable[id.index()] {
                report.push(
                    self.rule(),
                    Severity::Warning,
                    format!("node {}", id.index()),
                    "AND is reachable from no primary output",
                );
            }
        }
    }
}

/// The full AIG catalog (all six rules, dangling included).
pub fn aig_catalog() -> Vec<Box<dyn Check<Aig>>> {
    vec![
        Box::new(FaninRange),
        Box::new(TopoOrder),
        Box::new(FaninOrder),
        Box::new(DuplicateAnd),
        Box::new(TrivialAnd),
        Box::new(DanglingAnd),
    ]
}

/// The DAG-shape rules only (no dangling/trivial warnings): the right
/// catalog for networks where unused or unsimplified nodes are expected,
/// such as the member AIG underlying a choice network.
pub fn dag_catalog() -> Vec<Box<dyn Check<Aig>>> {
    vec![
        Box::new(FaninRange),
        Box::new(TopoOrder),
        Box::new(FaninOrder),
        Box::new(DuplicateAnd),
    ]
}

/// Audits an AIG with the full catalog at the given level.
pub fn audit_aig(aig: &Aig, level: crate::AuditLevel) -> AuditReport {
    crate::run_checks(aig, &aig_catalog(), level)
}

/// Audits an AIG with the DAG-shape rules only (see [`dag_catalog`]).
pub fn audit_aig_dag_only(aig: &Aig, level: crate::AuditLevel) -> AuditReport {
    crate::run_checks(aig, &dag_catalog(), level)
}
