//! Mutation tests for the checker catalog: every [`RuleId`] gets a test
//! that starts from a provably-clean artifact, applies one surgical
//! corruption through the structures' `tamper_*` hooks, and asserts the
//! expected rule fires. Where a corruption *inherently* violates several
//! invariants at once (a both-phase duplicate is also a duplicate node, a
//! congruence break leaves the hashcons pointing across classes) the test
//! pins the exact fired set or uses a containment assertion with a comment.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::{Aig, AigNode, Lit, NodeId};
use audit::{
    aig_catalog, audit_aig, audit_choices, audit_egraph, audit_netlist, audit_partition,
    audit_solver, audit_stitched, choice_catalog, egraph_catalog, netlist_catalog, sat_catalog,
    stitch_catalog, window_catalog, AuditLevel, AuditReport, RuleId,
};
use choices::{ChoiceAig, ChoiceClass};
use egraph::EGraph;
use emorphic::BoolLang;
use sat::{Lit as SatLit, Solver};
use techmap::cell::{map_to_cells, OutputDriver};
use techmap::library::asap7_like;
use techmap::{MapOptions, Netlist};

fn assert_clean(stage: &str, report: &AuditReport) {
    assert!(report.is_clean(), "{stage} audit not clean:\n{report}");
}

// ---------------------------------------------------------------- AIG ----

/// `a`, `b`, `g1 = a & b` (node 3), `g2 = g1 & b` (node 4), output `g2`.
fn aig_chain() -> Aig {
    let mut aig = Aig::new("mutant");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let g1 = aig.and(a, b);
    let g2 = aig.and(g1, b);
    aig.add_output(g2, "f");
    assert_clean("aig base", &audit_aig(&aig, AuditLevel::Paranoid));
    aig
}

#[test]
fn aig_fanin_range_fires_on_out_of_range_output() {
    let mut aig = Aig::new("mutant");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let g = aig.and(a, b);
    aig.add_output(g, "f0");
    aig.add_output(g, "f1");
    assert_clean("aig base", &audit_aig(&aig, AuditLevel::Paranoid));

    // Second output now references node 99 of a 4-node network; the first
    // output keeps the AND reachable so the dangling warning stays quiet.
    aig.tamper_outputs_mut()[1] = Lit::from_raw(99 << 1);
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigFaninRange]);
}

#[test]
fn aig_topo_order_fires_on_forward_edge() {
    let mut aig = aig_chain();
    // g1 (node 3) now reads g2 (node 4): a forward edge, i.e. a cycle in
    // the id-indexed array. Fanins stay raw-ordered (4 <= 8) and in range.
    aig.tamper_nodes_mut()[3] = AigNode::And {
        fanin0: Lit::from_raw(2 << 1),
        fanin1: Lit::from_raw(4 << 1),
    };
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigTopoOrder]);
}

#[test]
fn aig_fanin_order_fires_on_swapped_fanins() {
    let mut aig = aig_chain();
    // g1's fanins stored as (b, a): same normalized pair, wrong raw order.
    aig.tamper_nodes_mut()[3] = AigNode::And {
        fanin0: Lit::from_raw(2 << 1),
        fanin1: Lit::from_raw(1 << 1),
    };
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigFaninOrder]);
}

#[test]
fn aig_duplicate_and_fires_on_strash_miss() {
    let mut aig = aig_chain();
    // A second AND with g1's exact fanin pair, kept reachable via a new
    // output so only the strash-consistency rule can fire.
    aig.tamper_nodes_mut().push(AigNode::And {
        fanin0: Lit::from_raw(1 << 1),
        fanin1: Lit::from_raw(2 << 1),
    });
    aig.tamper_outputs_mut().push(Lit::from_raw(5 << 1));
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigDuplicateAnd]);
}

#[test]
fn aig_trivial_and_warns_on_identical_fanins() {
    let mut aig = aig_chain();
    aig.tamper_nodes_mut().push(AigNode::And {
        fanin0: Lit::from_raw(1 << 1),
        fanin1: Lit::from_raw(1 << 1),
    });
    aig.tamper_outputs_mut().push(Lit::from_raw(5 << 1));
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigTrivialAnd]);
    // Trivial ANDs are a warning, not an error.
    assert!(report.has_no_errors() && !report.is_clean());
}

#[test]
fn aig_dangling_and_warns_on_unreachable_node() {
    let mut aig = aig_chain();
    // !a & b: a fresh pair (so no duplicate), driven by nothing.
    aig.tamper_nodes_mut().push(AigNode::And {
        fanin0: Lit::from_raw(1 << 1).not(),
        fanin1: Lit::from_raw(2 << 1),
    });
    let report = audit_aig(&aig, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::AigDanglingAnd]);
    assert!(report.has_no_errors() && !report.is_clean());
}

// ------------------------------------------------------------- EGraph ----

/// `x`, `y`, `x & y`, `x | y` in four distinct classes, rebuilt.
fn egraph_base() -> (
    EGraph<BoolLang>,
    egraph::Id,
    egraph::Id,
    egraph::Id,
    egraph::Id,
) {
    let mut eg = EGraph::new();
    let x = eg.add(BoolLang::Var(0));
    let y = eg.add(BoolLang::Var(1));
    let a = eg.add(BoolLang::And([x, y]));
    let o = eg.add(BoolLang::Or([x, y]));
    eg.rebuild();
    assert_clean("egraph base", &audit_egraph(&eg, AuditLevel::Paranoid));
    (eg, x, y, a, o)
}

#[test]
fn egraph_dirty_fires_on_pending_work() {
    let (mut eg, x, ..) = egraph_base();
    eg.tamper_pending_push(x);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphDirty]);
}

#[test]
fn egraph_union_find_fires_on_corrupt_root_size() {
    let (mut eg, x, ..) = egraph_base();
    eg.tamper_unionfind_mut().tamper_set_size(x, 7);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphUnionFind]);
}

#[test]
fn egraph_union_find_fires_on_parent_cycle() {
    let (mut eg, x, y, ..) = egraph_base();
    // x and y now parent each other: `find` would never terminate. The
    // class map keyed at x/y also stops canonicalizing, so the class rule
    // fires collaterally; the union-find rule is the one under test.
    eg.tamper_unionfind_mut().tamper_set_parent(x, y);
    eg.tamper_unionfind_mut().tamper_set_parent(y, x);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert!(
        report.fired_rules().contains(&RuleId::EgraphUnionFind),
        "expected the union-find rule in {:?}",
        report.fired_rules()
    );
}

#[test]
fn egraph_canonical_class_fires_on_emptied_class() {
    let (mut eg, _, y, ..) = egraph_base();
    // Hollow out y's class, keeping the memo and live counter consistent
    // so only the class-shape rule can fire.
    eg.tamper_class_nodes_mut(y).unwrap().clear();
    eg.tamper_memo_remove(&BoolLang::Var(1));
    let live = eg.total_nodes();
    eg.tamper_set_live_nodes(live - 1);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphCanonicalClass]);
}

#[test]
fn egraph_canonical_children_fires_on_stale_child() {
    let mut eg = EGraph::new();
    let x = eg.add(BoolLang::Var(0));
    let y = eg.add(BoolLang::Var(1));
    let n = eg.add(BoolLang::Not(y));
    let (root, _) = eg.union(x, y);
    eg.rebuild();
    assert_clean("egraph base", &audit_egraph(&eg, AuditLevel::Paranoid));

    // Rewrite Not's stored operand back to the merged-away id, moving the
    // memo entry along so only the canonical-children rule can fire.
    let loser = if root == x { y } else { x };
    let n_class = eg.find(n);
    eg.tamper_class_nodes_mut(n_class).unwrap()[0] = BoolLang::Not(loser);
    eg.tamper_memo_insert(BoolLang::Not(loser), n_class);
    eg.tamper_memo_remove(&BoolLang::Not(root));
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphCanonicalChildren]);
}

#[test]
fn egraph_congruence_fires_on_duplicated_form() {
    let (mut eg, x, y, _, o) = egraph_base();
    // The Or class grows a copy of the And node: two classes now hold the
    // same canonical form. The stray copy also genuinely breaks the
    // hashcons/parent/op-index invariants, so those may fire alongside.
    eg.tamper_class_nodes_mut(o)
        .unwrap()
        .push(BoolLang::And([x, y]));
    let live = eg.total_nodes();
    eg.tamper_set_live_nodes(live + 1);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert!(
        report.fired_rules().contains(&RuleId::EgraphCongruence),
        "expected the congruence rule in {:?}",
        report.fired_rules()
    );
}

#[test]
fn egraph_hashcons_fires_on_missing_memo_entry() {
    let (mut eg, ..) = egraph_base();
    eg.tamper_memo_remove(&BoolLang::Var(0));
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphHashcons]);
}

#[test]
fn egraph_parents_fires_on_dropped_parent_edge() {
    let (mut eg, x, ..) = egraph_base();
    // x is used by both the And and the Or node; its parent list forgets.
    eg.tamper_parents_mut(x).unwrap().clear();
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphParents]);
}

#[test]
fn egraph_op_index_fires_on_cleared_index() {
    let (mut eg, ..) = egraph_base();
    eg.tamper_op_index_clear();
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphOpIndex]);
}

#[test]
fn egraph_node_count_fires_on_skewed_counter() {
    let (mut eg, ..) = egraph_base();
    let live = eg.total_nodes();
    eg.tamper_set_live_nodes(live + 5);
    let report = audit_egraph(&eg, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::EgraphNodeCount]);
}

// ------------------------------------------------------------ Choices ----

/// One class with two genuinely equivalent structures for `a & b & c`:
/// representative `s2 = a & (b & c)` (node 7), alternative
/// `s1 = (a & b) & c` (node 5). Returns the network plus `[t1, s1, t2, s2]`.
fn choice_base() -> (ChoiceAig, [Lit; 4]) {
    let mut aig = Aig::new("choice-mutant");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t1 = aig.and(a, b);
    let s1 = aig.and(t1, c);
    let t2 = aig.and(b, c);
    let s2 = aig.and(a, t2);
    aig.add_output(s2, "f");
    let class = ChoiceClass {
        members: vec![s2, s1],
    };
    let choices = ChoiceAig::new(aig, vec![class]).expect("valid choice network");
    assert_clean(
        "choice base",
        &audit_choices(&choices, AuditLevel::Paranoid),
    );
    (choices, [t1, s1, t2, s2])
}

#[test]
fn choice_repr_last_fires_on_reordered_members() {
    let (mut choices, _) = choice_base();
    // The alternative (smaller node) becomes the representative.
    choices.tamper_classes_mut()[0].members.swap(0, 1);
    let report = audit_choices(&choices, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::ChoiceReprLast]);
}

#[test]
fn choice_member_valid_fires_on_non_and_member() {
    let (mut choices, _) = choice_base();
    // The alternative now names input node 1. PhaseBoundaries keeps the
    // expensive equivalence check (which would also catch this) out of
    // the fired set.
    choices.tamper_classes_mut()[0].members[1] = Lit::from_raw(1 << 1);
    let report = audit_choices(&choices, AuditLevel::PhaseBoundaries);
    assert_eq!(report.fired_rules(), vec![RuleId::ChoiceMemberValid]);
}

#[test]
fn choice_phase_conflict_fires_on_both_phases() {
    let (mut choices, [_, s1, _, _]) = choice_base();
    // s1 joins its own complement: necessarily both a phase conflict and
    // a duplicate node, so the fired pair is pinned exactly.
    choices.tamper_classes_mut()[0].members.push(s1.not());
    let report = audit_choices(&choices, AuditLevel::PhaseBoundaries);
    assert_eq!(
        report.fired_rules(),
        vec![RuleId::ChoicePhaseConflict, RuleId::ChoiceDuplicateMember]
    );
}

#[test]
fn choice_duplicate_member_fires_on_repeated_member() {
    let (mut choices, [_, s1, _, _]) = choice_base();
    choices.tamper_classes_mut()[0].members.push(s1);
    let report = audit_choices(&choices, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::ChoiceDuplicateMember]);
}

#[test]
fn choice_member_equiv_fires_on_wrong_function() {
    let (mut choices, [t1, ..]) = choice_base();
    // t1 = a & b is a valid, well-ordered AND — but not a & b & c.
    choices.tamper_classes_mut()[0].members[1] = t1;
    let report = audit_choices(&choices, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::ChoiceMemberEquiv]);
}

// ------------------------------------------------------------ Netlist ----

fn netlist_base() -> (Aig, Netlist) {
    let aig = benchgen::adder(4).aig;
    let netlist = map_to_cells(&aig, &asap7_like(), &MapOptions::default());
    assert_clean(
        "netlist base",
        &audit_netlist(&aig, &netlist, AuditLevel::Paranoid),
    );
    (aig, netlist)
}

#[test]
fn netlist_cover_legal_fires_on_unsorted_gates() {
    let (aig, mut netlist) = netlist_base();
    // Swap two adjacent *independent* gates (annotations move along), so
    // fanins still resolve and timing still recomputes bitwise — only the
    // topological-order rule can fire.
    let idx = (0..netlist.gates.len() - 1)
        .find(|&i| {
            let root = netlist.gates[i].root;
            !netlist.gates[i + 1].leaves.contains(&root)
        })
        .expect("adder netlist has an adjacent independent gate pair");
    netlist.gates.swap(idx, idx + 1);
    netlist.tamper_arrival_ps_mut().swap(idx, idx + 1);
    netlist.tamper_required_ps_mut().swap(idx, idx + 1);
    let report = audit_netlist(&aig, &netlist, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::NetlistCoverLegal]);
}

#[test]
fn netlist_fanin_resolved_fires_on_unmapped_driver() {
    let (aig, mut netlist) = netlist_base();
    // K-feasible covers leave cut-interior ANDs unmapped; pointing an
    // output at one leaves cover legality and gate timing untouched.
    let roots: std::collections::HashSet<NodeId> = netlist.gates.iter().map(|g| g.root).collect();
    let unmapped = (1..aig.num_nodes())
        .map(|i| NodeId(i as u32))
        .find(|id| aig.node(*id).is_and() && !roots.contains(id))
        .expect("mapper leaves cut-interior ANDs unmapped");
    netlist.outputs[0] = OutputDriver::Direct(unmapped);
    let report = audit_netlist(&aig, &netlist, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::NetlistFaninResolved]);
}

#[test]
fn netlist_timing_fires_on_skewed_arrival() {
    let (aig, mut netlist) = netlist_base();
    let last = netlist.gates.len() - 1;
    netlist.tamper_arrival_ps_mut()[last] += 5.0;
    let report = audit_netlist(&aig, &netlist, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::NetlistTiming]);
}

// ---------------------------------------------------------------- SAT ----

fn solver_with_long_clause() -> (Solver, Vec<sat::Var>) {
    let mut solver = Solver::new();
    let vars: Vec<sat::Var> = (0..3).map(|_| solver.new_var()).collect();
    assert!(solver.add_clause(&[
        SatLit::pos(vars[0]),
        SatLit::pos(vars[1]),
        SatLit::pos(vars[2]),
    ]));
    assert_clean("solver base", &audit_solver(&solver, AuditLevel::Paranoid));
    (solver, vars)
}

#[test]
fn sat_watch_invariant_fires_on_dropped_watcher() {
    let (mut solver, vars) = solver_with_long_clause();
    // Drop the head watcher of every literal's list: the single long
    // clause loses both of its watchers.
    for &v in &vars {
        solver.tamper_drop_first_watcher(SatLit::pos(v));
        solver.tamper_drop_first_watcher(SatLit::neg(v));
    }
    let report = audit_solver(&solver, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::SatWatchInvariant]);
}

#[test]
fn sat_trail_consistent_fires_on_wrong_level() {
    let mut solver = Solver::new();
    let v = solver.new_var();
    assert!(solver.add_clause(&[SatLit::pos(v)]));
    assert_clean("solver base", &audit_solver(&solver, AuditLevel::Paranoid));

    // The unit sits in the level-0 trail segment but claims level 3.
    solver.tamper_set_level(v, 3);
    let report = audit_solver(&solver, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::SatTrailConsistent]);
}

#[test]
fn sat_heap_index_fires_on_desynced_positions() {
    let mut solver = Solver::new();
    for _ in 0..3 {
        solver.new_var();
    }
    assert_clean("solver base", &audit_solver(&solver, AuditLevel::Paranoid));
    solver.tamper_heap_swap_raw();
    let report = audit_solver(&solver, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::SatHeapIndex]);
}

#[test]
fn sat_lbd_bounds_fires_on_absurd_lbd() {
    let (mut solver, vars) = solver_with_long_clause();
    solver.tamper_attach_learnt(
        &[
            SatLit::neg(vars[0]),
            SatLit::neg(vars[1]),
            SatLit::neg(vars[2]),
        ],
        99,
    );
    let report = audit_solver(&solver, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::SatLbdBounds]);
}

// ------------------------------------------------------------- Window ----

/// A small adder, partitioned with the default knobs; clean at `Paranoid`.
fn window_fixture() -> (Aig, window::Partition) {
    let aig = benchgen::adder(4).aig;
    let part = window::partition(&aig, &window::WindowOptions::default()).expect("partition");
    assert_clean(
        "partition base",
        &audit_partition(&aig, &part, AuditLevel::Paranoid),
    );
    (aig, part)
}

/// The fixture partition stitched with no choice spaces (bare host rebuild),
/// clean at `Paranoid`.
fn stitched_fixture() -> (Aig, window::Partition, window::Stitched) {
    let (aig, part) = window_fixture();
    let stitched = window::stitch(&aig, &part, &[]).expect("stitch");
    assert_clean(
        "stitch base",
        &audit_stitched(&aig, &part, &stitched, AuditLevel::Paranoid),
    );
    (aig, part, stitched)
}

#[test]
fn window_coverage_fires_on_dropped_windows() {
    let (aig, mut part) = window_fixture();
    // No windows at all: every AND gate is uncovered. The leaf-cut checker
    // has nothing to inspect, so exactly the coverage rule fires.
    part.tamper_windows_mut().clear();
    let report = audit_partition(&aig, &part, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::WindowCoverage]);
}

#[test]
fn window_leaf_cut_fires_on_interior_leaf() {
    let (aig, mut part) = window_fixture();
    // The root is now declared a leaf of its own window: the cut crosses the
    // volume (and the extracted cone's leaf map no longer matches). Coverage
    // is untouched — the volumes themselves did not change.
    let windows = part.tamper_windows_mut();
    let root = windows[0].root;
    windows[0].leaves.push(root);
    let report = audit_partition(&aig, &part, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::WindowLeafCut]);
}

#[test]
fn window_stitch_table_fires_on_unmapped_boundary() {
    let (aig, part, mut stitched) = stitched_fixture();
    // A window leaf loses its translation: the boundary is no longer fully
    // mapped. The stitched network itself is untouched, so the DAG rule
    // stays quiet.
    let leaf = part.windows[0].leaves[0];
    stitched.tamper_table_mut()[leaf.index()] = None;
    let report = audit_stitched(&aig, &part, &stitched, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::WindowStitchTable]);
}

#[test]
fn window_choice_dag_fires_on_corrupted_stitched_network() {
    let (aig, part, mut stitched) = stitched_fixture();
    // Swap one AND's fanins inside the stitched network: the raw order
    // invariant of the underlying AIG breaks, which the delegated DAG
    // catalog reports and the stitch checker re-emits under its own rule.
    let inner = stitched.network.tamper_aig_mut();
    let and = inner.and_ids().next().expect("stitched AIG has an AND");
    let (f0, f1) = inner.fanins(and);
    inner.tamper_nodes_mut()[and.index()] = AigNode::And {
        fanin0: f1,
        fanin1: f0,
    };
    let report = audit_stitched(&aig, &part, &stitched, AuditLevel::Paranoid);
    assert_eq!(report.fired_rules(), vec![RuleId::WindowChoiceDag]);
}

// --------------------------------------------------------------- Meta ----

/// Every non-[`RuleId::Custom`] rule is owned by exactly one catalog
/// checker, and the union of the shipped catalogs spans the whole enum —
/// so the per-rule mutation tests above cover everything the catalogs can
/// fire.
#[test]
fn catalogs_cover_every_rule() {
    use std::collections::BTreeSet;

    let mut covered: BTreeSet<RuleId> = BTreeSet::new();
    covered.extend(aig_catalog().iter().map(|c| c.rule()));
    covered.extend(egraph_catalog::<BoolLang>().iter().map(|c| c.rule()));
    covered.extend(choice_catalog().iter().map(|c| c.rule()));
    covered.extend(netlist_catalog().iter().map(|c| c.rule()));
    covered.extend(sat_catalog().iter().map(|c| c.rule()));
    covered.extend(window_catalog().iter().map(|c| c.rule()));
    covered.extend(stitch_catalog().iter().map(|c| c.rule()));

    let all: BTreeSet<RuleId> = [
        RuleId::AigFaninRange,
        RuleId::AigTopoOrder,
        RuleId::AigFaninOrder,
        RuleId::AigDuplicateAnd,
        RuleId::AigTrivialAnd,
        RuleId::AigDanglingAnd,
        RuleId::EgraphDirty,
        RuleId::EgraphCanonicalClass,
        RuleId::EgraphCanonicalChildren,
        RuleId::EgraphCongruence,
        RuleId::EgraphHashcons,
        RuleId::EgraphParents,
        RuleId::EgraphOpIndex,
        RuleId::EgraphNodeCount,
        RuleId::EgraphUnionFind,
        RuleId::ChoiceReprLast,
        RuleId::ChoiceMemberValid,
        RuleId::ChoicePhaseConflict,
        RuleId::ChoiceDuplicateMember,
        RuleId::ChoiceMemberEquiv,
        RuleId::NetlistCoverLegal,
        RuleId::NetlistFaninResolved,
        RuleId::NetlistTiming,
        RuleId::SatWatchInvariant,
        RuleId::SatTrailConsistent,
        RuleId::SatHeapIndex,
        RuleId::SatLbdBounds,
        RuleId::WindowCoverage,
        RuleId::WindowLeafCut,
        RuleId::WindowStitchTable,
        RuleId::WindowChoiceDag,
    ]
    .into_iter()
    .collect();

    assert_eq!(covered, all, "catalog rules drifted from the RuleId enum");
}
