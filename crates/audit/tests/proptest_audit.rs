//! Property tests of the auditor as a *negative* oracle: random circuits
//! pushed through the real pipeline — parse-shaped AIGs, saturation,
//! choice export, technology mapping, CNF solving — must produce zero
//! diagnostics at [`AuditLevel::Paranoid`] at every stage. Any firing rule
//! here is either a pipeline bug or an over-eager checker; both are worth
//! a counterexample.
//!
//! `PROPTEST_CASES` scales coverage (the deep-sweep workflow runs this
//! suite at thousands of cases in release mode).

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::Aig;
use audit::{audit_aig, audit_choices, audit_egraph, audit_netlist, audit_solver, AuditLevel};
use cec::AigCnf;
use choices::{egraph_to_choices, ChoiceAig, ChoiceConfig};
use egraph::{Runner, Scheduler};
use emorphic::convert::ConversionResult;
use emorphic::flow::{emorphic_flow, FlowConfig};
use emorphic::{aig_to_egraph, all_rules};
use proptest::prelude::*;
use sat::dimacs::CnfFormula;
use sat::{ClauseSink, Lit as SatLit};
use techmap::cell::map_to_cells;
use techmap::library::asap7_like;
use techmap::MapOptions;

/// Saturates a circuit with the paper's rule set at a budget small enough
/// to keep thousands of cases tractable.
fn saturate(aig: &Aig) -> ConversionResult {
    let conversion = aig_to_egraph(aig);
    let runner = Runner::with_egraph(conversion.egraph)
        .with_iter_limit(2)
        .with_node_limit(8_000)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 400,
            ban_length: 2,
        })
        .run(&all_rules());
    ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    }
}

fn export_choices(saturated: &ConversionResult) -> ChoiceAig {
    let (network, _stats) = egraph_to_choices(
        &saturated.egraph,
        &saturated.roots,
        &saturated.input_names,
        &saturated.output_names,
        &saturated.name,
        &ChoiceConfig {
            max_choices: 4,
            ..ChoiceConfig::default()
        },
    )
    .expect("export succeeds on realizable circuits");
    network
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every artifact a random circuit produces on its way through the
    /// pipeline audits clean at Paranoid: the input AIG, the saturated
    /// e-graph, the exported choice network, the mapped netlist, and the
    /// post-solve CDCL state of its CNF image.
    #[test]
    fn pipeline_artifacts_audit_clean_at_paranoid(
        seed in 0u64..100_000,
        num_ands in 8usize..48,
        num_inputs in 3usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let input_audit = audit_aig(&circuit, AuditLevel::Paranoid);
        prop_assert!(input_audit.has_no_errors(), "input AIG:\n{input_audit}");

        let saturated = saturate(&circuit);
        let egraph_audit = audit_egraph(&saturated.egraph, AuditLevel::Paranoid);
        prop_assert!(egraph_audit.is_clean(), "saturated e-graph:\n{egraph_audit}");

        let choices = export_choices(&saturated);
        let choice_audit = audit_choices(&choices, AuditLevel::Paranoid);
        prop_assert!(choice_audit.is_clean(), "choice network:\n{choice_audit}");

        let netlist = map_to_cells(&circuit, &asap7_like(), &MapOptions::default());
        let netlist_audit = audit_netlist(&circuit, &netlist, AuditLevel::Paranoid);
        prop_assert!(netlist_audit.is_clean(), "mapped netlist:\n{netlist_audit}");

        let mut cnf = CnfFormula::default();
        let inputs: Vec<SatLit> = (0..circuit.num_inputs())
            .map(|_| SatLit::pos(cnf.new_var()))
            .collect();
        let image = AigCnf::encode(&mut cnf, &circuit, Some(&inputs));
        let mut solver = cnf.to_solver();
        let assumptions: Vec<SatLit> = image.output_lits.iter().take(1).copied().collect();
        let _ = solver.solve_with_assumptions(&assumptions);
        let solver_audit = audit_solver(&solver, AuditLevel::Paranoid);
        prop_assert!(solver_audit.is_clean(), "post-solve solver:\n{solver_audit}");
    }

    /// The end-to-end flow with `audit_level = Paranoid` surfaces an empty
    /// report: every phase boundary (saturate / extract / sweep / map)
    /// audits clean in place.
    #[test]
    fn emorphic_flow_audits_clean_at_paranoid(
        seed in 0u64..100_000,
        num_ands in 8usize..40,
        num_inputs in 3usize..6,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let config = FlowConfig::fast().with_audit_level(AuditLevel::Paranoid);
        let result = emorphic_flow(&circuit, &config);
        prop_assert!(result.audit.is_clean(), "flow audit:\n{}", result.audit);
    }
}
