//! Content-addressed structural fingerprinting of AIG networks.
//!
//! The fingerprint is a 128-bit hash of the network's logic structure,
//! computed bottom-up over the topologically ordered node list. It is
//! invariant under node renumbering and fanin ordering (AND fanins are
//! hashed as a canonically sorted pair) and ignores design / signal names,
//! so two structurally identical networks produce the same fingerprint no
//! matter how they were built. The synthesis server uses it as the
//! circuit component of its content-addressed cache keys.

use crate::{Aig, AigNode, NodeId};

// Two independent fxhash-style multiplicative constants, one per 64-bit lane.
const K0: u64 = 0x517c_c1b7_2722_0a95;
const K1: u64 = 0x9e37_79b9_7f4a_7c15;

// Domain-separation tags so e.g. an input can never collide with a constant.
const TAG_CONST: u64 = 0xc0;
const TAG_INPUT: u64 = 0x11;
const TAG_AND: u64 = 0xa2;
const TAG_ROOT: u64 = 0x55;

/// One 128-bit hash state as two 64-bit lanes mixed with distinct constants.
#[derive(Clone, Copy, PartialEq, Eq)]
struct H(u64, u64);

impl H {
    #[inline]
    fn mix(self, v: u64) -> H {
        H(
            (self.0.rotate_left(5) ^ v).wrapping_mul(K0),
            (self.1.rotate_left(23) ^ v.wrapping_mul(K1)).wrapping_mul(K0),
        )
    }

    #[inline]
    fn absorb(self, other: H) -> H {
        self.mix(other.0).mix(other.1)
    }

    #[inline]
    fn value(self) -> u128 {
        (u128::from(self.0) << 64) | u128::from(self.1)
    }
}

impl Aig {
    /// Returns a 128-bit content hash of the network's logic structure.
    ///
    /// Properties:
    /// * **Renumbering-invariant** — node ids never enter the hash; each
    ///   node is hashed from its fanins' hashes, and AND fanin pairs are
    ///   sorted canonically by (hash, phase) before mixing.
    /// * **Name-blind** — design, input and output names are excluded;
    ///   only input positions, gate structure, edge phases and the ordered
    ///   output list matter.
    /// * **Deterministic** — fixed mixing constants, no per-process seeds,
    ///   so fingerprints are stable across runs and machines.
    pub fn structural_fingerprint(&self) -> u128 {
        let mut hashes: Vec<H> = Vec::with_capacity(self.num_nodes());
        for idx in 0..self.num_nodes() {
            let h = match *self.node(NodeId(idx as u32)) {
                AigNode::Const => H(TAG_CONST, TAG_CONST).mix(TAG_CONST),
                AigNode::Input { index } => H(TAG_INPUT, TAG_INPUT).mix(u64::from(index)),
                AigNode::And { fanin0, fanin1 } => {
                    let pair = |lit: crate::Lit| {
                        let h = hashes[lit.node().index()];
                        (h.0, h.1, u64::from(lit.is_complemented()))
                    };
                    let (mut a, mut b) = (pair(fanin0), pair(fanin1));
                    if a > b {
                        std::mem::swap(&mut a, &mut b);
                    }
                    H(TAG_AND, TAG_AND)
                        .mix(a.0)
                        .mix(a.1)
                        .mix(a.2)
                        .mix(b.0)
                        .mix(b.1)
                        .mix(b.2)
                }
            };
            hashes.push(h);
        }
        let mut acc = H(TAG_ROOT, TAG_ROOT)
            .mix(self.num_inputs() as u64)
            .mix(self.outputs().len() as u64);
        for &out in self.outputs() {
            acc = acc
                .absorb(hashes[out.node().index()])
                .mix(u64::from(out.is_complemented()));
        }
        acc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority() -> Aig {
        let mut aig = Aig::new("maj");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let ac = aig.and(a, c);
        let ab_or_bc = aig.or(ab, bc);
        let maj = aig.or(ab_or_bc, ac);
        aig.add_output(maj, "maj");
        aig
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(
            majority().structural_fingerprint(),
            majority().structural_fingerprint()
        );
    }

    #[test]
    fn fingerprint_ignores_names() {
        let mut renamed = majority();
        renamed.set_name("other");
        assert_eq!(
            renamed.structural_fingerprint(),
            majority().structural_fingerprint()
        );

        // Same structure built under different signal names.
        let mut other = Aig::new("maj_renamed");
        let a = other.add_input("p");
        let b = other.add_input("q");
        let c = other.add_input("r");
        let ab = other.and(a, b);
        let bc = other.and(b, c);
        let ac = other.and(a, c);
        let ab_or_bc = other.or(ab, bc);
        let maj = other.or(ab_or_bc, ac);
        other.add_output(maj, "z");
        assert_eq!(
            other.structural_fingerprint(),
            majority().structural_fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_renumbering_invariant() {
        // Build the same majority function with gates created in a
        // different order (different node ids, same structure).
        let mut aig = Aig::new("maj2");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ac = aig.and(a, c);
        let bc = aig.and(b, c);
        let ab = aig.and(a, b);
        let ab_or_bc = aig.or(ab, bc);
        let maj = aig.or(ab_or_bc, ac);
        aig.add_output(maj, "maj");
        assert_eq!(
            aig.structural_fingerprint(),
            majority().structural_fingerprint()
        );
    }

    #[test]
    fn fingerprint_separates_structures() {
        let maj = majority().structural_fingerprint();
        let add = benchgen_free_adder().structural_fingerprint();
        assert_ne!(maj, add);

        // Output phase matters.
        let mut inverted = majority();
        let lit = inverted.outputs()[0];
        inverted.set_output(0, !lit);
        assert_ne!(inverted.structural_fingerprint(), maj);

        // Output order matters.
        let mut two = majority();
        let o = two.outputs()[0];
        two.add_output(!o, "maj_n");
        let mut swapped = two.clone();
        swapped.set_output(0, !o);
        swapped.set_output(1, o);
        assert_ne!(
            two.structural_fingerprint(),
            swapped.structural_fingerprint()
        );
    }

    /// A small ripple-carry adder built inline (the `benchgen` crate depends
    /// on `aig`, not the other way around).
    fn benchgen_free_adder() -> Aig {
        let mut aig = Aig::new("add2");
        let a0 = aig.add_input("a0");
        let b0 = aig.add_input("b0");
        let a1 = aig.add_input("a1");
        let b1 = aig.add_input("b1");
        let s0 = aig.xor(a0, b0);
        let c0 = aig.and(a0, b0);
        let x1 = aig.xor(a1, b1);
        let s1 = aig.xor(x1, c0);
        aig.add_output(s0, "s0");
        aig.add_output(s1, "s1");
        aig
    }
}
