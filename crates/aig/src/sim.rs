//! Bit-parallel (64 patterns per word) simulation of AIGs.
//!
//! Simulation is used for candidate-equivalence detection in SAT sweeping,
//! for random functional checks in tests, and for feature extraction in the
//! learned cost model.

use crate::{Aig, AigNode, Lit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A simulation signature: one 64-bit word per simulated pattern block.
pub type SimVector = Vec<u64>;

/// Bit-parallel simulator holding one signature per AIG node.
#[derive(Debug, Clone)]
pub struct Simulator {
    words: usize,
    values: Vec<SimVector>,
}

impl Simulator {
    /// Simulates `aig` on explicit input signatures.
    ///
    /// `inputs[i]` is the signature of primary input `i`; each must contain
    /// exactly `words` 64-bit words.
    ///
    /// # Panics
    /// Panics if the number of signatures does not match the number of inputs
    /// or if any signature has the wrong length.
    pub fn with_inputs(aig: &Aig, inputs: &[SimVector], words: usize) -> Self {
        assert_eq!(
            inputs.len(),
            aig.num_inputs(),
            "one signature per input required"
        );
        for sig in inputs {
            assert_eq!(sig.len(), words, "signature length mismatch");
        }
        let mut values = vec![vec![0u64; words]; aig.num_nodes()];
        for (i, node) in aig.node_ids().zip(0..aig.num_nodes()) {
            let _ = i;
            let id = crate::NodeId(node as u32);
            match aig.node(id) {
                AigNode::Const => {}
                AigNode::Input { index } => {
                    values[node] = inputs[*index as usize].clone();
                }
                AigNode::And { fanin0, fanin1 } => {
                    let mut out = vec![0u64; words];
                    for (w, slot) in out.iter_mut().enumerate() {
                        let a = Self::lit_word(&values, *fanin0, w);
                        let b = Self::lit_word(&values, *fanin1, w);
                        *slot = a & b;
                    }
                    values[node] = out;
                }
            }
        }
        Simulator { words, values }
    }

    /// Simulates `aig` on `words * 64` uniformly random patterns drawn from a
    /// seeded generator (deterministic for a given seed).
    pub fn random(aig: &Aig, words: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<SimVector> = (0..aig.num_inputs())
            .map(|_| (0..words).map(|_| rng.random::<u64>()).collect())
            .collect();
        Self::with_inputs(aig, &inputs, words)
    }

    /// Simulates all `2^n` input combinations of a small network (`n <= 16`),
    /// producing exhaustive signatures. Patterns are packed in counting order.
    pub fn exhaustive(aig: &Aig) -> Self {
        let n = aig.num_inputs();
        assert!(n <= 16, "exhaustive simulation limited to 16 inputs");
        let patterns = 1usize << n;
        let words = patterns.div_ceil(64);
        let mut inputs = vec![vec![0u64; words]; n];
        for p in 0..patterns {
            for (i, input) in inputs.iter_mut().enumerate() {
                if p >> i & 1 == 1 {
                    input[p / 64] |= 1u64 << (p % 64);
                }
            }
        }
        Self::with_inputs(aig, &inputs, words)
    }

    #[inline]
    fn lit_word(values: &[SimVector], lit: Lit, word: usize) -> u64 {
        let v = values[lit.node().index()][word];
        if lit.is_complemented() {
            !v
        } else {
            v
        }
    }

    /// Number of 64-bit words per signature.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Returns the signature of a node (uncomplemented).
    pub fn node_signature(&self, node: crate::NodeId) -> &SimVector {
        &self.values[node.index()]
    }

    /// Returns the signature of a literal (complement applied).
    pub fn lit_signature(&self, lit: Lit) -> SimVector {
        let base = &self.values[lit.node().index()];
        if lit.is_complemented() {
            base.iter().map(|w| !w).collect()
        } else {
            base.clone()
        }
    }

    /// Returns the signatures of all primary outputs of `aig`.
    ///
    /// The simulator must have been built from the same network.
    pub fn output_signatures(&self, aig: &Aig) -> Vec<SimVector> {
        aig.outputs()
            .iter()
            .map(|&l| self.lit_signature(l))
            .collect()
    }

    /// Checks whether two literals have identical signatures (a necessary
    /// condition for functional equivalence).
    pub fn lits_equal(&self, a: Lit, b: Lit) -> bool {
        self.lit_signature(a) == self.lit_signature(b)
    }
}

/// Extracts the truth table of output `output` of a small network as a bit
/// string over its `n <= 6` inputs (bit `p` is the value on input pattern `p`).
pub fn small_truth_table(aig: &Aig, output: usize) -> u64 {
    assert!(aig.num_inputs() <= 6, "truth table limited to 6 inputs");
    let sim = Simulator::exhaustive(aig);
    let sig = sim.lit_signature(aig.outputs()[output]);
    let patterns = 1usize << aig.num_inputs();
    let mask = if patterns == 64 {
        u64::MAX
    } else {
        (1u64 << patterns) - 1
    };
    sig[0] & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Aig {
        let mut aig = Aig::new("fa");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let cin = aig.add_input("cin");
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, cin);
        let carry = aig.maj3(a, b, cin);
        aig.add_output(sum, "sum");
        aig.add_output(carry, "carry");
        aig
    }

    #[test]
    fn exhaustive_matches_evaluate() {
        let aig = full_adder();
        let sim = Simulator::exhaustive(&aig);
        let outs = sim.output_signatures(&aig);
        for p in 0..8usize {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let expect = aig.evaluate(&bits);
            for (o, sig) in outs.iter().enumerate() {
                let got = sig[0] >> p & 1 == 1;
                assert_eq!(got, expect[o], "pattern {p} output {o}");
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let aig = full_adder();
        let s1 = Simulator::random(&aig, 4, 7);
        let s2 = Simulator::random(&aig, 4, 7);
        let s3 = Simulator::random(&aig, 4, 8);
        assert_eq!(s1.output_signatures(&aig), s2.output_signatures(&aig));
        assert_ne!(s1.output_signatures(&aig), s3.output_signatures(&aig));
    }

    #[test]
    fn lit_signature_complements() {
        let aig = full_adder();
        let sim = Simulator::random(&aig, 2, 1);
        let lit = aig.outputs()[0];
        let pos = sim.lit_signature(lit);
        let neg = sim.lit_signature(lit.not());
        for (p, n) in pos.iter().zip(neg.iter()) {
            assert_eq!(*p, !*n);
        }
        assert!(sim.lits_equal(lit, lit));
        assert!(!sim.lits_equal(lit, lit.not()));
    }

    #[test]
    fn small_truth_table_of_and() {
        let mut aig = Aig::new("and2");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.and(a, b);
        aig.add_output(y, "y");
        // Patterns: 00,01(a=1),10(b=1),11 -> AND true only on pattern 3.
        assert_eq!(small_truth_table(&aig, 0), 0b1000);
    }

    #[test]
    fn constant_node_signature_is_zero() {
        let mut aig = Aig::new("c");
        let a = aig.add_input("a");
        aig.add_output(Lit::FALSE, "zero");
        aig.add_output(Lit::TRUE, "one");
        aig.add_output(a, "a");
        let sim = Simulator::random(&aig, 3, 11);
        let outs = sim.output_signatures(&aig);
        assert!(outs[0].iter().all(|w| *w == 0));
        assert!(outs[1].iter().all(|w| *w == u64::MAX));
    }
}
