//! Summary statistics of an AIG, analogous to ABC's `print_stats`.

use crate::Aig;
use serde::{Deserialize, Serialize};

/// Size and depth statistics of an AIG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AigStats {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of AND gates.
    pub ands: usize,
    /// Number of AND levels on the longest path.
    pub depth: u32,
}

impl AigStats {
    /// Collects statistics from a network.
    pub fn of(aig: &Aig) -> Self {
        AigStats {
            name: aig.name().to_string(),
            inputs: aig.num_inputs(),
            outputs: aig.num_outputs(),
            ands: aig.num_ands(),
            depth: aig.depth(),
        }
    }
}

impl std::fmt::Display for AigStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} i/o = {:>5}/{:>5}  and = {:>8}  lev = {:>5}",
            self.name, self.inputs, self.outputs, self.ands, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    #[test]
    fn stats_of_small_network() {
        let mut aig = Aig::new("demo");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.xor(a, b);
        aig.add_output(y, "y");
        let stats = AigStats::of(&aig);
        assert_eq!(stats.name, "demo");
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.ands, 3);
        assert_eq!(stats.depth, 2);
        let line = stats.to_string();
        assert!(line.contains("demo"));
        assert!(line.contains("and ="));
    }
}
