//! Readers and writers for circuit exchange formats.
//!
//! Two formats are supported:
//!
//! * [`aiger`] — the ASCII AIGER format (`.aag`), the standard exchange
//!   format for And-Inverter Graphs.
//! * [`eqn`] — the ABC-style equation format, a list of Boolean assignments
//!   over `!`, `*`, `+`, `^` used by the E-morphic pre-/post-processing.

pub mod aiger;
pub mod bench;
pub mod eqn;

pub use aiger::{read_aiger, write_aiger};
pub use bench::write_bench;
pub use eqn::{read_eqn, write_eqn};
