//! ABC-style equation (`.eqn`) reader and writer.
//!
//! The equation format is a list of Boolean assignments:
//!
//! ```text
//! INORDER = a b cin;
//! OUTORDER = sum cout;
//! w1 = a ^ b;
//! sum = w1 ^ cin;
//! cout = (a * b) + (cin * w1);
//! ```
//!
//! Supported operators (loosest to tightest binding): `+` (OR), `^` (XOR),
//! `*` (AND), `!` (NOT), plus parentheses and the constants `0`/`1`.
//! This is the text format E-morphic uses when exchanging circuits with the
//! conventional synthesis flow (paper Fig. 5, step "Equation Format").

use crate::{Aig, AigError, Lit, Result};
use fxhash::FxHashMap;

/// Serializes an AIG as a list of equations (one per AND gate).
pub fn write_eqn(aig: &Aig) -> String {
    let mut out = String::new();
    out.push_str("INORDER = ");
    out.push_str(&aig.input_names().join(" "));
    out.push_str(";\n");
    out.push_str("OUTORDER = ");
    out.push_str(&aig.output_names().join(" "));
    out.push_str(";\n");

    let name_of = |lit: Lit, aig: &Aig| -> String {
        let base = if lit.node() == crate::NodeId::CONST {
            // Complemented constant-false is constant-true.
            return if lit.is_complemented() {
                "1".into()
            } else {
                "0".into()
            };
        } else {
            match aig.node(lit.node()) {
                crate::AigNode::Input { index } => aig.input_name(*index as usize).to_string(),
                _ => format!("new_n{}", lit.node().0),
            }
        };
        if lit.is_complemented() {
            format!("!{base}")
        } else {
            base
        }
    };

    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        out.push_str(&format!(
            "new_n{} = {} * {};\n",
            id.0,
            name_of(f0, aig),
            name_of(f1, aig)
        ));
    }
    for (i, &po) in aig.outputs().iter().enumerate() {
        out.push_str(&format!("{} = {};\n", aig.output_name(i), name_of(po, aig)));
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Const(bool),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
}

fn tokenize(expr: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = expr.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '!' => {
                chars.next();
                tokens.push(Token::Not);
            }
            '*' | '&' => {
                chars.next();
                tokens.push(Token::And);
            }
            '+' | '|' => {
                chars.next();
                tokens.push(Token::Or);
            }
            '^' => {
                chars.next();
                tokens.push(Token::Xor);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            c if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if ident == "0" {
                    tokens.push(Token::Const(false));
                } else if ident == "1" {
                    tokens.push(Token::Const(true));
                } else {
                    tokens.push(Token::Ident(ident));
                }
            }
            other => {
                return Err(AigError::Parse(format!(
                    "unexpected character '{other}' in expression '{expr}'"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    aig: &'a mut Aig,
    env: &'a FxHashMap<String, Lit>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        tok
    }

    // expr := xor_term ('+' xor_term)*
    fn expr(&mut self) -> Result<Lit> {
        let mut acc = self.xor_term()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.bump();
            let rhs = self.xor_term()?;
            acc = self.aig.or(acc, rhs);
        }
        Ok(acc)
    }

    // xor_term := term ('^' term)*
    fn xor_term(&mut self) -> Result<Lit> {
        let mut acc = self.term()?;
        while matches!(self.peek(), Some(Token::Xor)) {
            self.bump();
            let rhs = self.term()?;
            acc = self.aig.xor(acc, rhs);
        }
        Ok(acc)
    }

    // term := factor ('*' factor)*
    fn term(&mut self) -> Result<Lit> {
        let mut acc = self.factor()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.bump();
            let rhs = self.factor()?;
            acc = self.aig.and(acc, rhs);
        }
        Ok(acc)
    }

    // factor := '!' factor | '(' expr ')' | ident | const
    fn factor(&mut self) -> Result<Lit> {
        match self.bump() {
            Some(Token::Not) => Ok(self.factor()?.not()),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(AigError::Parse("missing closing parenthesis".into())),
                }
            }
            Some(Token::Const(b)) => Ok(if b { Lit::TRUE } else { Lit::FALSE }),
            Some(Token::Ident(name)) => self
                .env
                .get(&name)
                .copied()
                .ok_or_else(|| AigError::Parse(format!("undefined signal '{name}'"))),
            other => Err(AigError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses an equation file into an [`Aig`].
///
/// Signals assigned before use become internal wires; identifiers listed in
/// `INORDER` become primary inputs; identifiers listed in `OUTORDER` become
/// primary outputs (in that order).
///
/// # Errors
/// Returns [`AigError::Parse`] for syntax errors, undefined signals, or
/// missing `INORDER`/`OUTORDER` declarations.
pub fn read_eqn(text: &str) -> Result<Aig> {
    let mut aig = Aig::new("eqn");
    let mut env: FxHashMap<String, Lit> = FxHashMap::default();
    let mut outputs: Vec<String> = Vec::new();
    let mut saw_inorder = false;
    let mut saw_outorder = false;

    // Statements are ';'-separated; comments start with '#'.
    let cleaned: String = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");

    for stmt in cleaned.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let (lhs, rhs) = stmt
            .split_once('=')
            .ok_or_else(|| AigError::Parse(format!("statement without '=': {stmt}")))?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        match lhs {
            "INORDER" => {
                if saw_inorder {
                    return Err(AigError::Duplicate(
                        "INORDER declared more than once".into(),
                    ));
                }
                saw_inorder = true;
                for name in rhs.split_whitespace() {
                    if env.contains_key(name) {
                        return Err(AigError::Duplicate(format!(
                            "input '{name}' listed more than once in INORDER"
                        )));
                    }
                    let lit = aig.add_input(name);
                    env.insert(name.to_string(), lit);
                }
            }
            "OUTORDER" => {
                if saw_outorder {
                    return Err(AigError::Duplicate(
                        "OUTORDER declared more than once".into(),
                    ));
                }
                saw_outorder = true;
                outputs = rhs.split_whitespace().map(|s| s.to_string()).collect();
                for (i, name) in outputs.iter().enumerate() {
                    if outputs[..i].contains(name) {
                        return Err(AigError::Duplicate(format!(
                            "output '{name}' listed more than once in OUTORDER"
                        )));
                    }
                }
            }
            name => {
                let tokens = tokenize(rhs)?;
                let mut parser = Parser {
                    tokens,
                    pos: 0,
                    aig: &mut aig,
                    env: &env,
                };
                let lit = parser.expr()?;
                if parser.pos != parser.tokens.len() {
                    return Err(AigError::Parse(format!(
                        "trailing tokens in expression for '{name}'"
                    )));
                }
                // Reassigning a signal (or shadowing an input) used to be
                // accepted silently, with the last assignment winning.
                if env.insert(name.to_string(), lit).is_some() {
                    return Err(AigError::Duplicate(format!(
                        "signal '{name}' is assigned more than once"
                    )));
                }
            }
        }
    }

    if !saw_inorder || !saw_outorder {
        return Err(AigError::Parse(
            "equation file must declare INORDER and OUTORDER".into(),
        ));
    }
    for name in &outputs {
        let lit = env
            .get(name)
            .copied()
            .ok_or_else(|| AigError::Parse(format!("output '{name}' never assigned")))?;
        aig.add_output(lit, name.clone());
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_adder() {
        let text = "\
INORDER = a b cin;
OUTORDER = sum cout;
w1 = a ^ b;
sum = w1 ^ cin;
cout = (a * b) + (cin * w1);
";
        let aig = read_eqn(text).unwrap();
        assert_eq!(aig.num_inputs(), 3);
        assert_eq!(aig.num_outputs(), 2);
        for p in 0..8u32 {
            let a = p & 1 != 0;
            let b = p & 2 != 0;
            let cin = p & 4 != 0;
            let out = aig.evaluate(&[a, b, cin]);
            let total = u32::from(a) + u32::from(b) + u32::from(cin);
            assert_eq!(out[0], total & 1 == 1, "sum at {p}");
            assert_eq!(out[1], total >= 2, "carry at {p}");
        }
    }

    #[test]
    fn roundtrip_write_then_read() {
        let mut aig = Aig::new("rt");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        aig.add_output(f, "f");
        aig.add_output(f.not(), "nf");
        let text = write_eqn(&aig);
        let back = read_eqn(&text).unwrap();
        for p in 0..8u32 {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits));
        }
    }

    #[test]
    fn operator_precedence() {
        // a + b * c must parse as a + (b * c).
        let text = "INORDER = a b c;\nOUTORDER = f;\nf = a + b * c;\n";
        let aig = read_eqn(text).unwrap();
        assert_eq!(aig.evaluate(&[true, false, false]), vec![true]);
        assert_eq!(aig.evaluate(&[false, true, false]), vec![false]);
        assert_eq!(aig.evaluate(&[false, true, true]), vec![true]);
    }

    #[test]
    fn not_binds_tightest() {
        let text = "INORDER = a b;\nOUTORDER = f;\nf = !a * b;\n";
        let aig = read_eqn(text).unwrap();
        assert_eq!(aig.evaluate(&[false, true]), vec![true]);
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    fn constants_in_expressions() {
        let text = "INORDER = a;\nOUTORDER = f g;\nf = a * 1;\ng = a + 0;\n";
        let aig = read_eqn(text).unwrap();
        assert_eq!(aig.evaluate(&[true]), vec![true, true]);
        assert_eq!(aig.evaluate(&[false]), vec![false, false]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# full comment\nINORDER = a; # trailing\nOUTORDER = f;\n\nf = !a;\n";
        let aig = read_eqn(text).unwrap();
        assert_eq!(aig.evaluate(&[false]), vec![true]);
    }

    #[test]
    fn error_on_undefined_signal() {
        let text = "INORDER = a;\nOUTORDER = f;\nf = a * ghost;\n";
        assert!(matches!(read_eqn(text), Err(AigError::Parse(_))));
    }

    #[test]
    fn error_on_missing_orders() {
        assert!(read_eqn("f = a;").is_err());
        let text = "INORDER = a;\nf = a;\n";
        assert!(read_eqn(text).is_err());
    }

    #[test]
    fn error_on_duplicate_outputs() {
        let text = "INORDER = a b;\nOUTORDER = f f;\nf = a * b;\n";
        assert!(matches!(read_eqn(text), Err(AigError::Duplicate(_))));
        let twice = "INORDER = a;\nOUTORDER = f;\nOUTORDER = f;\nf = a;\n";
        assert!(matches!(read_eqn(twice), Err(AigError::Duplicate(_))));
    }

    #[test]
    fn error_on_reassigned_signal() {
        // The second assignment used to win silently.
        let text = "INORDER = a b;\nOUTORDER = f;\nf = a;\nf = b;\n";
        assert!(matches!(read_eqn(text), Err(AigError::Duplicate(_))));
        // Shadowing an input is a duplicate too.
        let shadow = "INORDER = a b;\nOUTORDER = f;\na = b;\nf = a;\n";
        assert!(matches!(read_eqn(shadow), Err(AigError::Duplicate(_))));
    }

    #[test]
    fn error_on_duplicate_declarations() {
        let text = "INORDER = a;\nINORDER = b;\nOUTORDER = f;\nf = a;\n";
        assert!(matches!(read_eqn(text), Err(AigError::Duplicate(_))));
        let dup_input = "INORDER = a a;\nOUTORDER = f;\nf = a;\n";
        assert!(matches!(read_eqn(dup_input), Err(AigError::Duplicate(_))));
    }

    #[test]
    fn error_on_bad_syntax() {
        let text = "INORDER = a b;\nOUTORDER = f;\nf = (a * b;\n";
        assert!(read_eqn(text).is_err());
        let text2 = "INORDER = a b;\nOUTORDER = f;\nf = a ** b;\n";
        assert!(read_eqn(text2).is_err());
    }
}
