//! ASCII AIGER (`.aag`) reader and writer for combinational networks.
//!
//! Only the combinational subset is supported; files containing latches are
//! rejected with [`AigError::Unsupported`].

use crate::{Aig, AigError, AigNode, Lit, NodeId, Result};

/// Serializes a combinational AIG into the ASCII AIGER format.
///
/// Node indices are renumbered into the canonical AIGER layout
/// (inputs first, then AND gates in topological order) and a symbol table
/// with the input/output names is emitted.
pub fn write_aiger(aig: &Aig) -> String {
    // Assign AIGER variable indices: inputs then ANDs (topological order).
    let mut var_of = vec![0u32; aig.num_nodes()];
    let mut next_var = 1u32;
    for &input in aig.inputs() {
        var_of[input.index()] = next_var;
        next_var += 1;
    }
    let and_ids: Vec<NodeId> = aig.and_ids().collect();
    for &id in &and_ids {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let lit_of = |lit: Lit| -> u32 {
        if lit.node() == NodeId::CONST {
            return lit.raw();
        }
        var_of[lit.node().index()] * 2 + u32::from(lit.is_complemented())
    };

    let max_var = next_var - 1;
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        max_var,
        aig.num_inputs(),
        aig.num_outputs(),
        and_ids.len()
    ));
    for &input in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[input.index()] * 2));
    }
    for &po in aig.outputs() {
        out.push_str(&format!("{}\n", lit_of(po)));
    }
    for &id in &and_ids {
        let (f0, f1) = aig.fanins(id);
        // AIGER requires rhs0 >= rhs1.
        let (mut a, mut b) = (lit_of(f0), lit_of(f1));
        if a < b {
            std::mem::swap(&mut a, &mut b);
        }
        out.push_str(&format!("{} {} {}\n", var_of[id.index()] * 2, a, b));
    }
    for (i, name) in aig.input_names().iter().enumerate() {
        out.push_str(&format!("i{i} {name}\n"));
    }
    for (i, name) in aig.output_names().iter().enumerate() {
        out.push_str(&format!("o{i} {name}\n"));
    }
    out.push_str("c\n");
    out.push_str(&format!("{}\n", aig.name()));
    out
}

/// Parses an ASCII AIGER (`.aag`) file into an [`Aig`].
///
/// # Errors
/// Returns [`AigError::Parse`] for malformed input and
/// [`AigError::Unsupported`] if the file declares latches.
pub fn read_aiger(text: &str) -> Result<Aig> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| AigError::Parse("empty AIGER file".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.first() == Some(&"aag") && fields.len() < 6 {
        return Err(AigError::Parse(format!(
            "truncated AIGER header (expected 'aag M I L O A', got {} field(s)): {header}",
            fields.len()
        )));
    }
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(AigError::Parse(format!("bad AIGER header: {header}")));
    }
    let parse_num = |s: &str| -> Result<u32> {
        s.parse::<u32>()
            .map_err(|_| AigError::Parse(format!("bad number '{s}' in header")))
    };
    let max_var = parse_num(fields[1])?;
    let num_inputs = parse_num(fields[2])?;
    let num_latches = parse_num(fields[3])?;
    let num_outputs = parse_num(fields[4])?;
    let num_ands = parse_num(fields[5])?;
    if num_latches != 0 {
        return Err(AigError::Unsupported(
            "sequential AIGER files (latches) are not supported".into(),
        ));
    }

    let mut aig = Aig::new("aiger");
    // Map from AIGER variable index to literal in the new AIG.
    let mut lit_map: Vec<Option<Lit>> = vec![None; (max_var + 1) as usize];
    lit_map[0] = Some(Lit::FALSE);

    let mut input_vars = Vec::with_capacity(num_inputs as usize);
    for i in 0..num_inputs {
        let line = lines
            .next()
            .ok_or_else(|| AigError::Parse("missing input line".into()))?;
        let raw = parse_num(line.trim())?;
        if raw % 2 != 0 {
            return Err(AigError::Parse(format!(
                "input literal {raw} is complemented"
            )));
        }
        let lit = aig.add_input(format!("i{i}"));
        let var = raw / 2;
        if var as usize >= lit_map.len() {
            return Err(AigError::OutOfRange(format!(
                "input variable {var} exceeds max {max_var}"
            )));
        }
        if lit_map[var as usize].is_some() {
            return Err(AigError::Duplicate(format!(
                "input variable {var} is already defined"
            )));
        }
        lit_map[var as usize] = Some(lit);
        input_vars.push(var);
    }

    let mut output_raws = Vec::with_capacity(num_outputs as usize);
    for _ in 0..num_outputs {
        let line = lines
            .next()
            .ok_or_else(|| AigError::Parse("missing output line".into()))?;
        output_raws.push(parse_num(line.trim())?);
    }

    let mut and_defs = Vec::with_capacity(num_ands as usize);
    for _ in 0..num_ands {
        let line = lines
            .next()
            .ok_or_else(|| AigError::Parse("missing AND line".into()))?;
        let nums: Vec<&str> = line.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(AigError::Parse(format!("bad AND line: {line}")));
        }
        let lhs = parse_num(nums[0])?;
        let rhs0 = parse_num(nums[1])?;
        let rhs1 = parse_num(nums[2])?;
        if lhs % 2 != 0 {
            return Err(AigError::Parse(format!("AND lhs {lhs} is complemented")));
        }
        for raw in [lhs, rhs0, rhs1] {
            if raw / 2 > max_var {
                return Err(AigError::OutOfRange(format!(
                    "literal {raw} exceeds the declared maximum variable {max_var}"
                )));
            }
        }
        and_defs.push((lhs, rhs0, rhs1));
    }

    // AIGER guarantees topological order of AND definitions (lhs strictly
    // increasing, rhs < lhs), so one pass suffices.
    for (lhs, rhs0, rhs1) in &and_defs {
        let resolve = |raw: u32, lit_map: &[Option<Lit>]| -> Result<Lit> {
            let var = (raw / 2) as usize;
            let base =
                lit_map.get(var).copied().flatten().ok_or_else(|| {
                    AigError::Parse(format!("literal {raw} used before definition"))
                })?;
            Ok(base.xor(raw % 2 == 1))
        };
        let a = resolve(*rhs0, &lit_map)?;
        let b = resolve(*rhs1, &lit_map)?;
        if lit_map[(*lhs / 2) as usize].is_some() {
            return Err(AigError::Duplicate(format!(
                "AND variable {} is already defined",
                lhs / 2
            )));
        }
        let lit = aig.and(a, b);
        lit_map[(*lhs / 2) as usize] = Some(lit);
    }

    // Symbol table (optional).
    let mut input_names: Vec<Option<String>> = vec![None; num_inputs as usize];
    let mut output_names: Vec<Option<String>> = vec![None; num_outputs as usize];
    let mut design_name: Option<String> = None;
    let mut in_comment = false;
    for line in lines {
        let line = line.trim();
        if in_comment {
            if design_name.is_none() && !line.is_empty() {
                design_name = Some(line.to_string());
            }
            continue;
        }
        if line == "c" {
            in_comment = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix('i') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(idx) = idx.parse::<usize>() {
                    if idx < input_names.len() {
                        input_names[idx] = Some(name.to_string());
                    }
                }
            }
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(idx) = idx.parse::<usize>() {
                    if idx < output_names.len() {
                        output_names[idx] = Some(name.to_string());
                    }
                }
            }
        }
    }

    // Rebuild with proper names: outputs and renamed inputs.
    let mut named = Aig::new(design_name.unwrap_or_else(|| "aiger".to_string()));
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for (idx, &node) in aig.inputs().iter().enumerate() {
        let name = input_names[idx]
            .clone()
            .unwrap_or_else(|| format!("i{idx}"));
        map[node.index()] = Some(named.add_input(name));
    }
    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        let a = map[f0.node().index()]
            .unwrap_or_else(|| unreachable!("topological"))
            .xor(f0.is_complemented());
        let b = map[f1.node().index()]
            .unwrap_or_else(|| unreachable!("topological"))
            .xor(f1.is_complemented());
        map[id.index()] = Some(named.and(a, b));
    }
    for (idx, raw) in output_raws.iter().enumerate() {
        let var = (raw / 2) as usize;
        if var >= lit_map.len() {
            return Err(AigError::OutOfRange(format!(
                "output literal {raw} exceeds the declared maximum variable {max_var}"
            )));
        }
        let lit_in_tmp = lit_map[var]
            .ok_or_else(|| AigError::Parse(format!("output literal {raw} undefined")))?
            .xor(raw % 2 == 1);
        let mapped = if lit_in_tmp.node() == NodeId::CONST {
            lit_in_tmp
        } else {
            map[lit_in_tmp.node().index()]
                .unwrap_or_else(|| unreachable!("defined"))
                .xor(lit_in_tmp.is_complemented())
        };
        let name = output_names[idx]
            .clone()
            .unwrap_or_else(|| format!("o{idx}"));
        named.add_output(mapped, name);
    }
    let _ = AigNode::Const; // keep the import meaningful for doc purposes
    Ok(named)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let y = aig.mux(c, x, a);
        aig.add_output(y, "out");
        aig.add_output(x.not(), "xnor_ab");
        aig
    }

    #[test]
    fn roundtrip_preserves_function() {
        let aig = sample();
        let text = write_aiger(&aig);
        let back = read_aiger(&text).expect("parse back");
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        for p in 0..8u32 {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn roundtrip_preserves_names() {
        let aig = sample();
        let back = read_aiger(&write_aiger(&aig)).unwrap();
        assert_eq!(back.input_names(), aig.input_names());
        assert_eq!(back.output_names(), aig.output_names());
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 2\n";
        match read_aiger(text) {
            Err(AigError::Unsupported(_)) => {}
            other => panic!("expected unsupported error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(read_aiger("hello world").is_err());
        assert!(read_aiger("").is_err());
        assert!(read_aiger("aag 1 2\n").is_err());
    }

    #[test]
    fn rejects_truncated_header_with_parse_error() {
        for text in ["aag\n", "aag 3\n", "aag 3 1 0\n", "aag 3 1 0 1\n"] {
            match read_aiger(text) {
                Err(AigError::Parse(msg)) => {
                    assert!(msg.contains("truncated"), "unexpected message: {msg}")
                }
                other => panic!("expected truncated-header error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_out_of_range_literals() {
        // AND lhs variable 9 exceeds the declared max_var 2. This used to
        // crash the reader with an index panic instead of returning an error.
        let lhs = "aag 2 1 0 1 1\n2\n4\n18 2 2\n";
        assert!(matches!(read_aiger(lhs), Err(AigError::OutOfRange(_))));
        // AND rhs out of range.
        let rhs = "aag 2 1 0 1 1\n2\n4\n4 18 2\n";
        assert!(matches!(read_aiger(rhs), Err(AigError::OutOfRange(_))));
        // Output literal out of range (also panicked before).
        let out = "aag 1 1 0 1 0\n2\n99\n";
        assert!(matches!(read_aiger(out), Err(AigError::OutOfRange(_))));
        // Input variable out of range.
        let input = "aag 1 2 0 0 0\n2\n6\n";
        assert!(matches!(read_aiger(input), Err(AigError::OutOfRange(_))));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        // Two inputs claiming variable 1.
        let dup_input = "aag 2 2 0 0 0\n2\n2\n";
        assert!(matches!(read_aiger(dup_input), Err(AigError::Duplicate(_))));
        // An AND redefining an input variable.
        let and_redefines_input = "aag 2 2 0 1 1\n2\n4\n2\n4 2 2\n";
        assert!(matches!(
            read_aiger(and_redefines_input),
            Err(AigError::Duplicate(_))
        ));
        // Two ANDs with the same lhs.
        let dup_and = "aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 4 2\n";
        assert!(matches!(read_aiger(dup_and), Err(AigError::Duplicate(_))));
    }

    #[test]
    fn parses_constant_outputs() {
        // Output literal 1 == constant true, 0 == constant false.
        let text = "aag 0 0 0 2 0\n1\n0\n";
        let aig = read_aiger(text).unwrap();
        assert_eq!(aig.evaluate(&[]), vec![true, false]);
    }

    #[test]
    fn writer_emits_valid_header() {
        let aig = sample();
        let text = write_aiger(&aig);
        let header: Vec<&str> = text.lines().next().unwrap().split_whitespace().collect();
        assert_eq!(header[0], "aag");
        assert_eq!(header[2], "3"); // inputs
        assert_eq!(header[4], "2"); // outputs
    }
}
