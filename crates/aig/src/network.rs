//! The structurally hashed And-Inverter Graph network.

use crate::{AigError, Lit, NodeId, Result};
use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A single node of an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AigNode {
    /// The constant-false node (always node 0).
    Const,
    /// A primary input; `index` is the position in the input list.
    Input {
        /// Position of the input in [`Aig::inputs`].
        index: u32,
    },
    /// A two-input AND gate over two (possibly complemented) literals.
    And {
        /// First fanin literal (always `<=` the second after normalization).
        fanin0: Lit,
        /// Second fanin literal.
        fanin1: Lit,
    },
}

impl AigNode {
    /// Returns `true` if the node is an AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, AigNode::And { .. })
    }

    /// Returns `true` if the node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, AigNode::Input { .. })
    }

    /// Returns `true` if the node is the constant node.
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, AigNode::Const)
    }

    /// Returns the fanin literals of an AND node, or an empty slice otherwise.
    #[inline]
    pub fn fanins(&self) -> [Option<Lit>; 2] {
        match self {
            AigNode::And { fanin0, fanin1 } => [Some(*fanin0), Some(*fanin1)],
            _ => [None, None],
        }
    }
}

/// A structurally hashed combinational And-Inverter Graph.
///
/// Nodes are stored in creation order, which is always a valid topological
/// order because an AND gate can only be created after both of its fanins
/// exist. Node `0` is the constant-false node.
///
/// Construction applies *two-level structural hashing*: trivial
/// simplifications (`x & 0`, `x & 1`, `x & x`, `x & !x`) are folded away and
/// identical `(fanin0, fanin1)` pairs are shared.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    #[serde(skip)]
    strash: FxHashMap<(Lit, Lit), NodeId>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<Lit>,
    output_names: Vec<String>,
}

impl Aig {
    /// Creates an empty AIG with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![AigNode::Const],
            strash: FxHashMap::default(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
        }
    }

    /// Returns the design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a primary input and returns its (positive) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::Input {
            index: self.inputs.len() as u32,
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id.lit()
    }

    /// Adds `count` anonymous inputs named `prefix0 .. prefix{count-1}`.
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Lit> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Registers a primary output driven by `lit` and returns its index.
    pub fn add_output(&mut self, lit: Lit, name: impl Into<String>) -> usize {
        debug_assert!(lit.node().index() < self.nodes.len());
        self.outputs.push(lit);
        self.output_names.push(name.into());
        self.outputs.len() - 1
    }

    /// Replaces the literal driving output `index`.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        self.outputs[index] = lit;
    }

    /// Removes all primary outputs (the driving logic stays until a
    /// [`Aig::cleanup`]). Useful for carving out single-output cones.
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
        self.output_names.clear();
    }

    /// Creates (or reuses) the AND of two literals, applying constant folding
    /// and trivial-case simplification before structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial cases.
        if a.is_false() || b.is_false() || a == b.not() {
            return Lit::FALSE;
        }
        if a.is_true() {
            return b;
        }
        if b.is_true() || a == b {
            return a;
        }
        // Canonical ordering so that (a, b) and (b, a) share a node.
        let (f0, f1) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(f0, f1)) {
            return id.lit();
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::And {
            fanin0: f0,
            fanin1: f1,
        });
        self.strash.insert((f0, f1), id);
        id.lit()
    }

    /// Creates the OR of two literals (via De Morgan on the AND).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// Creates the NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a, b).not()
    }

    /// Creates the NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(a, b).not()
    }

    /// Creates the XOR of two literals (three AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.and(a, b.not());
        let ba = self.and(a.not(), b);
        self.or(ab, ba)
    }

    /// Creates the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).not()
    }

    /// Creates the multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let pos = self.and(sel, t);
        let neg = self.and(sel.not(), e);
        self.or(pos, neg)
    }

    /// Creates the three-input majority function.
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let bc = self.and(b, c);
        let ac = self.and(a, c);
        let t = self.or(ab, bc);
        self.or(t, ac)
    }

    /// Creates a balanced AND over an arbitrary number of literals.
    ///
    /// Returns constant true for an empty slice.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Creates a balanced OR over an arbitrary number of literals.
    ///
    /// Returns constant false for an empty slice.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// Creates a balanced XOR over an arbitrary number of literals.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        empty: Lit,
        mut op: impl FnMut(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 2 {
                            next.push(op(self, pair[0], pair[1]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Total number of nodes (constant + inputs + AND gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and()).count()
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: NodeId) -> &AigNode {
        &self.nodes[id.index()]
    }

    /// Attempts to return the node with the given id.
    pub fn try_node(&self, id: NodeId) -> Result<&AigNode> {
        self.nodes
            .get(id.index())
            .ok_or_else(|| AigError::InvalidNode(format!("{id} out of range")))
    }

    /// Iterates over all node ids in topological order (constant first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over the ids of all AND gates in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| {
            if n.is_and() {
                Some(NodeId(i as u32))
            } else {
                None
            }
        })
    }

    /// Returns the fanin literals of an AND node.
    ///
    /// # Panics
    /// Panics if the node is not an AND gate.
    // The panic is the documented contract of this accessor.
    #[allow(clippy::panic)]
    pub fn fanins(&self, id: NodeId) -> (Lit, Lit) {
        match self.node(id) {
            AigNode::And { fanin0, fanin1 } => (*fanin0, *fanin1),
            other => panic!("node {id} is not an AND gate: {other:?}"),
        }
    }

    /// Returns the primary-input node ids.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Returns the primary-input names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Returns the name of input `index`.
    pub fn input_name(&self, index: usize) -> &str {
        &self.input_names[index]
    }

    /// Returns the literals driving the primary outputs.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Returns the primary-output names.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Returns the name of output `index`.
    pub fn output_name(&self, index: usize) -> &str {
        &self.output_names[index]
    }

    // ------------------------------------------------------------------
    // Structural queries
    // ------------------------------------------------------------------

    /// Computes the logic level of every node (inputs and constant are level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And { fanin0, fanin1 } = node {
                levels[i] = 1 + levels[fanin0.node().index()].max(levels[fanin1.node().index()]);
            }
        }
        levels
    }

    /// Returns the depth (number of AND levels on the longest PI→PO path).
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|lit| levels[lit.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Counts the fanouts of every node (including output references).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And { fanin0, fanin1 } = node {
                counts[fanin0.node().index()] += 1;
                counts[fanin1.node().index()] += 1;
            }
        }
        for lit in &self.outputs {
            counts[lit.node().index()] += 1;
        }
        counts
    }

    /// Returns, for every node, the list of AND nodes that use it as a fanin.
    pub fn fanout_lists(&self) -> Vec<Vec<NodeId>> {
        let mut lists = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And { fanin0, fanin1 } = node {
                lists[fanin0.node().index()].push(NodeId(i as u32));
                if fanin1.node() != fanin0.node() {
                    lists[fanin1.node().index()].push(NodeId(i as u32));
                }
            }
        }
        lists
    }

    // ------------------------------------------------------------------
    // Rebuilding
    // ------------------------------------------------------------------

    /// Produces a structurally hashed copy containing only the logic
    /// reachable from the primary outputs (the ABC `strash`/sweep analogue).
    pub fn strash_copy(&self) -> Aig {
        let mut fresh = Aig::new(self.name.clone());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        for (idx, &input) in self.inputs.iter().enumerate() {
            let lit = fresh.add_input(self.input_names[idx].clone());
            map[input.index()] = Some(lit);
        }
        // Nodes are already topologically ordered.
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And { fanin0, fanin1 } = node {
                let a = map[fanin0.node().index()]
                    .unwrap_or_else(|| unreachable!("fanin visited"))
                    .xor(fanin0.is_complemented());
                let b = map[fanin1.node().index()]
                    .unwrap_or_else(|| unreachable!("fanin visited"))
                    .xor(fanin1.is_complemented());
                map[i] = Some(fresh.and(a, b));
            }
        }
        for (idx, lit) in self.outputs.iter().enumerate() {
            let mapped = map[lit.node().index()]
                .unwrap_or_else(|| unreachable!("output driver visited"))
                .xor(lit.is_complemented());
            fresh.add_output(mapped, self.output_names[idx].clone());
        }
        fresh.cleanup()
    }

    /// Removes dangling nodes (not reachable from any output), preserving the
    /// input list, and returns the compacted network.
    pub fn cleanup(&self) -> Aig {
        let mut reachable = vec![false; self.nodes.len()];
        reachable[0] = true;
        for &input in &self.inputs {
            reachable[input.index()] = true;
        }
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|l| l.node()).collect();
        while let Some(id) = stack.pop() {
            if reachable[id.index()] {
                continue;
            }
            reachable[id.index()] = true;
            if let AigNode::And { fanin0, fanin1 } = self.node(id) {
                stack.push(fanin0.node());
                stack.push(fanin1.node());
            }
        }
        let mut fresh = Aig::new(self.name.clone());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        for (idx, &input) in self.inputs.iter().enumerate() {
            let lit = fresh.add_input(self.input_names[idx].clone());
            map[input.index()] = Some(lit);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            if let AigNode::And { fanin0, fanin1 } = node {
                let a = map[fanin0.node().index()]
                    .unwrap_or_else(|| unreachable!("fanin visited"))
                    .xor(fanin0.is_complemented());
                let b = map[fanin1.node().index()]
                    .unwrap_or_else(|| unreachable!("fanin visited"))
                    .xor(fanin1.is_complemented());
                map[i] = Some(fresh.and(a, b));
            }
        }
        for (idx, lit) in self.outputs.iter().enumerate() {
            let mapped = map[lit.node().index()]
                .unwrap_or_else(|| unreachable!("output driver visited"))
                .xor(lit.is_complemented());
            fresh.add_output(mapped, self.output_names[idx].clone());
        }
        fresh
    }

    /// Replays this network's AND gates into `dst`, driving the primary
    /// inputs with the given literals (one per input, in order). Returns,
    /// for every node of `self`, the literal in `dst` computing its function
    /// — callers derive output or internal-signal literals by indexing the
    /// map and applying the edge complement. The shared building block
    /// behind circuit stacking, output trimming and cone views.
    ///
    /// # Panics
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn copy_logic_into(&self, dst: &mut Aig, inputs: &[Lit]) -> Vec<Lit> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "one driving literal per primary input"
        );
        // Nodes are topologically ordered, so every AND's fanins are mapped
        // before the AND itself; constants stay `Lit::FALSE`.
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for (idx, &pi) in self.inputs.iter().enumerate() {
            map[pi.index()] = inputs[idx];
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And { fanin0, fanin1 } = node {
                let a = map[fanin0.node().index()].xor(fanin0.is_complemented());
                let b = map[fanin1.node().index()].xor(fanin1.is_complemented());
                map[i] = dst.and(a, b);
            }
        }
        map
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluates the network on a single Boolean input assignment.
    ///
    /// # Panics
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.evaluate_nodes(inputs);
        self.outputs
            .iter()
            .map(|lit| values[lit.node().index()] ^ lit.is_complemented())
            .collect()
    }

    /// Evaluates the network on a single Boolean input assignment, returning
    /// the value of *every node* (indexed by node id, uncomplemented). Used
    /// by counterexample-guided sweeping to split candidate equivalence
    /// classes on a distinguishing input pattern.
    ///
    /// # Panics
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate_nodes(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                AigNode::Const => false,
                AigNode::Input { index } => inputs[*index as usize],
                AigNode::And { fanin0, fanin1 } => {
                    let a = values[fanin0.node().index()] ^ fanin0.is_complemented();
                    let b = values[fanin1.node().index()] ^ fanin1.is_complemented();
                    a && b
                }
            };
        }
        values
    }

    /// Raw mutable node storage. Bypasses structural hashing and every
    /// construction invariant — the `audit` crate's mutation tests use this
    /// to plant corruptions the auditor must detect. Never call from
    /// production code.
    #[doc(hidden)]
    pub fn tamper_nodes_mut(&mut self) -> &mut Vec<AigNode> {
        &mut self.nodes
    }

    /// Raw mutable output list (same caveats as [`Aig::tamper_nodes_mut`]).
    #[doc(hidden)]
    pub fn tamper_outputs_mut(&mut self) -> &mut Vec<Lit> {
        &mut self.outputs
    }
}

/// Builds one network computing both circuits over a shared set of primary
/// inputs (matched by position, named after `a`'s inputs). Outputs of `a`
/// come first, then the outputs of `b` with `b_suffix` appended to their
/// names. Used to seed equivalence detection (SAT sweeping, structural
/// choices) and miter-style comparisons.
///
/// # Panics
/// Panics if the input counts differ.
pub fn stack_over_shared_inputs(a: &Aig, b: &Aig, b_suffix: &str) -> Aig {
    assert_eq!(
        a.num_inputs(),
        b.num_inputs(),
        "both circuits must have the same inputs"
    );
    let mut out = Aig::new(a.name().to_string());
    let inputs: Vec<Lit> = a
        .input_names()
        .iter()
        .map(|n| out.add_input(n.clone()))
        .collect();
    let map_a = a.copy_logic_into(&mut out, &inputs);
    let map_b = b.copy_logic_into(&mut out, &inputs);
    for (i, po) in a.outputs().iter().enumerate() {
        let lit = map_a[po.node().index()].xor(po.is_complemented());
        out.add_output(lit, a.output_name(i));
    }
    for (i, po) in b.outputs().iter().enumerate() {
        let lit = map_b[po.node().index()].xor(po.is_complemented());
        out.add_output(lit, format!("{}{b_suffix}", b.output_name(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net() -> (Aig, Lit) {
        let mut aig = Aig::new("xor");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output(x, "y");
        (aig, x)
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.not()), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn xor_truth_table() {
        let (aig, _) = xor_net();
        assert_eq!(aig.evaluate(&[false, false]), vec![false]);
        assert_eq!(aig.evaluate(&[true, false]), vec![true]);
        assert_eq!(aig.evaluate(&[false, true]), vec![true]);
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_and_maj_semantics() {
        let mut aig = Aig::new("t");
        let s = aig.add_input("s");
        let t = aig.add_input("t");
        let e = aig.add_input("e");
        let m = aig.mux(s, t, e);
        let j = aig.maj3(s, t, e);
        aig.add_output(m, "mux");
        aig.add_output(j, "maj");
        for bits in 0..8u32 {
            let s_v = bits & 1 != 0;
            let t_v = bits & 2 != 0;
            let e_v = bits & 4 != 0;
            let out = aig.evaluate(&[s_v, t_v, e_v]);
            assert_eq!(out[0], if s_v { t_v } else { e_v });
            let maj = (s_v && t_v) || (e_v && (s_v || t_v));
            assert_eq!(out[1], maj);
        }
    }

    #[test]
    fn and_many_balanced_depth() {
        let mut aig = Aig::new("t");
        let lits = aig.add_inputs("x", 16);
        let all = aig.and_many(&lits);
        aig.add_output(all, "y");
        assert_eq!(aig.depth(), 4);
        assert_eq!(aig.num_ands(), 15);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
    }

    #[test]
    fn levels_and_fanouts() {
        let (aig, x) = xor_net();
        let levels = aig.levels();
        assert_eq!(levels[x.node().index()], 2);
        let fanouts = aig.fanout_counts();
        // Each input feeds two AND gates.
        assert_eq!(fanouts[aig.inputs()[0].index()], 2);
        assert_eq!(fanouts[aig.inputs()[1].index()], 2);
    }

    #[test]
    fn cleanup_removes_dangling() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let keep = aig.and(a, b);
        let _dangling = aig.xor(a, b);
        aig.add_output(keep, "y");
        assert!(aig.num_ands() > 1);
        let clean = aig.cleanup();
        assert_eq!(clean.num_ands(), 1);
        assert_eq!(clean.num_inputs(), 2);
        assert_eq!(clean.evaluate(&[true, true]), vec![true]);
        assert_eq!(clean.evaluate(&[true, false]), vec![false]);
    }

    #[test]
    fn strash_copy_preserves_function() {
        let (aig, _) = xor_net();
        let copy = aig.strash_copy();
        for bits in 0..4u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            assert_eq!(aig.evaluate(&[a, b]), copy.evaluate(&[a, b]));
        }
    }

    #[test]
    fn complemented_output() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(a.not(), "na");
        assert_eq!(aig.evaluate(&[true]), vec![false]);
        assert_eq!(aig.evaluate(&[false]), vec![true]);
    }
}
