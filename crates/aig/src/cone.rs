//! Transitive-fanin cones, topological iteration and MFFC computation.

use crate::{Aig, AigError, AigNode, Lit, NodeId};
use fxhash::FxHashSet;

/// Iterator over the nodes reachable from a set of roots, in topological
/// order (fanins before fanouts).
///
/// Because [`Aig`] stores nodes in creation order, topological order is simply
/// ascending node-id order restricted to the reachable set.
pub struct TopoIter {
    ids: std::vec::IntoIter<NodeId>,
}

impl TopoIter {
    /// Builds a topological iterator over the transitive fanin of `roots`.
    pub fn new(aig: &Aig, roots: impl IntoIterator<Item = NodeId>) -> Self {
        let set = tfi(aig, roots);
        let mut ids: Vec<NodeId> = set.into_iter().collect();
        ids.sort_unstable();
        TopoIter {
            ids: ids.into_iter(),
        }
    }
}

impl Iterator for TopoIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.ids.next()
    }
}

/// Computes the transitive fanin (including the roots themselves).
pub fn tfi(aig: &Aig, roots: impl IntoIterator<Item = NodeId>) -> FxHashSet<NodeId> {
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = roots.into_iter().collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            stack.push(fanin0.node());
            stack.push(fanin1.node());
        }
    }
    seen
}

/// A sub-circuit extracted from a host AIG.
///
/// The cone's inputs are the host's primary inputs that appear in the
/// transitive fanin of the selected outputs (or an explicit leaf set), and
/// its outputs are the selected root literals.
#[derive(Debug, Clone)]
pub struct Cone {
    /// The extracted sub-network.
    pub aig: Aig,
    /// For every cone input, the host node it corresponds to.
    pub leaf_map: Vec<NodeId>,
    /// For every cone output, the host literal it corresponds to.
    pub root_map: Vec<Lit>,
}

/// Extracts the logic cone driving `roots`.
///
/// If `leaves` is `None`, the cone extends down to the host's primary inputs;
/// otherwise the given nodes are treated as cut points and become the cone's
/// primary inputs (in the given order).
///
/// # Panics
/// Panics when an explicit leaf set does not dominate the roots or a root
/// lies outside the network. Callers that cannot rule out either condition —
/// the windowed partitioner feeds machine-derived cuts through here — should
/// use [`try_extract_cone`], which surfaces them as typed [`AigError`]s.
pub fn extract_cone(aig: &Aig, roots: &[Lit], leaves: Option<&[NodeId]>) -> Cone {
    match try_extract_cone(aig, roots, leaves) {
        Ok(cone) => cone,
        Err(e) => unreachable!("extract_cone on an invalid cut: {e}"),
    }
}

/// Fallible variant of [`extract_cone`] for machine-derived cuts.
///
/// Empty `roots` are allowed (the cone then has the given leaves as inputs
/// and no outputs), and duplicate leaves map onto one cone input each.
///
/// # Errors
/// * [`AigError::InvalidNode`] — a root or leaf id lies outside the network.
/// * [`AigError::InvalidCut`] — the explicit leaf set does not dominate the
///   roots: some root-to-input path crosses no leaf, so logic below the cut
///   would be pulled into the cone. (Without an explicit cut every primary
///   input is a leaf, so this cannot fire for `leaves == None`.)
pub fn try_extract_cone(
    aig: &Aig,
    roots: &[Lit],
    leaves: Option<&[NodeId]>,
) -> Result<Cone, AigError> {
    let strict_cut = leaves.is_some();
    let mut cone = Aig::new(format!("{}_cone", aig.name()));
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    let mut leaf_map = Vec::new();

    if let Some(leaves) = leaves {
        for &leaf in leaves {
            if leaf.index() >= aig.num_nodes() {
                return Err(AigError::InvalidNode(format!(
                    "cut leaf {leaf} out of range ({} nodes)",
                    aig.num_nodes()
                )));
            }
            if map[leaf.index()].is_some() {
                continue; // duplicate leaf: reuse the first input
            }
            let lit = cone.add_input(format!("{leaf}"));
            map[leaf.index()] = Some(lit);
            leaf_map.push(leaf);
        }
    }

    // Walk the fanin of the roots, stopping at explicit leaves so that logic
    // below the cut is not pulled into the cone.
    let mut reachable: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = Vec::new();
    for root in roots {
        if root.node().index() >= aig.num_nodes() {
            return Err(AigError::InvalidNode(format!(
                "root {} out of range ({} nodes)",
                root.node(),
                aig.num_nodes()
            )));
        }
        stack.push(root.node());
    }
    while let Some(id) = stack.pop() {
        if map[id.index()].is_some() || !reachable.insert(id) {
            continue;
        }
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            stack.push(fanin0.node());
            stack.push(fanin1.node());
        }
    }
    let mut ids: Vec<NodeId> = reachable.into_iter().collect();
    ids.sort_unstable();
    for id in ids {
        if map[id.index()].is_some() {
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {
                map[id.index()] = Some(Lit::FALSE);
            }
            AigNode::Input { index } => {
                if strict_cut {
                    // An explicit cut must terminate every root-to-input
                    // path; reaching a primary input means some path missed
                    // the leaf set, and logic below the cut (this input, and
                    // any gates fed only from it) leaked into the cone.
                    return Err(AigError::InvalidCut(format!(
                        "leaf set does not dominate the roots: input {id} is reachable \
                         without crossing a leaf"
                    )));
                }
                let lit = cone.add_input(aig.input_name(*index as usize));
                map[id.index()] = Some(lit);
                leaf_map.push(id);
            }
            AigNode::And { fanin0, fanin1 } => {
                // Defense in depth: the topological sweep maps fanins before
                // fanouts, so an unmapped fanin should be impossible — keep
                // it a typed error rather than a panic.
                let fetch = |f: Lit, map: &[Option<Lit>]| -> Result<Lit, AigError> {
                    map[f.node().index()]
                        .map(|l| l.xor(f.is_complemented()))
                        .ok_or_else(|| {
                            AigError::InvalidCut(format!(
                                "leaf set does not dominate the roots: node {id} reads {} from \
                                 below the cut",
                                f.node()
                            ))
                        })
                };
                let a = fetch(*fanin0, &map)?;
                let b = fetch(*fanin1, &map)?;
                map[id.index()] = Some(cone.and(a, b));
            }
        }
    }

    let mut root_map = Vec::new();
    for (i, root) in roots.iter().enumerate() {
        // Reachable roots are always mapped by the walk above; `None` is
        // impossible here, but stays a typed error for defense in depth.
        let lit = map[root.node().index()]
            .ok_or_else(|| AigError::InvalidNode(format!("root {} not reachable", root.node())))?
            .xor(root.is_complemented());
        cone.add_output(lit, format!("root{i}"));
        root_map.push(*root);
    }

    Ok(Cone {
        aig: cone,
        leaf_map,
        root_map,
    })
}

/// Computes the size of the maximum fanout-free cone (MFFC) of `node`: the
/// number of AND gates that would become dangling if `node` were removed.
///
/// `fanout_counts` must come from [`Aig::fanout_counts`] on the same network.
/// Nodes with zero fanout (dangling ANDs, e.g. choice-network alternatives)
/// are valid arguments: their MFFC is the cone they alone keep alive. The
/// dereference walk saturates at zero, so a child whose count is already
/// exhausted — possible when `node` itself dangles and shares logic with
/// other dangling nodes — never underflows.
pub fn mffc_size(aig: &Aig, node: NodeId, fanout_counts: &[u32]) -> usize {
    fn deref(aig: &Aig, node: NodeId, counts: &mut [u32]) -> usize {
        if !aig.node(node).is_and() {
            return 0;
        }
        let (f0, f1) = aig.fanins(node);
        let mut size = 1;
        for child in [f0.node(), f1.node()] {
            let c = &mut counts[child.index()];
            *c = c.saturating_sub(1);
            if *c == 0 {
                size += deref(aig, child, counts);
            }
        }
        size
    }
    if node.index() >= aig.num_nodes() {
        return 0;
    }
    let mut counts = fanout_counts.to_vec();
    deref(aig, node, &mut counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let other = aig.or(a, c);
        aig.add_output(abc, "f");
        aig.add_output(other, "g");
        aig
    }

    #[test]
    fn tfi_contains_roots_and_inputs() {
        let aig = sample();
        let f = aig.outputs()[0];
        let set = tfi(&aig, [f.node()]);
        assert!(set.contains(&f.node()));
        assert!(set.contains(&aig.inputs()[0]));
        assert!(set.contains(&aig.inputs()[1]));
        assert!(set.contains(&aig.inputs()[2]));
    }

    #[test]
    fn topo_iter_is_sorted_and_complete() {
        let aig = sample();
        let f = aig.outputs()[0];
        let ids: Vec<NodeId> = TopoIter::new(&aig, [f.node()]).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert!(ids.contains(&f.node()));
    }

    #[test]
    fn extract_cone_to_primary_inputs() {
        let aig = sample();
        let f = aig.outputs()[0];
        let cone = extract_cone(&aig, &[f], None);
        assert_eq!(cone.aig.num_outputs(), 1);
        assert_eq!(cone.aig.num_inputs(), 3);
        // f = a & b & c
        assert_eq!(cone.aig.evaluate(&[true, true, true]), vec![true]);
        assert_eq!(cone.aig.evaluate(&[true, true, false]), vec![false]);
    }

    #[test]
    fn extract_cone_with_explicit_cut() {
        let aig = sample();
        let f = aig.outputs()[0];
        // Cut at {ab, c}: the cone should be a single AND of its two leaves.
        // Pick whichever fanin of the root is the internal AND node `ab`.
        let ab_node = match aig.node(f.node()) {
            crate::AigNode::And { fanin0, fanin1 } => {
                if aig.node(fanin0.node()).is_and() {
                    fanin0.node()
                } else {
                    fanin1.node()
                }
            }
            _ => unreachable!(),
        };
        let c_node = aig.inputs()[2];
        let cone = extract_cone(&aig, &[f], Some(&[ab_node, c_node]));
        assert_eq!(cone.aig.num_inputs(), 2);
        assert_eq!(cone.aig.num_ands(), 1);
        assert_eq!(cone.leaf_map, vec![ab_node, c_node]);
    }

    #[test]
    fn try_extract_cone_rejects_non_dominating_cut() {
        // `top = ab & bc` with cut {ab, c_mid}, where `c_mid = bc & c` lies
        // *beside* the root's bc-path rather than on it: `top` reads `bc`
        // from below the cut, so the leaf set does not dominate the root.
        let mut host = Aig::new("deep");
        let a = host.add_input("a");
        let b = host.add_input("b");
        let c = host.add_input("c");
        let ab = host.and(a, b);
        let bc = host.and(b, c);
        let top = host.and(ab, bc);
        let c_mid = host.and(bc, c);
        host.add_output(top, "f");
        host.add_output(c_mid, "g");
        let err = try_extract_cone(&host, &[top], Some(&[ab.node(), c_mid.node()])).unwrap_err();
        assert!(matches!(err, crate::AigError::InvalidCut(_)), "{err}");
    }

    #[test]
    fn try_extract_cone_with_empty_roots() {
        // No roots: the cone is just the declared leaves as inputs, no
        // outputs, no gates. The partitioner hits this for empty windows.
        let aig = sample();
        let leaf = aig.inputs()[0];
        let cone = try_extract_cone(&aig, &[], Some(&[leaf])).unwrap();
        assert_eq!(cone.aig.num_outputs(), 0);
        assert_eq!(cone.aig.num_inputs(), 1);
        assert_eq!(cone.aig.num_ands(), 0);
        assert_eq!(cone.leaf_map, vec![leaf]);
        assert!(cone.root_map.is_empty());
        // Entirely empty call: a valid, empty cone.
        let empty = try_extract_cone(&aig, &[], None).unwrap();
        assert_eq!(empty.aig.num_nodes(), 1); // just the constant
    }

    #[test]
    fn try_extract_cone_rejects_out_of_range_ids() {
        let aig = sample();
        let f = aig.outputs()[0];
        let bogus = NodeId(999);
        let err = try_extract_cone(&aig, &[f], Some(&[bogus])).unwrap_err();
        assert!(matches!(err, crate::AigError::InvalidNode(_)), "{err}");
        let err = try_extract_cone(&aig, &[Lit::from_raw(999 << 1)], None).unwrap_err();
        assert!(matches!(err, crate::AigError::InvalidNode(_)), "{err}");
    }

    #[test]
    fn try_extract_cone_deduplicates_leaves() {
        let aig = sample();
        let f = aig.outputs()[0];
        let c = aig.inputs()[2];
        let a = aig.inputs()[0];
        let b = aig.inputs()[1];
        let cone = try_extract_cone(&aig, &[f], Some(&[a, b, c, c])).unwrap();
        // The duplicate leaf maps onto one cone input.
        assert_eq!(cone.leaf_map, vec![a, b, c]);
        assert_eq!(cone.aig.num_inputs(), 3);
        assert_eq!(cone.aig.evaluate(&[true, true, true]), vec![true]);
    }

    #[test]
    fn mffc_of_zero_fanout_node() {
        // A dangling AND (fanout 0) still owns its single-fanout cone; the
        // partitioner seeds from such nodes when choice alternatives dangle.
        let mut aig = Aig::new("dangling");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let dangling = aig.and(ab, c); // never used as an output
        let fanouts = aig.fanout_counts();
        assert_eq!(mffc_size(&aig, dangling.node(), &fanouts), 2);
        // Inputs and the constant have empty MFFCs.
        assert_eq!(mffc_size(&aig, a.node(), &fanouts), 0);
        assert_eq!(mffc_size(&aig, NodeId::CONST, &fanouts), 0);
        // Out-of-range ids are answered with 0, not a panic.
        assert_eq!(mffc_size(&aig, NodeId(999), &fanouts), 0);
    }

    #[test]
    fn mffc_of_single_fanout_chain() {
        let mut aig = Aig::new("chain");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc, "f");
        let fanouts = aig.fanout_counts();
        // Removing the top AND frees the whole chain of 2 gates.
        assert_eq!(mffc_size(&aig, abc.node(), &fanouts), 2);
        // The shared sample: removing abc in `sample()` frees 2 gates too
        // because `ab` has a single fanout there.
        let s = sample();
        let f = s.outputs()[0];
        let fo = s.fanout_counts();
        assert_eq!(mffc_size(&s, f.node(), &fo), 2);
    }
}
