//! Transitive-fanin cones, topological iteration and MFFC computation.

use crate::{Aig, AigNode, Lit, NodeId};
use fxhash::FxHashSet;

/// Iterator over the nodes reachable from a set of roots, in topological
/// order (fanins before fanouts).
///
/// Because [`Aig`] stores nodes in creation order, topological order is simply
/// ascending node-id order restricted to the reachable set.
pub struct TopoIter {
    ids: std::vec::IntoIter<NodeId>,
}

impl TopoIter {
    /// Builds a topological iterator over the transitive fanin of `roots`.
    pub fn new(aig: &Aig, roots: impl IntoIterator<Item = NodeId>) -> Self {
        let set = tfi(aig, roots);
        let mut ids: Vec<NodeId> = set.into_iter().collect();
        ids.sort_unstable();
        TopoIter {
            ids: ids.into_iter(),
        }
    }
}

impl Iterator for TopoIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.ids.next()
    }
}

/// Computes the transitive fanin (including the roots themselves).
pub fn tfi(aig: &Aig, roots: impl IntoIterator<Item = NodeId>) -> FxHashSet<NodeId> {
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = roots.into_iter().collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            stack.push(fanin0.node());
            stack.push(fanin1.node());
        }
    }
    seen
}

/// A sub-circuit extracted from a host AIG.
///
/// The cone's inputs are the host's primary inputs that appear in the
/// transitive fanin of the selected outputs (or an explicit leaf set), and
/// its outputs are the selected root literals.
#[derive(Debug, Clone)]
pub struct Cone {
    /// The extracted sub-network.
    pub aig: Aig,
    /// For every cone input, the host node it corresponds to.
    pub leaf_map: Vec<NodeId>,
    /// For every cone output, the host literal it corresponds to.
    pub root_map: Vec<Lit>,
}

/// Extracts the logic cone driving `roots`.
///
/// If `leaves` is `None`, the cone extends down to the host's primary inputs;
/// otherwise the given nodes are treated as cut points and become the cone's
/// primary inputs (in the given order).
pub fn extract_cone(aig: &Aig, roots: &[Lit], leaves: Option<&[NodeId]>) -> Cone {
    let mut cone = Aig::new(format!("{}_cone", aig.name()));
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    let mut leaf_map = Vec::new();

    if let Some(leaves) = leaves {
        for &leaf in leaves {
            let lit = cone.add_input(format!("{leaf}"));
            map[leaf.index()] = Some(lit);
            leaf_map.push(leaf);
        }
    }

    // Walk the fanin of the roots, stopping at explicit leaves so that logic
    // below the cut is not pulled into the cone.
    let mut reachable: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = roots.iter().map(|l| l.node()).collect();
    while let Some(id) = stack.pop() {
        if map[id.index()].is_some() || !reachable.insert(id) {
            continue;
        }
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            stack.push(fanin0.node());
            stack.push(fanin1.node());
        }
    }
    let mut ids: Vec<NodeId> = reachable.into_iter().collect();
    ids.sort_unstable();
    for id in ids {
        if map[id.index()].is_some() {
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {
                map[id.index()] = Some(Lit::FALSE);
            }
            AigNode::Input { index } => {
                let lit = cone.add_input(aig.input_name(*index as usize));
                map[id.index()] = Some(lit);
                leaf_map.push(id);
            }
            AigNode::And { fanin0, fanin1 } => {
                // When an explicit leaf cuts the cone, fanins below the cut may
                // be unmapped only if the node itself is above the cut; in a
                // well-formed cut this cannot happen because every path from
                // the root crosses the cut.
                let a = map[fanin0.node().index()]
                    .unwrap_or_else(|| unreachable!("cut does not cover the cone"))
                    .xor(fanin0.is_complemented());
                let b = map[fanin1.node().index()]
                    .unwrap_or_else(|| unreachable!("cut does not cover the cone"))
                    .xor(fanin1.is_complemented());
                map[id.index()] = Some(cone.and(a, b));
            }
        }
    }

    let mut root_map = Vec::new();
    for (i, root) in roots.iter().enumerate() {
        let lit = map[root.node().index()]
            .unwrap_or_else(|| unreachable!("root not reachable"))
            .xor(root.is_complemented());
        cone.add_output(lit, format!("root{i}"));
        root_map.push(*root);
    }

    Cone {
        aig: cone,
        leaf_map,
        root_map,
    }
}

/// Computes the size of the maximum fanout-free cone (MFFC) of `node`: the
/// number of AND gates that would become dangling if `node` were removed.
///
/// `fanout_counts` must come from [`Aig::fanout_counts`] on the same network.
pub fn mffc_size(aig: &Aig, node: NodeId, fanout_counts: &[u32]) -> usize {
    fn deref(aig: &Aig, node: NodeId, counts: &mut [u32]) -> usize {
        if !aig.node(node).is_and() {
            return 0;
        }
        let (f0, f1) = aig.fanins(node);
        let mut size = 1;
        for child in [f0.node(), f1.node()] {
            counts[child.index()] -= 1;
            if counts[child.index()] == 0 {
                size += deref(aig, child, counts);
            }
        }
        size
    }
    let mut counts = fanout_counts.to_vec();
    deref(aig, node, &mut counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let other = aig.or(a, c);
        aig.add_output(abc, "f");
        aig.add_output(other, "g");
        aig
    }

    #[test]
    fn tfi_contains_roots_and_inputs() {
        let aig = sample();
        let f = aig.outputs()[0];
        let set = tfi(&aig, [f.node()]);
        assert!(set.contains(&f.node()));
        assert!(set.contains(&aig.inputs()[0]));
        assert!(set.contains(&aig.inputs()[1]));
        assert!(set.contains(&aig.inputs()[2]));
    }

    #[test]
    fn topo_iter_is_sorted_and_complete() {
        let aig = sample();
        let f = aig.outputs()[0];
        let ids: Vec<NodeId> = TopoIter::new(&aig, [f.node()]).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert!(ids.contains(&f.node()));
    }

    #[test]
    fn extract_cone_to_primary_inputs() {
        let aig = sample();
        let f = aig.outputs()[0];
        let cone = extract_cone(&aig, &[f], None);
        assert_eq!(cone.aig.num_outputs(), 1);
        assert_eq!(cone.aig.num_inputs(), 3);
        // f = a & b & c
        assert_eq!(cone.aig.evaluate(&[true, true, true]), vec![true]);
        assert_eq!(cone.aig.evaluate(&[true, true, false]), vec![false]);
    }

    #[test]
    fn extract_cone_with_explicit_cut() {
        let aig = sample();
        let f = aig.outputs()[0];
        // Cut at {ab, c}: the cone should be a single AND of its two leaves.
        // Pick whichever fanin of the root is the internal AND node `ab`.
        let ab_node = match aig.node(f.node()) {
            crate::AigNode::And { fanin0, fanin1 } => {
                if aig.node(fanin0.node()).is_and() {
                    fanin0.node()
                } else {
                    fanin1.node()
                }
            }
            _ => unreachable!(),
        };
        let c_node = aig.inputs()[2];
        let cone = extract_cone(&aig, &[f], Some(&[ab_node, c_node]));
        assert_eq!(cone.aig.num_inputs(), 2);
        assert_eq!(cone.aig.num_ands(), 1);
        assert_eq!(cone.leaf_map, vec![ab_node, c_node]);
    }

    #[test]
    fn mffc_of_single_fanout_chain() {
        let mut aig = Aig::new("chain");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc, "f");
        let fanouts = aig.fanout_counts();
        // Removing the top AND frees the whole chain of 2 gates.
        assert_eq!(mffc_size(&aig, abc.node(), &fanouts), 2);
        // The shared sample: removing abc in `sample()` frees 2 gates too
        // because `ab` has a single fanout there.
        let s = sample();
        let f = s.outputs()[0];
        let fo = s.fanout_counts();
        assert_eq!(mffc_size(&s, f.node(), &fo), 2);
    }
}
