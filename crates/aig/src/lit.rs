//! Node identifiers and complemented literals.
//!
//! An AIG edge is a *literal*: a node identifier plus a complement bit. We
//! follow the AIGER convention of packing both into a single integer, with
//! the least-significant bit holding the complement flag.

use serde::{Deserialize, Serialize};

/// Identifier of a node inside an [`crate::Aig`].
///
/// Node `0` is always the constant-false node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The constant-false node present in every AIG.
    pub const CONST: NodeId = NodeId(0);

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive (non-complemented) literal pointing at this node.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A possibly complemented edge to an AIG node.
///
/// Internally packed as `node_index * 2 + complement`, matching the AIGER
/// literal encoding, so that `Lit::FALSE` is `0` and `Lit::TRUE` is `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lit(pub u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complemented: bool) -> Self {
        Lit(node.0 * 2 + u32::from(complemented))
    }

    /// Creates a literal from a raw AIGER-style encoding.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// Returns the raw AIGER-style encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the node this literal points to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Returns `true` if the literal is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the complemented version of this literal.
    ///
    /// Equivalent to the `!` operator; the named form reads better in
    /// iterator chains and closures.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Applies an optional complement: `lit.xor(true)` is `!lit`.
    #[inline]
    #[must_use]
    pub fn xor(self, complement: bool) -> Lit {
        Lit(self.0 ^ u32::from(complement))
    }

    /// Returns this literal without its complement bit.
    #[inline]
    #[must_use]
    pub fn regular(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Returns `true` if this literal is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == NodeId::CONST
    }

    /// Returns `true` if this literal is constant false.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Lit::FALSE
    }

    /// Returns `true` if this literal is constant true.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Lit::TRUE
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit::not(self)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.node(), NodeId::CONST);
        assert_eq!(Lit::TRUE.node(), NodeId::CONST);
        assert!(!Lit::FALSE.is_complemented());
        assert!(Lit::TRUE.is_complemented());
        assert!(Lit::FALSE.is_false());
        assert!(Lit::TRUE.is_true());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
    }

    #[test]
    fn packing_roundtrip() {
        for idx in [0u32, 1, 2, 17, 1000, 65535] {
            for compl in [false, true] {
                let lit = Lit::new(NodeId(idx), compl);
                assert_eq!(lit.node(), NodeId(idx));
                assert_eq!(lit.is_complemented(), compl);
                assert_eq!(Lit::from_raw(lit.raw()), lit);
            }
        }
    }

    #[test]
    fn complement_involution() {
        let lit = Lit::new(NodeId(5), false);
        assert_eq!(lit.not().not(), lit);
        assert_ne!(lit.not(), lit);
        assert_eq!(lit.xor(false), lit);
        assert_eq!(lit.xor(true), lit.not());
    }

    #[test]
    fn regular_strips_complement() {
        let lit = Lit::new(NodeId(7), true);
        assert_eq!(lit.regular(), Lit::new(NodeId(7), false));
        assert_eq!(lit.regular().regular(), lit.regular());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", Lit::new(NodeId(3), true)), "!n3");
        assert_eq!(format!("{}", Lit::new(NodeId(3), false)), "n3");
    }
}
