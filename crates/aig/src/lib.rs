//! And-Inverter Graph (AIG) package.
//!
//! This crate provides the circuit substrate used throughout the E-morphic
//! reproduction: a structurally hashed [`Aig`] network with constant
//! propagation, depth/fanout queries, 64-bit parallel simulation, cone
//! extraction, and readers/writers for the ASCII AIGER (`.aag`) and the
//! ABC-style equation (`.eqn`) formats.
//!
//! # Quick example
//!
//! ```
//! use aig::Aig;
//!
//! let mut aig = Aig::new("majority");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let ab = aig.and(a, b);
//! let bc = aig.and(b, c);
//! let ac = aig.and(a, c);
//! let ab_or_bc = aig.or(ab, bc);
//! let maj = aig.or(ab_or_bc, ac);
//! aig.add_output(maj, "maj");
//! assert_eq!(aig.num_inputs(), 3);
//! assert!(aig.num_ands() >= 4);
//! ```

#![warn(missing_docs)]

mod cone;
pub mod dot;
mod fingerprint;
pub mod io;
mod lit;
mod network;
mod sim;
mod stats;

pub use cone::{extract_cone, mffc_size, tfi, try_extract_cone, Cone, TopoIter};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use lit::{Lit, NodeId};
pub use network::{stack_over_shared_inputs, Aig, AigNode};
pub use sim::{small_truth_table, SimVector, Simulator};
pub use stats::AigStats;

/// Errors produced while parsing or manipulating AIGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// The input text could not be parsed.
    Parse(String),
    /// The operation referenced a node that does not exist.
    InvalidNode(String),
    /// The network contains features this crate does not support (e.g. latches).
    Unsupported(String),
    /// A literal, variable or index lies outside the range the file's own
    /// header (or declarations) admits.
    OutOfRange(String),
    /// A signal, variable or declaration is defined more than once.
    Duplicate(String),
    /// An explicit cut (leaf set) does not dominate the requested roots:
    /// some path from a root to a primary input misses every leaf.
    InvalidCut(String),
}

impl std::fmt::Display for AigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AigError::Parse(msg) => write!(f, "parse error: {msg}"),
            AigError::InvalidNode(msg) => write!(f, "invalid node: {msg}"),
            AigError::Unsupported(msg) => write!(f, "unsupported feature: {msg}"),
            AigError::OutOfRange(msg) => write!(f, "out of range: {msg}"),
            AigError::Duplicate(msg) => write!(f, "duplicate definition: {msg}"),
            AigError::InvalidCut(msg) => write!(f, "invalid cut: {msg}"),
        }
    }
}

impl std::error::Error for AigError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, AigError>;
