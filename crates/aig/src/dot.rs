//! Graphviz (DOT) export of AIGs, for debugging and documentation.

use crate::{Aig, AigNode};

/// Renders the network in Graphviz DOT syntax.
///
/// Inputs are drawn as boxes, AND gates as circles; complemented edges are
/// drawn dashed with a dot arrowhead, matching the usual AIG drawing
/// convention.
pub fn to_dot(aig: &Aig) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", aig.name()));
    out.push_str("  rankdir=BT;\n  node [fontsize=10];\n");
    for id in aig.node_ids() {
        match aig.node(id) {
            AigNode::Const => {
                out.push_str(&format!(
                    "  n{} [label=\"0\", shape=box, style=filled, fillcolor=gray];\n",
                    id.0
                ));
            }
            AigNode::Input { index } => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\", shape=box, style=filled, fillcolor=lightblue];\n",
                    id.0,
                    aig.input_name(*index as usize)
                ));
            }
            AigNode::And { fanin0, fanin1 } => {
                out.push_str(&format!("  n{} [label=\"&\", shape=circle];\n", id.0));
                for lit in [fanin0, fanin1] {
                    let style = if lit.is_complemented() {
                        " [style=dashed, arrowhead=dot]"
                    } else {
                        ""
                    };
                    out.push_str(&format!("  n{} -> n{}{};\n", lit.node().0, id.0, style));
                }
            }
        }
    }
    for (i, po) in aig.outputs().iter().enumerate() {
        let name = aig.output_name(i);
        out.push_str(&format!(
            "  po{i} [label=\"{name}\", shape=invtriangle, style=filled, fillcolor=lightyellow];\n"
        ));
        let style = if po.is_complemented() {
            " [style=dashed, arrowhead=dot]"
        } else {
            ""
        };
        out.push_str(&format!("  n{} -> po{i}{};\n", po.node().0, style));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let mut aig = Aig::new("dot_demo");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.nand(a, b);
        aig.add_output(f, "f");
        let dot = to_dot(&aig);
        assert!(dot.starts_with("digraph \"dot_demo\""));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("-> po0"));
        // The complemented output edge is dashed.
        assert!(dot.contains("style=dashed"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn every_node_and_output_is_declared() {
        let mut aig = Aig::new("d");
        let inputs = aig.add_inputs("x", 3);
        let f = aig.and_many(&inputs);
        aig.add_output(f, "f");
        let dot = to_dot(&aig);
        for id in aig.node_ids() {
            assert!(dot.contains(&format!("n{} [", id.0)), "missing node {id}");
        }
        assert!(dot.contains("po0 ["));
    }
}
