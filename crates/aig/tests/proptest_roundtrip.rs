//! Property-based tests of the AIG core: structural hashing invariants,
//! cleanup/strash idempotence and I/O round-trips on random networks.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::io::{read_aiger, read_eqn, write_aiger, write_eqn};
use aig::{Aig, Lit};
use proptest::prelude::*;

/// A recipe for building a deterministic pseudo-random AIG inside proptest.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    ops: Vec<(u8, usize, bool, usize, bool)>,
    out_complement: bool,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..7, 1usize..60, any::<bool>()).prop_flat_map(|(num_inputs, num_ops, out_complement)| {
        let op = (
            0u8..3,
            0usize..1000,
            any::<bool>(),
            0usize..1000,
            any::<bool>(),
        );
        proptest::collection::vec(op, num_ops).prop_map(move |ops| Recipe {
            num_inputs,
            ops,
            out_complement,
        })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new("prop");
    let mut pool: Vec<Lit> = (0..recipe.num_inputs)
        .map(|i| aig.add_input(format!("i{i}")))
        .collect();
    for (kind, ai, ac, bi, bc) in &recipe.ops {
        let a = pool[ai % pool.len()].xor(*ac);
        let b = pool[bi % pool.len()].xor(*bc);
        let lit = match kind % 3 {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        pool.push(lit);
    }
    let out = pool.last().copied().unwrap().xor(recipe.out_complement);
    aig.add_output(out, "f");
    // A second output taps the middle of the pool to exercise sharing.
    aig.add_output(pool[pool.len() / 2], "g");
    aig
}

fn equivalent(a: &Aig, b: &Aig) -> bool {
    let n = a.num_inputs();
    (0..(1usize << n)).all(|p| {
        let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 == 1).collect();
        a.evaluate(&bits) == b.evaluate(&bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cleanup_preserves_function_and_never_grows(recipe in recipe_strategy()) {
        let aig = build(&recipe);
        let cleaned = aig.cleanup();
        prop_assert!(equivalent(&aig, &cleaned));
        prop_assert!(cleaned.num_ands() <= aig.num_ands());
        // Cleanup is idempotent.
        prop_assert_eq!(cleaned.cleanup().num_ands(), cleaned.num_ands());
    }

    #[test]
    fn strash_copy_preserves_function(recipe in recipe_strategy()) {
        let aig = build(&recipe);
        let copy = aig.strash_copy();
        prop_assert!(equivalent(&aig, &copy));
        prop_assert!(copy.num_ands() <= aig.num_ands());
    }

    #[test]
    fn aiger_roundtrip(recipe in recipe_strategy()) {
        let aig = build(&recipe);
        let text = write_aiger(&aig);
        let back = read_aiger(&text).unwrap();
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(back.num_outputs(), aig.num_outputs());
        prop_assert!(equivalent(&aig, &back));
    }

    #[test]
    fn eqn_roundtrip(recipe in recipe_strategy()) {
        let aig = build(&recipe);
        let text = write_eqn(&aig);
        let back = read_eqn(&text).unwrap();
        prop_assert!(equivalent(&aig, &back));
    }

    #[test]
    fn levels_are_consistent_with_depth(recipe in recipe_strategy()) {
        let aig = build(&recipe);
        let levels = aig.levels();
        let max_level = aig
            .outputs()
            .iter()
            .map(|po| levels[po.node().index()])
            .max()
            .unwrap_or(0);
        prop_assert_eq!(max_level, aig.depth());
        // Every AND node sits strictly above both fanins.
        for id in aig.and_ids() {
            let (f0, f1) = aig.fanins(id);
            prop_assert!(levels[id.index()] > levels[f0.node().index()].min(levels[f1.node().index()]));
        }
    }
}
