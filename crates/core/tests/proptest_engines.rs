//! Differential property tests for the [`ExtractionEngine`] implementations.
//!
//! Three guarantees are pinned here, on random circuits pushed through real
//! saturation rather than hand-picked examples:
//!
//! 1. **DAG cost dominance**: the global greedy DAG engine's true DAG size
//!    never exceeds the tree-cost bottom-up selection's DAG size (the DAG
//!    refinement starts from that selection and only accepts strict
//!    live-gate improvements).
//! 2. **Functional soundness**: every engine's extraction is equivalent to
//!    the input circuit (exhaustively evaluated over all input patterns).
//! 3. **Portfolio determinism**: the portfolio winner is bit-identical
//!    whether the member engines race on one thread or many.
//!
//! `PROPTEST_CASES` scales the random-circuit coverage.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use costmodel::TechMapCost;
use egraph::{Runner, Scheduler};
use emorphic::extract::sa::{SaEngine, SaOptions};
use emorphic::extract::{
    BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine, GlobalGreedyDagEngine,
    PortfolioEngine, SlackAwareEngine,
};
use emorphic::{aig_to_egraph, all_rules, try_selection_to_aig};
use proptest::prelude::*;
use std::sync::Arc;
use techmap::library::asap7_like;

/// Saturates a circuit and returns the rewritten conversion result.
fn saturate(aig: &aig::Aig) -> emorphic::convert::ConversionResult {
    let conversion = aig_to_egraph(aig);
    let runner = Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(2)
        .with_node_limit(8_000)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 400,
            ban_length: 2,
        })
        .run(&all_rules());
    emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    }
}

/// All four concrete engines, boxed for racing or iteration.
fn all_engines() -> Vec<Box<dyn ExtractionEngine>> {
    vec![
        Box::new(BottomUpEngine::new(ExtractionCost::Size)),
        Box::new(GlobalGreedyDagEngine::new()),
        Box::new(SlackAwareEngine::new()),
        Box::new(SaEngine::new(
            SaOptions::fast(),
            Arc::new(TechMapCost::new(asap7_like())),
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The global greedy DAG engine's true DAG size never exceeds the DAG
    /// size of the exact tree-cost DP it refines.
    #[test]
    fn greedy_dag_cost_never_exceeds_tree_cost_selection(
        seed in 0u64..10_000,
        num_ands in 8usize..60,
        num_inputs in 3usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let saturated = saturate(&circuit);
        let budget = ExtractBudget::unlimited();
        let tree = BottomUpEngine::new(ExtractionCost::Size)
            .extract(&saturated.egraph, &saturated.roots, &budget)
            .expect("tree DP extracts");
        let dag = GlobalGreedyDagEngine::new()
            .extract(&saturated.egraph, &saturated.roots, &budget)
            .expect("DAG refinement extracts");
        let tree_size = tree
            .selection
            .try_dag_size(&saturated.egraph, &saturated.roots)
            .expect("tree selection valid");
        let dag_size = dag
            .selection
            .try_dag_size(&saturated.egraph, &saturated.roots)
            .expect("DAG selection valid");
        prop_assert!(
            dag_size <= tree_size,
            "DAG engine selected {dag_size} nodes vs tree DP's {tree_size}"
        );
    }

    /// Every engine's extraction computes the input circuit's function on
    /// every input pattern.
    #[test]
    fn every_engine_extraction_is_equivalent(
        seed in 0u64..10_000,
        num_ands in 8usize..40,
        num_inputs in 3usize..6,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let saturated = saturate(&circuit);
        let budget = ExtractBudget::unlimited();
        for engine in all_engines() {
            let extraction = engine
                .extract(&saturated.egraph, &saturated.roots, &budget)
                .expect("engine extracts");
            let extracted = try_selection_to_aig(
                &saturated.egraph,
                &extraction.selection,
                &saturated.roots,
                &saturated.input_names,
                &saturated.output_names,
                &saturated.name,
            )
            .expect("selection realizes");
            for pattern in 0..(1usize << num_inputs) {
                let bits: Vec<bool> = (0..num_inputs).map(|i| pattern >> i & 1 == 1).collect();
                prop_assert_eq!(
                    extracted.evaluate(&bits),
                    circuit.evaluate(&bits),
                    "{} pattern {}", engine.name(), pattern
                );
            }
        }
    }

    /// The portfolio winner is bit-identical whether the members race on one
    /// thread or four.
    #[test]
    fn portfolio_winner_is_thread_count_invariant(
        seed in 0u64..10_000,
        num_ands in 8usize..40,
        num_inputs in 3usize..6,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let saturated = saturate(&circuit);
        let budget = ExtractBudget::unlimited();
        let serial = PortfolioEngine::new(all_engines())
            .with_threads(1)
            .extract(&saturated.egraph, &saturated.roots, &budget)
            .expect("serial portfolio extracts");
        let parallel = PortfolioEngine::new(all_engines())
            .with_threads(4)
            .extract(&saturated.egraph, &saturated.roots, &budget)
            .expect("parallel portfolio extracts");
        prop_assert_eq!(
            &serial.selection.choices,
            &parallel.selection.choices,
            "portfolio winner depends on thread count"
        );
    }
}
